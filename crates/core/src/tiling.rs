//! Loop decomposition + sliding windows: the paper's parallelization of the
//! Chambolle iteration (Section III).
//!
//! The frame is divided into overlapping sub-matrices. Each window runs
//! `merge_factor` (K) iterations *locally*; by the dependency analysis in
//! [`crate::dependency`], a K-iteration dependency cone has L∞ radius K, so
//! cells far enough from any window edge that is *not* an image edge end up
//! with exactly the value the global iteration would produce — the paper's
//! **profitable elements**. "Far enough" is K cells on the leading (left/
//! top) sides but K+1 on the trailing (right/bottom) sides: the divergence
//! boundary rule corrupts `Term` on the window's last row/column, and that
//! `Term` is consumed *within the same iteration* by the `p`-update of the
//! neighbor one cell inward, so trailing-edge corruption travels one cell
//! further per iteration than the data cone alone.
//! The profitable regions are chosen to partition the frame, so stitching
//! them back reconstructs the global state after K iterations, and the
//! process repeats for ⌈N / K⌉ rounds. Windows are independent within a
//! round and are processed by a pool of worker threads (the hardware's two
//! concurrent sliding windows; here: any number of CPU threads).
//!
//! Because the per-cell arithmetic is shared with the sequential solver
//! ([`crate::solver::compute_term_into`] / [`crate::solver::update_p_inplace`]),
//! the tiled result is **bit-identical** to the sequential one — the paper's
//! redundancy is extra *computation*, never a different *result*.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use chambolle_imaging::Grid;
use chambolle_par::{ThreadPool, UnsafeSharedSlice};
use chambolle_telemetry::{names, Telemetry};

use crate::backend::KernelBackend;
use crate::cancel::{CancelToken, Cancelled};
use crate::ctx::{ExecCtx, NumericsPolicy};
use crate::fast;
use crate::kernels::BandHalo;
use crate::params::{ChambolleParams, InvalidParamsError};
use crate::real::Real;
use crate::solver::{recover_u, DualField, TvDenoiser};

/// Geometry and scheduling parameters of the tiled solver.
///
/// The defaults mirror the hardware: 92×88 sub-matrices (Section IV) and two
/// concurrent windows — unless a tuning profile is active, in which case
/// [`TileConfig::default`] reflects the tuned schedule
/// (see [`chambolle_tune`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Sub-matrix width in cells (the paper's 92 columns).
    pub tile_width: usize,
    /// Sub-matrix height in cells (the paper's 88 rows).
    pub tile_height: usize,
    /// Iterations merged per window pass (K). The halo is K cells on the
    /// leading sides and K+1 on the trailing sides (see the module docs).
    pub merge_factor: u32,
    /// Extra halo cells on every side beyond the exactness-required
    /// K / K+1. Pure redundancy: a wider halo trades larger windows for
    /// fewer of them without moving the profitable-region guarantee —
    /// corruption still travels at most K (leading) / K+1 (trailing)
    /// cells per pass, strictly inside the enlarged halo.
    pub halo_margin: usize,
    /// Worker threads processing windows concurrently (the hardware has 2
    /// sliding windows).
    pub threads: usize,
}

impl TileConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] if a dimension or the thread count is
    /// zero, `merge_factor` is zero, or the halo leaves no profitable
    /// interior (`2K + 1 >= tile dimension`).
    pub fn new(
        tile_width: usize,
        tile_height: usize,
        merge_factor: u32,
        threads: usize,
    ) -> Result<Self, InvalidParamsError> {
        if tile_width == 0 || tile_height == 0 {
            return Err(InvalidParamsError::new(
                "tile dimensions must be positive".into(),
            ));
        }
        if merge_factor == 0 {
            return Err(InvalidParamsError::new(
                "merge_factor must be at least 1".into(),
            ));
        }
        if threads == 0 {
            return Err(InvalidParamsError::new("threads must be at least 1".into()));
        }
        let halo = 2 * merge_factor as usize + 1;
        if halo >= tile_width || halo >= tile_height {
            return Err(InvalidParamsError::new(format!(
                "halo 2K+1 = {halo} leaves no profitable interior in a {tile_width}x{tile_height} tile"
            )));
        }
        Ok(TileConfig {
            tile_width,
            tile_height,
            merge_factor,
            halo_margin: 0,
            threads,
        })
    }

    /// Copy of the configuration with `halo_margin` extra halo cells per
    /// side (see the field docs — schedule only, never bits).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] if the widened halo leaves no
    /// profitable interior (`2(K + margin) + 1 >= tile dimension`).
    pub fn with_halo_margin(mut self, halo_margin: usize) -> Result<Self, InvalidParamsError> {
        let halo = 2 * (self.merge_factor as usize + halo_margin) + 1;
        if halo >= self.tile_width || halo >= self.tile_height {
            return Err(InvalidParamsError::new(format!(
                "halo 2(K+margin)+1 = {halo} leaves no profitable interior in a {}x{} tile",
                self.tile_width, self.tile_height
            )));
        }
        self.halo_margin = halo_margin;
        Ok(self)
    }

    /// The tiled-solver geometry a set of schedule knobs selects.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] for knob combinations that fail
    /// [`TileConfig::new`] — impossible for tunables that passed
    /// [`chambolle_tune::Tunables::validate`].
    pub fn from_tunables(t: &chambolle_tune::Tunables) -> Result<Self, InvalidParamsError> {
        TileConfig::new(t.tile_width, t.tile_height, t.merge_factor, t.threads)?
            .with_halo_margin(t.halo_margin)
    }

    /// The paper's hardware geometry: 92×88 windows, two of them, with the
    /// given merge factor.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] if `merge_factor` is invalid for that
    /// geometry.
    pub fn paper_hardware(merge_factor: u32) -> Result<Self, InvalidParamsError> {
        TileConfig::new(92, 88, merge_factor, 2)
    }

    /// Halo cells on the leading (left/top) window sides: K plus the
    /// margin.
    pub fn leading_halo(&self) -> usize {
        self.merge_factor as usize + self.halo_margin
    }

    /// Halo cells on the trailing (right/bottom) window sides: K+1 plus
    /// the margin (the divergence boundary rule costs one extra cell, see
    /// the module docs).
    pub fn trailing_halo(&self) -> usize {
        self.leading_halo() + 1
    }

    /// Profitable interior width of an interior tile (leading plus
    /// trailing halo removed).
    pub fn step_x(&self) -> usize {
        self.tile_width - (self.leading_halo() + self.trailing_halo())
    }

    /// Profitable interior height of an interior tile.
    pub fn step_y(&self) -> usize {
        self.tile_height - (self.leading_halo() + self.trailing_halo())
    }
}

impl Default for TileConfig {
    /// The process-wide active schedule ([`chambolle_tune::active`]):
    /// 92×88 tiles, K = 2, no extra halo, two worker threads unless a
    /// tuning profile says otherwise.
    fn default() -> Self {
        TileConfig::from_tunables(&chambolle_tune::active())
            .unwrap_or_else(|_| TileConfig::paper_hardware(2).expect("paper geometry is valid"))
    }
}

/// One window position: the source rectangle loaded into the window (output
/// region plus halo, clipped to the frame) and the profitable output region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Source rectangle origin (includes halo).
    pub src_x: usize,
    /// Source rectangle origin (includes halo).
    pub src_y: usize,
    /// Source rectangle width.
    pub src_w: usize,
    /// Source rectangle height.
    pub src_h: usize,
    /// Profitable output rectangle origin (absolute frame coordinates).
    pub out_x: usize,
    /// Profitable output rectangle origin.
    pub out_y: usize,
    /// Profitable output rectangle width.
    pub out_w: usize,
    /// Profitable output rectangle height.
    pub out_h: usize,
}

impl Tile {
    /// Offset of the output region inside the source window (x).
    pub fn local_out_x(&self) -> usize {
        self.out_x - self.src_x
    }

    /// Offset of the output region inside the source window (y).
    pub fn local_out_y(&self) -> usize {
        self.out_y - self.src_y
    }
}

/// The set of window positions covering a `width × height` frame.
///
/// Output regions partition the frame; each source window is the output
/// region expanded by the halo (K cells leading, K+1 trailing) and clipped
/// to the frame, so windows never exceed `tile_width × tile_height`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilePlan {
    tiles: Vec<Tile>,
    width: usize,
    height: usize,
    config: TileConfig,
}

impl TilePlan {
    /// Plans the windows for a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is empty.
    pub fn new(width: usize, height: usize, config: TileConfig) -> Self {
        assert!(width > 0 && height > 0, "frame must be non-empty");
        let lead = config.leading_halo();
        let trail = config.trailing_halo();
        let step_x = config.step_x();
        let step_y = config.step_y();
        let mut tiles = Vec::new();
        let mut oy = 0;
        while oy < height {
            let out_h = step_y.min(height - oy);
            let mut ox = 0;
            while ox < width {
                let out_w = step_x.min(width - ox);
                let src_x = ox.saturating_sub(lead);
                let src_y = oy.saturating_sub(lead);
                let src_x1 = (ox + out_w + trail).min(width);
                let src_y1 = (oy + out_h + trail).min(height);
                tiles.push(Tile {
                    src_x,
                    src_y,
                    src_w: src_x1 - src_x,
                    src_h: src_y1 - src_y,
                    out_x: ox,
                    out_y: oy,
                    out_w,
                    out_h,
                });
                ox += out_w;
            }
            oy += out_h;
        }
        TilePlan {
            tiles,
            width,
            height,
            config,
        }
    }

    /// The planned window positions.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Frame width the plan covers.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height the plan covers.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The configuration used to build the plan.
    pub fn config(&self) -> &TileConfig {
        &self.config
    }

    /// Total source cells processed per round, summed over windows.
    pub fn source_cells(&self) -> usize {
        self.tiles.iter().map(|t| t.src_w * t.src_h).sum()
    }

    /// Fraction of redundant computation per round:
    /// `(source cells − frame cells) / frame cells` — the paper's "slight
    /// memory/computation overhead" of Section III-B.
    pub fn redundancy_fraction(&self) -> f64 {
        let frame = self.width * self.height;
        (self.source_cells() as f64 - frame as f64) / frame as f64
    }
}

impl fmt::Display for TilePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} windows over {}x{} (K={}, redundancy {:.1}%)",
            self.tiles.len(),
            self.width,
            self.height,
            self.config.merge_factor,
            100.0 * self.redundancy_fraction()
        )
    }
}

/// Runs `iterations` Chambolle iterations on `p` using the tiled parallel
/// scheme; the result is bit-identical to
/// [`crate::solver::chambolle_iterate`].
///
/// Spawns one worker pool with `config.threads` workers for the whole call
/// (not one set of threads per round — see
/// [`chambolle_iterate_tiled_with_pool`] to share a longer-lived pool).
///
/// # Panics
///
/// Panics if `p` and `v` dimensions differ.
pub fn chambolle_iterate_tiled<R: Real>(
    p: &mut DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    iterations: u32,
    config: &TileConfig,
) {
    chambolle_iterate_tiled_with_ctx(p, v, params, iterations, config, &ExecCtx::default())
        .expect("an inert context carries no cancellation token");
}

/// The consolidated tiled entry point: one [`ExecCtx`] carries the pool,
/// telemetry, cancellation token and kernel backend.
///
/// With a pool attached the windows run on it (its worker count takes
/// precedence over `config.threads`); without one, a pool with
/// `config.threads` workers is spawned for this call and wired to the
/// context's telemetry. Cancellation is polled between rounds, so a
/// cancelled call never leaves `p` mid-write. Under the default Exact
/// numerics tier the result is bit-identical to
/// [`crate::solver::chambolle_iterate`] for every pool size and backend; a
/// context selecting [`NumericsPolicy::Fast`] runs the window-local
/// iterations on the tolerance-validated kernels of [`crate::fast`]
/// (deterministic per tile shape, but not bit-comparable to the sequential
/// fast sweep — window widths change the vector remainder splits).
///
/// # Errors
///
/// Returns [`Cancelled`] if the context's token reports cancellation before
/// all `iterations` complete.
///
/// # Panics
///
/// Panics if `p` and `v` dimensions differ.
pub fn chambolle_iterate_tiled_with_ctx<R: Real>(
    p: &mut DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    iterations: u32,
    config: &TileConfig,
    ctx: &ExecCtx,
) -> Result<(), Cancelled> {
    match ctx.pool() {
        Some(pool) => iterate_tiled_pooled_impl(
            p,
            v,
            params,
            iterations,
            config,
            pool,
            ctx.telemetry(),
            ctx.cancel(),
            ctx.backend(),
            ctx.numerics(),
        ),
        None => {
            let pool = ThreadPool::new(config.threads).with_telemetry(ctx.telemetry().clone());
            iterate_tiled_pooled_impl(
                p,
                v,
                params,
                iterations,
                config,
                &pool,
                ctx.telemetry(),
                ctx.cancel(),
                ctx.backend(),
                ctx.numerics(),
            )
        }
    }
}

/// [`chambolle_iterate_tiled`] with instrumentation: records the plan's
/// redundant-halo ratio (`tiling.redundancy_ratio`), counts rounds and
/// window loads, observes windows-per-round, and wraps each round in a
/// `tiling.round` span. The pool it spawns adds its own `par.*` counters.
///
/// With a disabled [`Telemetry`] handle every hook is one branch on an
/// empty `Option`, and the numerical path is exactly the plain function's —
/// the tiled result stays bit-identical to the sequential solver.
///
/// # Panics
///
/// Panics if `p` and `v` dimensions differ.
#[deprecated(note = "use `chambolle_iterate_tiled_with_ctx` with \
            `ExecCtx::default().with_telemetry(..)`")]
pub fn chambolle_iterate_tiled_with_telemetry<R: Real>(
    p: &mut DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    iterations: u32,
    config: &TileConfig,
    telemetry: &Telemetry,
) {
    let ctx = ExecCtx::default().with_telemetry(telemetry.clone());
    chambolle_iterate_tiled_with_ctx(p, v, params, iterations, config, &ctx)
        .expect("a context without a token cannot be cancelled");
}

/// Per-worker window scratch, reused across tiles and rounds: the local
/// window copies of `px`/`py`/`v` plus the two rolling term-row buffers of
/// the fused kernel. Nothing is allocated per round once the buffers have
/// grown to the window size.
struct TileScratch<R> {
    px: Vec<R>,
    py: Vec<R>,
    v: Vec<R>,
    term_a: Vec<R>,
    term_b: Vec<R>,
}

impl<R: Real> TileScratch<R> {
    fn with_capacity(cells: usize, width: usize) -> Self {
        TileScratch {
            px: Vec::with_capacity(cells),
            py: Vec::with_capacity(cells),
            v: Vec::with_capacity(cells),
            term_a: Vec::with_capacity(width),
            term_b: Vec::with_capacity(width),
        }
    }

    fn reshape(&mut self, cells: usize, width: usize) {
        self.px.resize(cells, R::ZERO);
        self.py.resize(cells, R::ZERO);
        self.v.resize(cells, R::ZERO);
        self.term_a.resize(width, R::ZERO);
        self.term_b.resize(width, R::ZERO);
    }
}

/// The pooled tiled iteration: windows are distributed over an existing
/// [`ThreadPool`] via its work-stealing tile queue, each worker reuses one
/// [`TileScratch`] across all its windows and rounds, windows run `k` local
/// iterations with the fused row kernels of [`crate::kernels`], and
/// profitable regions are written directly into a double-buffered dual
/// field (no per-window result collection, no stitching pass).
///
/// Bit-identical to [`crate::solver::chambolle_iterate`] for any pool size:
/// within a round every window reads only the previous round's `p` (the
/// read buffer is never written during a round), and profitable regions
/// partition the frame, so the write buffer is completely and disjointly
/// filled regardless of which worker processes which window.
///
/// # Panics
///
/// Panics if `p` and `v` dimensions differ.
#[deprecated(
    note = "use `chambolle_iterate_tiled_with_ctx` with an `ExecCtx` carrying \
            the pool (`with_pool`) and telemetry (`with_telemetry`)"
)]
pub fn chambolle_iterate_tiled_with_pool<R: Real>(
    p: &mut DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    iterations: u32,
    config: &TileConfig,
    pool: &ThreadPool,
    telemetry: &Telemetry,
) {
    // The pool is borrowed, not `Arc`-owned, so this twin skips the `ExecCtx`
    // wrapper and shares the context path's implementation directly.
    iterate_tiled_pooled_impl(
        p,
        v,
        params,
        iterations,
        config,
        pool,
        telemetry,
        None,
        KernelBackend::active(),
        NumericsPolicy::active(),
    )
    .expect("uncancellable tiled iterate cannot be cancelled");
}

/// [`chambolle_iterate_tiled_with_pool`] with a cooperative cancellation
/// poll between rounds.
///
/// Rounds are the natural boundary: within a round the windows run to
/// completion (a round is one pool broadcast), and after each round `p`
/// holds exactly the global state after `rounds × K` iterations — a state
/// the sequential iteration also passes through. A cancelled call therefore
/// never leaves `p` mid-write, and the pool remains fully reusable.
///
/// # Errors
///
/// Returns [`Cancelled`] if `token` reports cancellation before all
/// `iterations` complete.
///
/// # Panics
///
/// Panics if `p` and `v` dimensions differ.
#[deprecated(
    note = "use `chambolle_iterate_tiled_with_ctx` with an `ExecCtx` carrying \
            the pool, telemetry and cancellation token"
)]
#[allow(clippy::too_many_arguments)]
pub fn chambolle_iterate_tiled_cancellable<R: Real>(
    p: &mut DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    iterations: u32,
    config: &TileConfig,
    pool: &ThreadPool,
    telemetry: &Telemetry,
    token: &CancelToken,
) -> Result<(), Cancelled> {
    iterate_tiled_pooled_impl(
        p,
        v,
        params,
        iterations,
        config,
        pool,
        telemetry,
        Some(token),
        KernelBackend::active(),
        NumericsPolicy::active(),
    )
}

#[allow(clippy::too_many_arguments)]
fn iterate_tiled_pooled_impl<R: Real>(
    p: &mut DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    iterations: u32,
    config: &TileConfig,
    pool: &ThreadPool,
    telemetry: &Telemetry,
    token: Option<&CancelToken>,
    backend: KernelBackend,
    numerics: NumericsPolicy,
) -> Result<(), Cancelled> {
    assert_eq!(p.dims(), v.dims(), "dual field and v must match in size");
    if iterations == 0 {
        return Ok(());
    }
    let (w, h) = v.dims();
    let plan = TilePlan::new(w, h, *config);
    let tiles = plan.tiles();
    telemetry.gauge_set(names::TILING_REDUNDANCY_RATIO, plan.redundancy_fraction());
    let inv_theta = R::ONE / R::from_f32(params.theta);
    let step_ratio = R::from_f32(params.step_ratio());

    // Double buffer: every round reads `p`, writes `p_next`, then the
    // buffers swap. Profitable regions partition the frame, so `p_next` is
    // fully overwritten each round and needs no initialization.
    let mut p_next = DualField::zeros(w, h);
    let window_cells = config.tile_width * config.tile_height;
    let scratch: Vec<Mutex<TileScratch<R>>> = (0..pool.threads())
        .map(|_| Mutex::new(TileScratch::with_capacity(window_cells, config.tile_width)))
        .collect();

    let mut remaining = iterations;
    while remaining > 0 {
        if let Some(token) = token {
            token.check()?;
        }
        let k = remaining.min(config.merge_factor);
        let round_span = telemetry.span("tiling.round");
        {
            let px_next = UnsafeSharedSlice::new(p_next.px.as_mut_slice());
            let py_next = UnsafeSharedSlice::new(p_next.py.as_mut_slice());
            let p_read: &DualField<R> = p;
            pool.parallel_tiles("tiling.windows", tiles.len(), |worker, i| {
                let tile = &tiles[i];
                let mut scratch = scratch[worker].lock().expect("tile scratch poisoned");
                process_window_fused(
                    p_read,
                    v,
                    tile,
                    inv_theta,
                    step_ratio,
                    k,
                    backend,
                    numerics,
                    &mut scratch,
                );
                // SAFETY: profitable regions partition the frame and each
                // tile index runs exactly once, so the row segments written
                // here are disjoint across all concurrent windows.
                unsafe {
                    let (lx, ly) = (tile.local_out_x(), tile.local_out_y());
                    for y in 0..tile.out_h {
                        let src = (ly + y) * tile.src_w + lx;
                        let dst = (tile.out_y + y) * w + tile.out_x;
                        px_next
                            .slice_mut(dst, tile.out_w)
                            .copy_from_slice(&scratch.px[src..src + tile.out_w]);
                        py_next
                            .slice_mut(dst, tile.out_w)
                            .copy_from_slice(&scratch.py[src..src + tile.out_w]);
                    }
                }
            });
        }
        std::mem::swap(p, &mut p_next);
        drop(round_span);
        telemetry.counter_add(names::TILING_ROUNDS, 1);
        telemetry.counter_add(names::TILING_WINDOW_LOADS, tiles.len() as u64);
        telemetry.observe(names::TILING_WINDOWS_PER_ROUND, tiles.len() as f64);
        remaining -= k;
    }
    Ok(())
}

/// Loads one window into the worker's scratch and runs `k` fused local
/// iterations. Frame-border boundary rules apply automatically where the
/// window edge coincides with the frame edge; interior cuts corrupt only
/// the halo, which the caller never writes back.
#[allow(clippy::too_many_arguments)]
fn process_window_fused<R: Real>(
    p: &DualField<R>,
    v: &Grid<R>,
    tile: &Tile,
    inv_theta: R,
    step_ratio: R,
    k: u32,
    backend: KernelBackend,
    numerics: NumericsPolicy,
    scratch: &mut TileScratch<R>,
) {
    let (sw, sh) = (tile.src_w, tile.src_h);
    scratch.reshape(sw * sh, sw);
    for y in 0..sh {
        let row = tile.src_y + y;
        let span = tile.src_x..tile.src_x + sw;
        scratch.px[y * sw..(y + 1) * sw].copy_from_slice(&p.px.row(row)[span.clone()]);
        scratch.py[y * sw..(y + 1) * sw].copy_from_slice(&p.py.row(row)[span.clone()]);
        scratch.v[y * sw..(y + 1) * sw].copy_from_slice(&v.row(row)[span]);
    }
    for _ in 0..k {
        fast::band_iteration_tiered(
            backend,
            numerics,
            &mut scratch.px,
            &mut scratch.py,
            &scratch.v,
            sw,
            sh,
            0,
            BandHalo {
                py_above: None,
                below: None,
            },
            inv_theta,
            step_ratio,
            &mut scratch.term_a,
            &mut scratch.term_b,
        );
    }
}

/// The pre-pool reference implementation, retained as the perf baseline:
/// every round spawns `config.threads` scoped threads, every window crops
/// fresh `px`/`py`/`v` grids and allocates a full term grid, and results
/// are collected and stitched after the round. Numerically identical to
/// [`chambolle_iterate_tiled`]; only the schedule and allocation behavior
/// differ. The `perf` bench binary measures the pooled path against this.
///
/// # Panics
///
/// Panics if `p` and `v` dimensions differ.
pub fn chambolle_iterate_tiled_spawn_baseline<R: Real>(
    p: &mut DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    iterations: u32,
    config: &TileConfig,
) {
    chambolle_iterate_tiled_spawn_baseline_with_ctx(
        p,
        v,
        params,
        iterations,
        config,
        &ExecCtx::default(),
    )
    .expect("an inert context carries no cancellation token");
}

/// [`chambolle_iterate_tiled_spawn_baseline`] with full [`ExecCtx`] plumbing.
///
/// Until PR 5 this was the one tiled solve path that ignored the pool,
/// telemetry and cancellation machinery entirely. It now honors all of them
/// while keeping its measured identity — fresh window crops, a full term
/// grid per window, and a collect-then-stitch round — intact:
///
/// - a context pool, when present, schedules the round's windows (only the
///   spawn-per-round scheduling is replaced; with no pool the historical
///   scoped-spawn behavior is preserved exactly),
/// - telemetry records the same `tiling.*` plan gauge, round counters and
///   spans as the pooled path,
/// - cancellation is polled between rounds, and
/// - the row kernels run on the context's [`KernelBackend`].
///
/// The context's numerics tier is deliberately **not** honored: the
/// baseline always runs Exact, because its role is a measured identity
/// (schedule and allocation behavior) against the pooled path's Exact
/// runs.
///
/// # Errors
///
/// Returns [`Cancelled`] if the context's token reports cancellation before
/// all `iterations` complete.
///
/// # Panics
///
/// Panics if `p` and `v` dimensions differ.
pub fn chambolle_iterate_tiled_spawn_baseline_with_ctx<R: Real>(
    p: &mut DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    iterations: u32,
    config: &TileConfig,
    ctx: &ExecCtx,
) -> Result<(), Cancelled> {
    assert_eq!(p.dims(), v.dims(), "dual field and v must match in size");
    let (w, h) = v.dims();
    let plan = TilePlan::new(w, h, *config);
    let telemetry = ctx.telemetry();
    let backend = ctx.backend();
    telemetry.gauge_set(names::TILING_REDUNDANCY_RATIO, plan.redundancy_fraction());
    let inv_theta = R::ONE / R::from_f32(params.theta);
    let step_ratio = R::from_f32(params.step_ratio());

    let mut remaining = iterations;
    while remaining > 0 {
        ctx.checkpoint()?;
        let k = remaining.min(config.merge_factor);
        let round_span = telemetry.span("tiling.round");
        let results = match ctx.pool() {
            Some(pool) => run_round_on_pool(p, v, &plan, inv_theta, step_ratio, k, pool, backend),
            None => run_round(
                p,
                v,
                &plan,
                inv_theta,
                step_ratio,
                k,
                config.threads,
                backend,
            ),
        };
        for (tile, lpx, lpy) in results {
            blit_profitable(&mut p.px, &tile, &lpx);
            blit_profitable(&mut p.py, &tile, &lpy);
        }
        drop(round_span);
        telemetry.counter_add(names::TILING_ROUNDS, 1);
        telemetry.counter_add(names::TILING_WINDOW_LOADS, plan.tiles().len() as u64);
        telemetry.observe(names::TILING_WINDOWS_PER_ROUND, plan.tiles().len() as f64);
        remaining -= k;
    }
    Ok(())
}

/// One parallel round: every window runs `k` local iterations and returns
/// its local dual field for stitching.
/// A processed window: its position plus the locally updated dual grids.
type WindowResult<R> = (Tile, Grid<R>, Grid<R>);

#[allow(clippy::too_many_arguments)]
fn run_round<R: Real>(
    p: &DualField<R>,
    v: &Grid<R>,
    plan: &TilePlan,
    inv_theta: R,
    step_ratio: R,
    k: u32,
    threads: usize,
    backend: KernelBackend,
) -> Vec<WindowResult<R>> {
    let tiles = plan.tiles();
    if threads <= 1 {
        // Single-threaded rounds run inline: spawning (and joining) a worker
        // thread per round just to walk the windows sequentially would cost
        // thread churn for nothing.
        return tiles
            .iter()
            .map(|tile| process_window(p, v, tile, plan, inv_theta, step_ratio, k, backend))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<WindowResult<R>>> = Vec::new();
    results.resize_with(tiles.len(), || None);
    let results_slots: Vec<std::sync::Mutex<Option<WindowResult<R>>>> =
        results.into_iter().map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(tiles.len()).max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tiles.len() {
                    break;
                }
                let tile = tiles[i];
                let out = process_window(p, v, &tile, plan, inv_theta, step_ratio, k, backend);
                *results_slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    results_slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every window processed exactly once")
        })
        .collect()
}

/// [`run_round`] on an existing pool: same fresh-crop windows and stitch
/// pass, but the windows go through the pool's work-stealing tile queue
/// instead of round-scoped spawned threads.
#[allow(clippy::too_many_arguments)]
fn run_round_on_pool<R: Real>(
    p: &DualField<R>,
    v: &Grid<R>,
    plan: &TilePlan,
    inv_theta: R,
    step_ratio: R,
    k: u32,
    pool: &ThreadPool,
    backend: KernelBackend,
) -> Vec<WindowResult<R>> {
    let tiles = plan.tiles();
    let slots: Vec<Mutex<Option<WindowResult<R>>>> =
        (0..tiles.len()).map(|_| Mutex::new(None)).collect();
    pool.parallel_tiles("tiling.windows", tiles.len(), |_, i| {
        let out = process_window(p, v, &tiles[i], plan, inv_theta, step_ratio, k, backend);
        *slots[i].lock().expect("result slot poisoned") = Some(out);
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every window processed exactly once")
        })
        .collect()
}

/// Loads one window (source rect with halo), runs `k` local iterations, and
/// returns the local dual components.
///
/// Image-border boundary rules apply automatically where the window edge
/// coincides with the frame edge ("this side effect does not occur when the
/// boundary elements also lie on the border of I1" — Section III-A); interior
/// cuts produce wrong values only within the K-cell halo, which is never
/// written back.
#[allow(clippy::too_many_arguments)]
fn process_window<R: Real>(
    p: &DualField<R>,
    v: &Grid<R>,
    tile: &Tile,
    plan: &TilePlan,
    inv_theta: R,
    step_ratio: R,
    k: u32,
    backend: KernelBackend,
) -> WindowResult<R> {
    let mut local = DualField {
        px: p.px.crop(tile.src_x, tile.src_y, tile.src_w, tile.src_h),
        py: p.py.crop(tile.src_x, tile.src_y, tile.src_w, tile.src_h),
    };
    let local_v = v.crop(tile.src_x, tile.src_y, tile.src_w, tile.src_h);

    // True frame borders keep their boundary rules automatically (the local
    // window edge IS the frame edge there). Interior cuts apply the wrong
    // rule at the window's outermost cells, but with a K-cell leading and
    // (K+1)-cell trailing halo — which TilePlan guarantees; clipping only
    // happens at true frame borders — the corruption never reaches the
    // profitable region within K local iterations.
    debug_assert!(window_halo_is_full(tile, plan));

    // Two full passes over a window-sized term grid (the baseline's
    // deliberately naive memory behavior), expressed with the row kernels so
    // the backend applies; each row pair is bit-identical to the old
    // `compute_term_into` / `update_p_inplace` full-grid passes.
    let sh = tile.src_h;
    let mut term = Grid::new(tile.src_w, sh, R::ZERO);
    for _ in 0..k {
        for y in 0..sh {
            let above = (y > 0).then(|| local.py.row(y - 1));
            backend.compute_term_row(
                local.px.row(y),
                local.py.row(y),
                above,
                local_v.row(y),
                inv_theta,
                y + 1 == sh,
                term.row_mut(y),
            );
        }
        for y in 0..sh {
            let below = (y + 1 < sh).then(|| term.row(y + 1));
            backend.update_p_row(
                term.row(y),
                below,
                step_ratio,
                local.px.row_mut(y),
                local.py.row_mut(y),
            );
        }
    }
    (*tile, local.px, local.py)
}

/// Checks that every non-frame-border side of the window has its full halo
/// (K+margin leading, K+margin+1 trailing).
fn window_halo_is_full(tile: &Tile, plan: &TilePlan) -> bool {
    let lead = plan.config().leading_halo();
    let trail = plan.config().trailing_halo();
    let left_ok = tile.src_x == 0 || tile.out_x - tile.src_x == lead;
    let top_ok = tile.src_y == 0 || tile.out_y - tile.src_y == lead;
    let right_ok = tile.src_x + tile.src_w == plan.width()
        || (tile.src_x + tile.src_w) - (tile.out_x + tile.out_w) == trail;
    let bottom_ok = tile.src_y + tile.src_h == plan.height()
        || (tile.src_y + tile.src_h) - (tile.out_y + tile.out_h) == trail;
    left_ok && top_ok && right_ok && bottom_ok
}

/// Writes a window's profitable region back into the global grid.
fn blit_profitable<R: Real>(global: &mut Grid<R>, tile: &Tile, local: &Grid<R>) {
    let lx = tile.local_out_x();
    let ly = tile.local_out_y();
    for y in 0..tile.out_h {
        for x in 0..tile.out_w {
            global[(tile.out_x + x, tile.out_y + y)] = local[(lx + x, ly + y)];
        }
    }
}

/// The tiled parallel Chambolle solver as a [`TvDenoiser`] backend.
///
/// By default each `denoise` call spawns its own short-lived pool with
/// `config.threads` workers; attach a persistent pool with
/// [`TiledSolver::with_pool`] to amortize thread startup across calls
/// (e.g. over a whole TV-L1 pyramid).
#[derive(Debug, Clone, Default)]
pub struct TiledSolver {
    config: TileConfig,
    telemetry: Telemetry,
    pool: Option<Arc<ThreadPool>>,
}

impl TiledSolver {
    /// Creates a tiled solver with the given window configuration.
    pub fn new(config: TileConfig) -> Self {
        TiledSolver {
            config,
            telemetry: Telemetry::disabled(),
            pool: None,
        }
    }

    /// Copy of the solver emitting metrics and round spans into `telemetry`
    /// on every [`TvDenoiser::denoise`] call.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Copy of the solver running its windows on `pool` instead of spawning
    /// a pool per call. The pool's worker count takes precedence over
    /// `config.threads`.
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The window configuration in use.
    pub fn config(&self) -> &TileConfig {
        &self.config
    }
}

impl TvDenoiser for TiledSolver {
    fn denoise(&self, v: &Grid<f32>, params: &ChambolleParams) -> Grid<f32> {
        let _span = self.telemetry.span("tiling.denoise");
        let mut p = DualField::zeros(v.width(), v.height());
        let mut ctx = ExecCtx::default().with_telemetry(self.telemetry.clone());
        if let Some(pool) = &self.pool {
            ctx = ctx.with_pool(Arc::clone(pool));
        }
        chambolle_iterate_tiled_with_ctx(&mut p, v, params, params.iterations, &self.config, &ctx)
            .expect("a context without a token cannot be cancelled");
        recover_u(v, &p, params.theta)
    }

    fn denoise_with_ctx(
        &self,
        v: &Grid<f32>,
        params: &ChambolleParams,
        ctx: &ExecCtx,
    ) -> Grid<f32> {
        let _span = self.telemetry.span("tiling.denoise");
        let mut p = DualField::zeros(v.width(), v.height());
        // Keep this solver's schedule (config, pool, telemetry) but honor the
        // caller's kernel backend and numerics tier.
        let mut tiled_ctx = ExecCtx::default()
            .with_telemetry(self.telemetry.clone())
            .with_backend(ctx.backend())
            .with_numerics(ctx.numerics());
        if let Some(pool) = &self.pool {
            tiled_ctx = tiled_ctx.with_pool(Arc::clone(pool));
        }
        chambolle_iterate_tiled_with_ctx(
            &mut p,
            v,
            params,
            params.iterations,
            &self.config,
            &tiled_ctx,
        )
        .expect("a context without a token cannot be cancelled");
        recover_u(v, &p, params.theta)
    }

    fn name(&self) -> &str {
        "tiled"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::chambolle_iterate_with_ctx;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn params(iters: u32) -> ChambolleParams {
        ChambolleParams::paper(iters)
    }

    /// Tiled-vs-sequential bit equality is the **Exact**-tier contract: the
    /// Fast tier is deterministic per window shape but not bit-comparable
    /// across window widths. These tests pin the tier so the suite also
    /// passes under `CHAMBOLLE_NUMERICS=fast`.
    fn exact_ctx() -> ExecCtx {
        ExecCtx::default().with_numerics(NumericsPolicy::Exact)
    }

    fn iterate_exact(p: &mut DualField<f32>, v: &Grid<f32>, pr: &ChambolleParams, iters: u32) {
        chambolle_iterate_with_ctx(p, v, pr, iters, &exact_ctx()).expect("no token");
    }

    fn iterate_tiled_exact(
        p: &mut DualField<f32>,
        v: &Grid<f32>,
        pr: &ChambolleParams,
        iters: u32,
        cfg: &TileConfig,
    ) {
        chambolle_iterate_tiled_with_ctx(p, v, pr, iters, cfg, &exact_ctx()).expect("no token");
    }

    #[test]
    fn telemetry_counts_rounds_and_window_loads() {
        let v = random_image(40, 30, 21);
        let pr = params(7); // K=3 -> rounds of 3, 3, 1
        let cfg = TileConfig::new(18, 14, 3, 2).unwrap();
        let plan = TilePlan::new(40, 30, cfg);
        let tele = Telemetry::null();
        let mut p = DualField::zeros(40, 30);
        let ctx = ExecCtx::default().with_telemetry(tele.clone());
        chambolle_iterate_tiled_with_ctx(&mut p, &v, &pr, 7, &cfg, &ctx).unwrap();
        let snap = tele.snapshot();
        assert_eq!(snap.counter(names::TILING_ROUNDS), Some(3));
        assert_eq!(
            snap.counter(names::TILING_WINDOW_LOADS),
            Some(3 * plan.tiles().len() as u64)
        );
        assert_eq!(
            snap.gauge(names::TILING_REDUNDANCY_RATIO),
            Some(plan.redundancy_fraction())
        );
        let spans = snap
            .get(chambolle_telemetry::span::span_metric_name("tiling.round").as_str())
            .and_then(|m| m.as_histogram())
            .map(|h| h.count());
        assert_eq!(spans, Some(3));
    }

    fn random_image(w: usize, h: usize, seed: u64) -> Grid<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        Grid::from_fn(w, h, |_, _| rng.gen_range(0.0f32..1.0))
    }

    #[test]
    fn config_validation() {
        assert!(TileConfig::new(0, 10, 1, 1).is_err());
        assert!(TileConfig::new(10, 10, 0, 1).is_err());
        assert!(TileConfig::new(10, 10, 1, 0).is_err());
        assert!(TileConfig::new(10, 10, 5, 1).is_err()); // halo swallows tile
        assert!(TileConfig::new(10, 10, 4, 1).is_ok()); // 2K+1 = 9 < 10
        assert!(TileConfig::paper_hardware(2).is_ok());
        // Margin validation: 2(1+3)+1 = 9 < 10 fits, 2(1+4)+1 = 11 doesn't.
        assert!(TileConfig::new(10, 10, 1, 1)
            .unwrap()
            .with_halo_margin(3)
            .is_ok());
        assert!(TileConfig::new(10, 10, 1, 1)
            .unwrap()
            .with_halo_margin(4)
            .is_err());
    }

    #[test]
    fn config_from_tunables_mirrors_every_knob() {
        let t = chambolle_tune::Tunables {
            tile_width: 30,
            tile_height: 26,
            merge_factor: 3,
            halo_margin: 2,
            threads: 5,
            ..chambolle_tune::Tunables::default()
        };
        let cfg = TileConfig::from_tunables(&t).unwrap();
        assert_eq!((cfg.tile_width, cfg.tile_height), (30, 26));
        assert_eq!(cfg.merge_factor, 3);
        assert_eq!(cfg.halo_margin, 2);
        assert_eq!(cfg.threads, 5);
        assert_eq!(cfg.leading_halo(), 5);
        assert_eq!(cfg.trailing_halo(), 6);
        // The default tunables reproduce the historical default geometry.
        assert_eq!(
            TileConfig::from_tunables(&chambolle_tune::Tunables::default()).unwrap(),
            TileConfig::paper_hardware(2).unwrap()
        );
    }

    #[test]
    fn halo_margin_is_pure_redundancy_bit_exact() {
        let v = random_image(61, 47, 9);
        let pr = params(11);
        let mut p_seq = DualField::zeros(61, 47);
        iterate_exact(&mut p_seq, &v, &pr, 11);
        for margin in [0usize, 1, 2, 4] {
            let cfg = TileConfig::new(24, 20, 2, 2)
                .unwrap()
                .with_halo_margin(margin)
                .unwrap();
            let plan = TilePlan::new(61, 47, cfg);
            for t in plan.tiles() {
                assert!(window_halo_is_full(t, &plan), "margin {margin}: {t:?}");
            }
            let mut p_tiled = DualField::zeros(61, 47);
            iterate_tiled_exact(&mut p_tiled, &v, &pr, 11, &cfg);
            assert_eq!(
                p_seq.px.as_slice(),
                p_tiled.px.as_slice(),
                "margin {margin} changed px bits"
            );
            assert_eq!(p_seq.py.as_slice(), p_tiled.py.as_slice());
        }
    }

    #[test]
    fn plan_outputs_partition_frame() {
        for (w, h) in [(30usize, 20usize), (92, 88), (100, 100), (7, 5), (1, 1)] {
            let cfg = TileConfig::new(16, 12, 2, 1).unwrap();
            let plan = TilePlan::new(w, h, cfg);
            let mut covered = Grid::new(w, h, 0u32);
            for t in plan.tiles() {
                for y in t.out_y..t.out_y + t.out_h {
                    for x in t.out_x..t.out_x + t.out_w {
                        covered[(x, y)] += 1;
                    }
                }
            }
            assert!(
                covered.as_slice().iter().all(|&c| c == 1),
                "outputs must partition the {w}x{h} frame"
            );
        }
    }

    #[test]
    fn plan_windows_respect_tile_size_and_halo() {
        let cfg = TileConfig::paper_hardware(3).unwrap();
        let plan = TilePlan::new(512, 512, cfg);
        for t in plan.tiles() {
            assert!(t.src_w <= cfg.tile_width);
            assert!(t.src_h <= cfg.tile_height);
            assert!(window_halo_is_full(t, &plan), "halo missing on {t:?}");
        }
    }

    #[test]
    fn redundancy_is_small_for_paper_geometry() {
        let cfg = TileConfig::paper_hardware(2).unwrap();
        let plan = TilePlan::new(512, 512, cfg);
        // "a negligible amount of redundant computation": ~1/10 at K=2.
        assert!(
            plan.redundancy_fraction() < 0.16,
            "redundancy {} too large",
            plan.redundancy_fraction()
        );
        assert!(plan.redundancy_fraction() > 0.0);
    }

    #[test]
    fn tiled_matches_sequential_bit_exact() {
        let v = random_image(61, 47, 9);
        let pr = params(13);
        let mut p_seq = DualField::zeros(61, 47);
        iterate_exact(&mut p_seq, &v, &pr, 13);

        for threads in [1usize, 2, 4] {
            for k in [1u32, 2, 3, 5] {
                let cfg = TileConfig::new(20, 16, k, threads).unwrap();
                let mut p_tiled = DualField::zeros(61, 47);
                iterate_tiled_exact(&mut p_tiled, &v, &pr, 13, &cfg);
                assert_eq!(
                    p_seq.px.as_slice(),
                    p_tiled.px.as_slice(),
                    "px mismatch at K={k}, threads={threads}"
                );
                assert_eq!(p_seq.py.as_slice(), p_tiled.py.as_slice());
            }
        }
    }

    #[test]
    fn tiled_matches_sequential_on_paper_geometry() {
        // A frame larger than one 92x88 window, with the hardware's two
        // workers.
        let v = random_image(200, 150, 4);
        let pr = params(8);
        let mut p_seq = DualField::zeros(200, 150);
        iterate_exact(&mut p_seq, &v, &pr, 8);
        let cfg = TileConfig::paper_hardware(2).unwrap();
        let mut p_tiled = DualField::zeros(200, 150);
        iterate_tiled_exact(&mut p_tiled, &v, &pr, 8, &cfg);
        assert_eq!(p_seq.px.as_slice(), p_tiled.px.as_slice());
        assert_eq!(p_seq.py.as_slice(), p_tiled.py.as_slice());
    }

    #[test]
    fn partial_last_round_handles_non_divisible_iterations() {
        // 7 iterations with K=3 -> rounds of 3, 3, 1.
        let v = random_image(40, 30, 14);
        let pr = params(7);
        let mut p_seq = DualField::zeros(40, 30);
        iterate_exact(&mut p_seq, &v, &pr, 7);
        let cfg = TileConfig::new(18, 14, 3, 2).unwrap();
        let mut p_tiled = DualField::zeros(40, 30);
        iterate_tiled_exact(&mut p_tiled, &v, &pr, 7, &cfg);
        assert_eq!(p_seq.px.as_slice(), p_tiled.px.as_slice());
    }

    #[test]
    fn frame_smaller_than_tile_works() {
        let v = random_image(10, 8, 3);
        let pr = params(5);
        let mut p_seq = DualField::zeros(10, 8);
        iterate_exact(&mut p_seq, &v, &pr, 5);
        let cfg = TileConfig::paper_hardware(2).unwrap();
        let mut p_tiled = DualField::zeros(10, 8);
        iterate_tiled_exact(&mut p_tiled, &v, &pr, 5, &cfg);
        assert_eq!(p_seq.px.as_slice(), p_tiled.px.as_slice());
    }

    #[test]
    fn tiled_denoiser_matches_sequential_denoiser() {
        use crate::solver::SequentialSolver;
        let v = random_image(50, 40, 77);
        let pr = params(10);
        let seq = SequentialSolver::new().denoise_with_ctx(&v, &pr, &exact_ctx());
        let tiled = TiledSolver::new(TileConfig::new(24, 20, 2, 2).unwrap()).denoise_with_ctx(
            &v,
            &pr,
            &exact_ctx(),
        );
        assert_eq!(seq.as_slice(), tiled.as_slice());
        assert_eq!(TiledSolver::default().name(), "tiled");
    }

    #[test]
    fn spawn_baseline_and_pooled_paths_are_bit_identical() {
        let v = random_image(50, 38, 5);
        let pr = params(9);
        let cfg = TileConfig::new(20, 16, 2, 3).unwrap();
        let mut p_seq = DualField::zeros(50, 38);
        iterate_exact(&mut p_seq, &v, &pr, 9);

        let mut p_base = DualField::zeros(50, 38);
        chambolle_iterate_tiled_spawn_baseline(&mut p_base, &v, &pr, 9, &cfg);
        assert_eq!(p_seq.px.as_slice(), p_base.px.as_slice());
        assert_eq!(p_seq.py.as_slice(), p_base.py.as_slice());

        for pool_threads in [1usize, 2, 4] {
            let pool = Arc::new(ThreadPool::new(pool_threads));
            let mut p_pool = DualField::zeros(50, 38);
            let ctx = exact_ctx().with_pool(Arc::clone(&pool));
            chambolle_iterate_tiled_with_ctx(&mut p_pool, &v, &pr, 9, &cfg, &ctx).unwrap();
            assert_eq!(
                p_seq.px.as_slice(),
                p_pool.px.as_slice(),
                "pooled px mismatch at {pool_threads} pool threads"
            );
            assert_eq!(p_seq.py.as_slice(), p_pool.py.as_slice());
            assert!(
                pool.stats().tasks > 0,
                "windows must go through the pool queue"
            );
        }
    }

    #[test]
    fn spawn_baseline_with_ctx_honors_pool_telemetry_and_cancel() {
        use crate::cancel::CancelToken;
        let v = random_image(44, 32, 23);
        let pr = params(6);
        let cfg = TileConfig::new(18, 14, 2, 2).unwrap(); // K=2 -> 3 rounds
        let mut p_ref = DualField::zeros(44, 32);
        iterate_exact(&mut p_ref, &v, &pr, 6);

        let tele = Telemetry::null();
        let pool = Arc::new(ThreadPool::new(3));
        let ctx = ExecCtx::default()
            .with_pool(Arc::clone(&pool))
            .with_telemetry(tele.clone());
        let mut p_ctx = DualField::zeros(44, 32);
        chambolle_iterate_tiled_spawn_baseline_with_ctx(&mut p_ctx, &v, &pr, 6, &cfg, &ctx)
            .unwrap();
        assert_eq!(p_ref.px.as_slice(), p_ctx.px.as_slice());
        assert_eq!(p_ref.py.as_slice(), p_ctx.py.as_slice());
        assert!(pool.stats().tasks > 0, "windows must run on the ctx pool");
        assert_eq!(tele.snapshot().counter(names::TILING_ROUNDS), Some(3));

        let token = CancelToken::new();
        token.cancel();
        let ctx = ExecCtx::default().with_cancel(token);
        let mut p_stop = DualField::zeros(44, 32);
        assert!(chambolle_iterate_tiled_spawn_baseline_with_ctx(
            &mut p_stop,
            &v,
            &pr,
            6,
            &cfg,
            &ctx
        )
        .is_err());
        assert_eq!(
            p_stop.px.as_slice(),
            DualField::<f32>::zeros(44, 32).px.as_slice()
        );
    }

    #[test]
    fn tiled_solver_with_shared_pool_matches_and_reuses_it() {
        use crate::solver::SequentialSolver;
        let pool = Arc::new(ThreadPool::new(3));
        let solver =
            TiledSolver::new(TileConfig::new(24, 20, 2, 2).unwrap()).with_pool(Arc::clone(&pool));
        let pr = params(8);
        for seed in [1u64, 2] {
            let v = random_image(47, 33, seed);
            let seq = SequentialSolver::new().denoise_with_ctx(&v, &pr, &exact_ctx());
            assert_eq!(
                seq.as_slice(),
                solver.denoise_with_ctx(&v, &pr, &exact_ctx()).as_slice()
            );
        }
        let stats = pool.stats();
        assert!(
            stats.tasks > 0 && stats.broadcasts > 0,
            "both denoise calls must run on the shared pool: {stats:?}"
        );
    }

    #[test]
    fn single_thread_config_runs_inline_and_matches() {
        // threads == 1 takes the inline (zero-spawn) paths in both the
        // baseline round runner and the pool; results stay exact.
        let v = random_image(30, 26, 8);
        let pr = params(6);
        let cfg = TileConfig::new(14, 12, 2, 1).unwrap();
        let mut p_seq = DualField::zeros(30, 26);
        iterate_exact(&mut p_seq, &v, &pr, 6);
        let mut p_base = DualField::zeros(30, 26);
        chambolle_iterate_tiled_spawn_baseline(&mut p_base, &v, &pr, 6, &cfg);
        let mut p_tile = DualField::zeros(30, 26);
        iterate_tiled_exact(&mut p_tile, &v, &pr, 6, &cfg);
        assert_eq!(p_seq.px.as_slice(), p_base.px.as_slice());
        assert_eq!(p_seq.px.as_slice(), p_tile.px.as_slice());
        assert_eq!(p_seq.py.as_slice(), p_tile.py.as_slice());
    }

    #[test]
    fn cancellable_tiled_iterate_matches_and_cancels_between_rounds() {
        use crate::cancel::{CancelReason, CancelToken};
        let v = random_image(40, 30, 55);
        let pr = params(7);
        let cfg = TileConfig::new(18, 14, 3, 2).unwrap();
        let pool = Arc::new(ThreadPool::new(2));
        let pooled_ctx = ExecCtx::default().with_pool(Arc::clone(&pool));

        // Uncancelled run is bit-identical to the plain pooled path.
        let mut p_plain = DualField::zeros(40, 30);
        chambolle_iterate_tiled_with_ctx(&mut p_plain, &v, &pr, 7, &cfg, &pooled_ctx).unwrap();
        let mut p_canc = DualField::zeros(40, 30);
        let live_ctx = ExecCtx::default()
            .with_pool(Arc::clone(&pool))
            .with_cancel(CancelToken::new());
        chambolle_iterate_tiled_with_ctx(&mut p_canc, &v, &pr, 7, &cfg, &live_ctx).unwrap();
        assert_eq!(p_plain.px.as_slice(), p_canc.px.as_slice());
        assert_eq!(p_plain.py.as_slice(), p_canc.py.as_slice());

        // A pre-cancelled token stops before round 0 and the pool survives
        // for the next (successful) solve.
        let token = CancelToken::new();
        token.cancel();
        let mut p_stop = DualField::zeros(40, 30);
        let stop_ctx = ExecCtx::default()
            .with_pool(Arc::clone(&pool))
            .with_cancel(token);
        let err =
            chambolle_iterate_tiled_with_ctx(&mut p_stop, &v, &pr, 7, &cfg, &stop_ctx).unwrap_err();
        assert_eq!(err.reason, CancelReason::Explicit);
        assert_eq!(
            p_stop.px.as_slice(),
            DualField::<f32>::zeros(40, 30).px.as_slice()
        );
        let mut p_after = DualField::zeros(40, 30);
        chambolle_iterate_tiled_with_ctx(&mut p_after, &v, &pr, 7, &cfg, &pooled_ctx).unwrap();
        assert_eq!(p_plain.px.as_slice(), p_after.px.as_slice());
    }

    #[test]
    fn redundancy_grows_with_merge_factor() {
        let mut prev = 0.0;
        for k in [1u32, 2, 4, 8] {
            let cfg = TileConfig::new(92, 88, k, 1).unwrap();
            let r = TilePlan::new(512, 512, cfg).redundancy_fraction();
            assert!(r >= prev, "redundancy should grow with K: {prev} -> {r}");
            prev = r;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Exactness of the sliding-window scheme for arbitrary geometry.
        #[test]
        fn tiled_equals_sequential_random(
            w in 3usize..48,
            h in 3usize..48,
            tile_w in 8usize..24,
            tile_h in 8usize..24,
            k in 1u32..4,
            iters in 1u32..10,
            seed in any::<u64>(),
        ) {
            prop_assume!(2 * k as usize + 2 < tile_w && 2 * k as usize + 2 < tile_h);
            let v = random_image(w, h, seed);
            let pr = params(iters);
            let mut p_seq = DualField::zeros(w, h);
            iterate_exact(&mut p_seq, &v, &pr, iters);
            let cfg = TileConfig::new(tile_w, tile_h, k, 2).unwrap();
            let mut p_tiled = DualField::zeros(w, h);
            iterate_tiled_exact(&mut p_tiled, &v, &pr, iters, &cfg);
            prop_assert_eq!(p_seq.px.as_slice(), p_tiled.px.as_slice());
            prop_assert_eq!(p_seq.py.as_slice(), p_tiled.py.as_slice());
        }
    }
}
