//! Solver parameters and their validation.

use std::fmt;

/// Parameters of the Chambolle fixed-point iteration (Algorithm 1).
///
/// `theta` and `tau` are the paper's "predefined values that determine the
/// precision"; Chambolle's convergence analysis requires the step ratio
/// `tau / theta <= 1/4`.
///
/// # Examples
///
/// ```
/// use chambolle_core::ChambolleParams;
///
/// let p = ChambolleParams::new(0.25, 0.25 / 4.0, 100)?;
/// assert_eq!(p.iterations, 100);
/// # Ok::<(), chambolle_core::InvalidParamsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChambolleParams {
    /// Coupling constant θ of the quadratic term `‖u − v‖² / (2θ)`.
    pub theta: f32,
    /// Dual gradient step τ (the paper's `dt` control input).
    pub tau: f32,
    /// Number of fixed-point iterations (`Niterations`).
    pub iterations: u32,
}

impl ChambolleParams {
    /// Largest stable step ratio `tau / theta` (Chambolle 2004, Thm. 3.1
    /// as sharpened in its remark).
    pub const MAX_STEP_RATIO: f32 = 0.25;

    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] if `theta <= 0`, `tau <= 0`,
    /// `tau / theta > 1/4`, or `iterations == 0`.
    pub fn new(theta: f32, tau: f32, iterations: u32) -> Result<Self, InvalidParamsError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(theta > 0.0) {
            return Err(InvalidParamsError::new(format!(
                "theta must be positive, got {theta}"
            )));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(tau > 0.0) {
            return Err(InvalidParamsError::new(format!(
                "tau must be positive, got {tau}"
            )));
        }
        if tau / theta > Self::MAX_STEP_RATIO + 1e-6 {
            return Err(InvalidParamsError::new(format!(
                "tau/theta = {} exceeds the stable limit 1/4",
                tau / theta
            )));
        }
        if iterations == 0 {
            return Err(InvalidParamsError::new(
                "iterations must be at least 1".to_owned(),
            ));
        }
        Ok(ChambolleParams {
            theta,
            tau,
            iterations,
        })
    }

    /// Parameters with the standard θ = 0.25, the maximal stable step, and
    /// the given iteration count.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn with_iterations(iterations: u32) -> Self {
        ChambolleParams::new(0.25, 0.25 * Self::MAX_STEP_RATIO, iterations)
            .expect("default ratio is always valid for positive iteration counts")
    }

    /// The paper's evaluation settings: θ = 0.25 with the maximal stable
    /// step τ = θ/4 = 0.0625, and the given iteration count (clamped up to
    /// 1 so the result is always valid).
    ///
    /// Infallible by construction — the fixed θ/τ pair satisfies every
    /// invariant [`ChambolleParams::new`] checks — so call sites that only
    /// vary the iteration knob (Table II sweeps, tests, examples) need
    /// neither `unwrap` nor error plumbing.
    pub const fn paper(iterations: u32) -> Self {
        ChambolleParams {
            theta: 0.25,
            tau: 0.25 * Self::MAX_STEP_RATIO,
            iterations: if iterations == 0 { 1 } else { iterations },
        }
    }

    /// The step ratio `tau / theta` used inside the update.
    pub fn step_ratio(&self) -> f32 {
        self.tau / self.theta
    }
}

impl Default for ChambolleParams {
    /// θ = 0.25, τ = θ/4, 100 iterations (the middle row of Table II).
    fn default() -> Self {
        ChambolleParams::with_iterations(100)
    }
}

/// Parameters of the TV-L1 optical-flow outer loop (Zach et al. 2007 — the
/// numerical scheme of the paper's references \[11\] and \[13\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TvL1Params {
    /// Data-term weight λ.
    ///
    /// Calibrated for intensities in `[0, 1]`: the common literature value
    /// λ = 0.15 assumes 0–255 intensities, which is λ ≈ 38 at unit scale.
    pub lambda: f32,
    /// Chambolle parameters used by each inner TV denoising solve.
    pub inner: ChambolleParams,
    /// Number of warps (re-linearizations of the data term) per level.
    pub warps: u32,
    /// Thresholding/Chambolle alternations per warp (the fixed-point loop on
    /// the coupled energy; each alternation runs one full inner solve per
    /// flow component).
    pub outer_iterations: u32,
    /// Maximum number of pyramid levels.
    pub pyramid_levels: usize,
    /// Per-level pyramid scale factor in `(0, 1)`; 0.5 is the classic
    /// halving, gentler values (e.g. 0.8) handle larger motions.
    pub scale_factor: f32,
    /// Apply a 3×3 median filter to the flow after each warp (the Wedel et
    /// al. 2009 robustification; off by default, matching the plain Zach
    /// scheme the paper implements).
    pub median_filter: bool,
}

impl TvL1Params {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] if `lambda <= 0`, `warps == 0`, or
    /// `pyramid_levels == 0`.
    pub fn new(
        lambda: f32,
        inner: ChambolleParams,
        warps: u32,
        outer_iterations: u32,
        pyramid_levels: usize,
    ) -> Result<Self, InvalidParamsError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(lambda > 0.0) {
            return Err(InvalidParamsError::new(format!(
                "lambda must be positive, got {lambda}"
            )));
        }
        if warps == 0 {
            return Err(InvalidParamsError::new("warps must be at least 1".into()));
        }
        if outer_iterations == 0 {
            return Err(InvalidParamsError::new(
                "outer_iterations must be at least 1".into(),
            ));
        }
        if pyramid_levels == 0 {
            return Err(InvalidParamsError::new(
                "pyramid_levels must be at least 1".into(),
            ));
        }
        Ok(TvL1Params {
            lambda,
            inner,
            warps,
            outer_iterations,
            pyramid_levels,
            scale_factor: 0.5,
            median_filter: false,
        })
    }

    /// Copy of the parameters with a different pyramid scale factor.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] unless `0 < factor < 1`.
    pub fn with_scale_factor(mut self, factor: f32) -> Result<Self, InvalidParamsError> {
        if !(factor > 0.0 && factor < 1.0) {
            return Err(InvalidParamsError::new(format!(
                "scale factor must be in (0, 1), got {factor}"
            )));
        }
        self.scale_factor = factor;
        Ok(self)
    }

    /// Copy of the parameters with the median-filter robustification
    /// enabled.
    pub fn with_median_filter(mut self) -> Self {
        self.median_filter = true;
        self
    }
}

impl Default for TvL1Params {
    /// λ = 38 (≡ 0.15 on 0–255 intensities), 5 warps of 5 alternations,
    /// 5 pyramid levels, 30 inner iterations per solve — the usual TV-L1
    /// settings of Zach et al. rescaled to unit intensities.
    fn default() -> Self {
        TvL1Params {
            lambda: 38.0,
            inner: ChambolleParams::with_iterations(30),
            warps: 5,
            outer_iterations: 5,
            pyramid_levels: 5,
            scale_factor: 0.5,
            median_filter: false,
        }
    }
}

/// Error produced when solver parameters are out of their valid domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidParamsError {
    message: String,
}

impl InvalidParamsError {
    pub(crate) fn new(message: String) -> Self {
        InvalidParamsError { message }
    }
}

impl fmt::Display for InvalidParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid solver parameters: {}", self.message)
    }
}

impl std::error::Error for InvalidParamsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params_accepted() {
        let p = ChambolleParams::new(0.25, 0.0625, 10).unwrap();
        assert!((p.step_ratio() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(ChambolleParams::new(0.0, 0.1, 10).is_err());
        assert!(ChambolleParams::new(-1.0, 0.1, 10).is_err());
        assert!(ChambolleParams::new(0.25, 0.0, 10).is_err());
        assert!(ChambolleParams::new(0.25, 0.25, 10).is_err()); // ratio 1 > 1/4
        assert!(ChambolleParams::new(0.25, 0.0625, 0).is_err());
        assert!(ChambolleParams::new(f32::NAN, 0.1, 10).is_err());
    }

    #[test]
    fn paper_params_are_valid_and_clamped() {
        let p = ChambolleParams::paper(50);
        assert_eq!(p, ChambolleParams::new(0.25, 0.0625, 50).unwrap());
        assert_eq!(ChambolleParams::paper(0).iterations, 1);
    }

    #[test]
    fn default_is_valid() {
        let p = ChambolleParams::default();
        assert!(p.step_ratio() <= ChambolleParams::MAX_STEP_RATIO + 1e-6);
        assert_eq!(p.iterations, 100);
    }

    #[test]
    fn tvl1_validation() {
        assert!(TvL1Params::new(0.0, ChambolleParams::default(), 3, 5, 3).is_err());
        assert!(TvL1Params::new(0.1, ChambolleParams::default(), 0, 5, 3).is_err());
        assert!(TvL1Params::new(0.1, ChambolleParams::default(), 3, 0, 3).is_err());
        assert!(TvL1Params::new(0.1, ChambolleParams::default(), 3, 5, 0).is_err());
        assert!(TvL1Params::new(0.1, ChambolleParams::default(), 3, 5, 3).is_ok());
    }

    #[test]
    fn scale_factor_validation() {
        let p = TvL1Params::default();
        assert_eq!(p.scale_factor, 0.5);
        assert!(p.with_scale_factor(0.8).is_ok());
        assert!(p.with_scale_factor(1.0).is_err());
        assert!(p.with_scale_factor(0.0).is_err());
        assert!(p.with_scale_factor(f32::NAN).is_err());
    }

    #[test]
    fn median_filter_flag() {
        let p = TvL1Params::default();
        assert!(!p.median_filter);
        assert!(p.with_median_filter().median_filter);
    }

    #[test]
    fn error_display_mentions_cause() {
        let e = ChambolleParams::new(0.25, 0.25, 10).unwrap_err();
        assert!(e.to_string().contains("1/4"));
    }
}
