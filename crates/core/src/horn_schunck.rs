//! Horn–Schunck optical flow — the classical quadratic-smoothness baseline
//! (the paper's reference \[7\], Horn & Schunck 1981).
//!
//! Unlike TV-L1, the smoothness penalty is quadratic (`α²‖∇u‖²`), so motion
//! boundaries blur; the data term is also quadratic, so outliers are not
//! rejected. We run it coarse-to-fine with warping (the modern formulation),
//! which is the fair baseline configuration: the remaining difference to
//! TV-L1 is exactly the regularizer/data-norm choice that TV-L1's Chambolle
//! inner solver exists to handle.

use chambolle_imaging::{
    upsample_flow_component, FlowField, Grid, Image, Pyramid, WarpLinearization,
};

use crate::params::InvalidParamsError;
use crate::tvl1::FlowError;

/// Horn–Schunck parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HornSchunckParams {
    /// Smoothness weight α (larger → smoother flow). On unit-intensity
    /// images useful values are around 0.01–0.1.
    pub alpha: f32,
    /// Jacobi iterations per warp.
    pub iterations: u32,
    /// Warps (re-linearizations) per pyramid level.
    pub warps: u32,
    /// Maximum pyramid levels.
    pub pyramid_levels: usize,
}

impl HornSchunckParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] for non-positive `alpha` or zero
    /// counts.
    pub fn new(
        alpha: f32,
        iterations: u32,
        warps: u32,
        pyramid_levels: usize,
    ) -> Result<Self, InvalidParamsError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(alpha > 0.0) {
            return Err(InvalidParamsError::new(format!(
                "alpha must be positive, got {alpha}"
            )));
        }
        if iterations == 0 || warps == 0 || pyramid_levels == 0 {
            return Err(InvalidParamsError::new(
                "iterations, warps and pyramid_levels must be at least 1".into(),
            ));
        }
        Ok(HornSchunckParams {
            alpha,
            iterations,
            warps,
            pyramid_levels,
        })
    }
}

impl Default for HornSchunckParams {
    /// α = 0.05, 100 Jacobi iterations, 5 warps, 5 levels.
    fn default() -> Self {
        HornSchunckParams {
            alpha: 0.05,
            iterations: 100,
            warps: 5,
            pyramid_levels: 5,
        }
    }
}

/// The Horn–Schunck solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HornSchunck {
    params: HornSchunckParams,
}

impl HornSchunck {
    /// Creates a solver.
    pub fn new(params: HornSchunckParams) -> Self {
        HornSchunck { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &HornSchunckParams {
        &self.params
    }

    /// Estimates the flow from `i0` to `i1` (same convention as TV-L1:
    /// `i1(x + u) ≈ i0(x)`).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] if the frames are empty or differ in size.
    pub fn flow(&self, i0: &Image, i1: &Image) -> Result<FlowField, FlowError> {
        if i0.dims() != i1.dims() {
            return Err(FlowError::DimensionMismatch {
                first: i0.dims(),
                second: i1.dims(),
            });
        }
        if i0.is_empty() {
            return Err(FlowError::EmptyInput);
        }
        let pyr0 = Pyramid::build(i0, self.params.pyramid_levels);
        let pyr1 = Pyramid::build(i1, self.params.pyramid_levels);
        let levels = pyr0.len().min(pyr1.len());
        let coarsest = &pyr0.levels()[levels - 1];
        let mut flow = FlowField::zeros(coarsest.width(), coarsest.height());

        for level in (0..levels).rev() {
            let l0 = &pyr0.levels()[level];
            let l1 = &pyr1.levels()[level];
            if flow.dims() != l0.dims() {
                flow = FlowField::from_components(
                    upsample_flow_component(&flow.u1, l0.width(), l0.height()),
                    upsample_flow_component(&flow.u2, l0.width(), l0.height()),
                );
            }
            for _ in 0..self.params.warps {
                flow = self.solve_linearized(l0, l1, &flow);
            }
        }
        Ok(flow)
    }

    /// Jacobi iterations on the linearized Horn–Schunck equations around
    /// the warp point `u0`.
    fn solve_linearized(&self, i0: &Image, i1: &Image, u0: &FlowField) -> FlowField {
        let lin = WarpLinearization::new(i0, i1, u0);
        let (w, h) = i0.dims();
        let alpha_sq = self.params.alpha * self.params.alpha;
        let mut u = u0.clone();
        for _ in 0..self.params.iterations {
            let ubar = neighbor_average(&u.u1);
            let vbar = neighbor_average(&u.u2);
            let mut next = FlowField::zeros(w, h);
            for y in 0..h {
                for x in 0..w {
                    let ix = lin.gx[(x, y)];
                    let iy = lin.gy[(x, y)];
                    // rho at (ubar, vbar): It + Ix*(ubar-u0) + Iy*(vbar-v0).
                    let rho = lin.rho(x, y, ubar[(x, y)], vbar[(x, y)]);
                    let denom = alpha_sq + ix * ix + iy * iy;
                    next.u1[(x, y)] = ubar[(x, y)] - ix * rho / denom;
                    next.u2[(x, y)] = vbar[(x, y)] - iy * rho / denom;
                }
            }
            u = next;
        }
        u
    }
}

/// 4-neighbor average with clamp-to-edge boundaries (the `ū` of the
/// Horn–Schunck update).
fn neighbor_average(f: &Image) -> Image {
    let (w, h) = f.dims();
    Grid::from_fn(w, h, |x, y| {
        let left = f[(x.saturating_sub(1), y)];
        let right = f[((x + 1).min(w - 1), y)];
        let up = f[(x, y.saturating_sub(1))];
        let down = f[(x, (y + 1).min(h - 1))];
        0.25 * (left + right + up + down)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chambolle_imaging::{average_endpoint_error, render_pair, Motion, NoiseTexture, Scene};

    fn quick() -> HornSchunckParams {
        HornSchunckParams::new(0.05, 60, 3, 4).unwrap()
    }

    #[test]
    fn validation() {
        assert!(HornSchunckParams::new(0.0, 10, 3, 3).is_err());
        assert!(HornSchunckParams::new(f32::NAN, 10, 3, 3).is_err());
        assert!(HornSchunckParams::new(0.1, 0, 3, 3).is_err());
        assert!(HornSchunckParams::new(0.1, 10, 0, 3).is_err());
        assert!(HornSchunckParams::new(0.1, 10, 3, 0).is_err());
    }

    #[test]
    fn recovers_translation() {
        let scene = NoiseTexture::new(41);
        let pair = render_pair(&scene, 80, 60, Motion::Translation { du: 2.0, dv: -1.0 });
        let flow = HornSchunck::new(quick()).flow(&pair.i0, &pair.i1).unwrap();
        let aee = average_endpoint_error(&flow, &pair.truth);
        assert!(aee < 0.5, "Horn-Schunck AEE {aee}");
    }

    #[test]
    fn zero_motion_gives_small_flow() {
        let i0 = NoiseTexture::new(42).render(48, 48);
        let flow = HornSchunck::new(quick()).flow(&i0, &i0).unwrap();
        assert!(flow.max_magnitude() < 0.05);
    }

    #[test]
    fn rejects_mismatched_frames() {
        let a = Grid::new(10, 10, 0.0f32);
        let b = Grid::new(12, 10, 0.0f32);
        assert!(HornSchunck::new(quick()).flow(&a, &b).is_err());
    }

    #[test]
    fn blurs_motion_boundaries_more_than_tvl1() {
        // A half-moving scene: left half static, right half translating.
        // Quadratic smoothness spreads the motion across the boundary;
        // TV preserves it. Compare the flow's transition sharpness.
        use crate::params::{ChambolleParams, TvL1Params};
        use crate::tvl1::TvL1Solver;
        let (w, h) = (96usize, 48usize);
        let bg = NoiseTexture::new(43);
        let fg = NoiseTexture::with_octaves(44, &[(8.0, 1.0), (4.0, 0.5)]);
        let du = 3.0f32;
        let frame = |shift: f32| -> Grid<f32> {
            Grid::from_fn(w, h, |x, y| {
                if x < w / 2 {
                    0.7 * bg.sample(x as f32, y as f32)
                } else {
                    0.3 + 0.7 * fg.sample(x as f32 - shift, y as f32)
                }
            })
        };
        let i0 = frame(0.0);
        let i1 = frame(du);
        let hs = HornSchunck::new(quick()).flow(&i0, &i1).unwrap();
        let tv_params =
            TvL1Params::new(38.0, ChambolleParams::with_iterations(25), 3, 4, 4).unwrap();
        let (tv, _) = TvL1Solver::sequential(tv_params).flow(&i0, &i1).unwrap();
        // Width of the transition band: columns whose mean |u1| is between
        // 20% and 80% of the moving-half motion.
        let band = |f: &FlowField| -> usize {
            (0..w)
                .filter(|&x| {
                    let m: f32 = (8..h - 8).map(|y| f.u1[(x, y)]).sum::<f32>() / (h - 16) as f32;
                    m > 0.2 * du && m < 0.8 * du
                })
                .count()
        };
        let hs_band = band(&hs);
        let tv_band = band(&tv);
        assert!(
            tv_band <= hs_band,
            "TV should keep the boundary at least as sharp: TV {tv_band} vs HS {hs_band} columns"
        );
    }
}
