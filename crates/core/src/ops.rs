//! Discrete TV operators: forward-difference gradient and its negative
//! adjoint, the backward-difference divergence.
//!
//! These are the `Forward*`/`Backward*` functions of the paper's Algorithm 1.
//! Note on conventions: the paper's prose describes `ForwardX(z)` as "each
//! element reduced by its right neighbor" (`z[x] − z[x+1]`), which is the
//! *negative* of the standard forward difference; taken literally the dual
//! update ascends instead of descending and diverges (see
//! `solver::tests::literal_prose_convention_diverges`). We implement the
//! standard Chambolle (2004) discretization, which is what the paper's
//! sources \[11\]–\[13\] use:
//!
//! - gradient (forward, Neumann): `(∇z)ˣ[x] = z[x+1] − z[x]`, zero at the
//!   last column;
//! - divergence (backward, adjoint boundary rules):
//!   `(div p)ˣ[x] = px[x] − px[x−1]` in the interior, `px[0]` at the first
//!   column and `−px[x−1]` at the last.
//!
//! With these rules `⟨∇u, p⟩ = −⟨u, div p⟩` exactly (tested below), which is
//! what the convergence proof needs.

use chambolle_imaging::Grid;

use crate::real::Real;

/// Forward difference in x with Neumann boundary (zero at the last column):
/// the paper's `ForwardX` in the standard sign convention.
pub fn forward_diff_x<R: Real>(z: &Grid<R>) -> Grid<R> {
    let mut out = Grid::new(z.width(), z.height(), R::ZERO);
    forward_diff_x_into(z, &mut out);
    out
}

/// In-place variant of [`forward_diff_x`] (reuses `out`'s storage).
///
/// # Panics
///
/// Panics if `out` has different dimensions from `z`.
pub fn forward_diff_x_into<R: Real>(z: &Grid<R>, out: &mut Grid<R>) {
    assert_eq!(z.dims(), out.dims(), "output grid must match input size");
    let (w, h) = z.dims();
    for y in 0..h {
        for x in 0..w {
            out[(x, y)] = if x + 1 < w {
                z[(x + 1, y)] - z[(x, y)]
            } else {
                R::ZERO
            };
        }
    }
}

/// Forward difference in y with Neumann boundary (zero at the last row):
/// the paper's `ForwardY` in the standard sign convention.
pub fn forward_diff_y<R: Real>(z: &Grid<R>) -> Grid<R> {
    let mut out = Grid::new(z.width(), z.height(), R::ZERO);
    forward_diff_y_into(z, &mut out);
    out
}

/// In-place variant of [`forward_diff_y`].
///
/// # Panics
///
/// Panics if `out` has different dimensions from `z`.
pub fn forward_diff_y_into<R: Real>(z: &Grid<R>, out: &mut Grid<R>) {
    assert_eq!(z.dims(), out.dims(), "output grid must match input size");
    let (w, h) = z.dims();
    for y in 0..h {
        for x in 0..w {
            out[(x, y)] = if y + 1 < h {
                z[(x, y + 1)] - z[(x, y)]
            } else {
                R::ZERO
            };
        }
    }
}

/// Backward-difference x-component of the divergence at one cell, with
/// Chambolle's boundary rules. `BackwardX` of the paper.
#[inline]
pub fn div_x_at<R: Real>(px: &Grid<R>, x: usize, y: usize) -> R {
    let w = px.width();
    if w == 1 {
        // A single column has a zero gradient, so the adjoint is zero too.
        R::ZERO
    } else if x == 0 {
        px[(0, y)]
    } else if x + 1 < w {
        px[(x, y)] - px[(x - 1, y)]
    } else {
        -px[(x - 1, y)]
    }
}

/// Backward-difference y-component of the divergence at one cell, with
/// Chambolle's boundary rules. `BackwardY` of the paper.
#[inline]
pub fn div_y_at<R: Real>(py: &Grid<R>, x: usize, y: usize) -> R {
    let h = py.height();
    if h == 1 {
        // A single row has a zero gradient, so the adjoint is zero too.
        R::ZERO
    } else if y == 0 {
        py[(x, 0)]
    } else if y + 1 < h {
        py[(x, y)] - py[(x, y - 1)]
    } else {
        -py[(x, y - 1)]
    }
}

/// Divergence of a dual vector field:
/// `div p = BackwardX(px) + BackwardY(py)` with adjoint boundary rules.
///
/// # Panics
///
/// Panics if `px` and `py` dimensions differ.
pub fn divergence<R: Real>(px: &Grid<R>, py: &Grid<R>) -> Grid<R> {
    let mut out = Grid::new(px.width(), px.height(), R::ZERO);
    divergence_into(px, py, &mut out);
    out
}

/// In-place variant of [`divergence`].
///
/// # Panics
///
/// Panics if grid dimensions differ.
pub fn divergence_into<R: Real>(px: &Grid<R>, py: &Grid<R>, out: &mut Grid<R>) {
    assert_eq!(px.dims(), py.dims(), "px and py must match in size");
    assert_eq!(px.dims(), out.dims(), "output grid must match input size");
    let (w, h) = px.dims();
    for y in 0..h {
        for x in 0..w {
            out[(x, y)] = div_x_at(px, x, y) + div_y_at(py, x, y);
        }
    }
}

/// Total variation `Σ |∇u|` with the forward-difference gradient.
pub fn total_variation<R: Real>(u: &Grid<R>) -> f64 {
    let (w, h) = u.dims();
    let mut acc = 0.0f64;
    for y in 0..h {
        for x in 0..w {
            let gx = if x + 1 < w {
                (u[(x + 1, y)] - u[(x, y)]).to_f64()
            } else {
                0.0
            };
            let gy = if y + 1 < h {
                (u[(x, y + 1)] - u[(x, y)]).to_f64()
            } else {
                0.0
            };
            acc += (gx * gx + gy * gy).sqrt();
        }
    }
    acc
}

/// Inner product `⟨a, b⟩ = Σ a·b` over matching grids, accumulated in `f64`.
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn inner_product<R: Real>(a: &Grid<R>, b: &Grid<R>) -> f64 {
    assert_eq!(a.dims(), b.dims(), "grids must match in size");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x.to_f64() * y.to_f64())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid_from(vals: &[f64], w: usize, h: usize) -> Grid<f64> {
        Grid::from_vec(w, h, vals.to_vec()).unwrap()
    }

    #[test]
    fn forward_diff_of_ramp() {
        let z = Grid::from_fn(4, 3, |x, _| x as f64);
        let gx = forward_diff_x(&z);
        for y in 0..3 {
            assert_eq!(gx[(0, y)], 1.0);
            assert_eq!(gx[(2, y)], 1.0);
            assert_eq!(gx[(3, y)], 0.0, "Neumann boundary");
        }
        let gy = forward_diff_y(&z);
        assert!(gy.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn divergence_boundary_rules() {
        // px = 1 everywhere: div_x = 1 at x=0, 0 interior, -1 at x=W-1.
        let px = Grid::new(4, 1, 1.0f64);
        let py = Grid::new(4, 1, 0.0f64);
        let d = divergence(&px, &py);
        assert_eq!(d.as_slice(), &[1.0, 0.0, 0.0, -1.0]);
    }

    #[test]
    fn divergence_ignores_last_column_px() {
        let mut px = Grid::new(4, 2, 0.0f64);
        px[(3, 0)] = 5.0; // never read by the adjoint divergence
        let py = Grid::new(4, 2, 0.0f64);
        let d = divergence(&px, &py);
        assert!(d.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn adjointness_on_fixed_example() {
        let u = grid_from(&[1.0, -2.0, 3.0, 0.5, 4.0, -1.0], 3, 2);
        let px = grid_from(&[0.2, -0.7, 0.1, 0.9, -0.3, 0.4], 3, 2);
        let py = grid_from(&[-0.5, 0.6, 0.8, 0.0, 0.3, -0.9], 3, 2);
        let gx = forward_diff_x(&u);
        let gy = forward_diff_y(&u);
        let lhs = inner_product(&gx, &px) + inner_product(&gy, &py);
        let rhs = -inner_product(&u, &divergence(&px, &py));
        assert!((lhs - rhs).abs() < 1e-12, "⟨∇u,p⟩ = -⟨u,div p⟩ violated");
    }

    #[test]
    fn total_variation_of_step() {
        // A single vertical edge of height h and jump 1 has TV = h.
        let u = Grid::from_fn(6, 4, |x, _| if x < 3 { 0.0f64 } else { 1.0 });
        assert!((total_variation(&u) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn total_variation_nonnegative_and_zero_on_constant() {
        let u = Grid::new(5, 5, 3.25f64);
        assert_eq!(total_variation(&u), 0.0);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_divergence_panics() {
        let px = Grid::new(3, 3, 0.0f64);
        let py = Grid::new(4, 3, 0.0f64);
        divergence(&px, &py);
    }

    proptest! {
        /// The discrete Gauss identity ⟨∇u, p⟩ = -⟨u, div p⟩ must hold for
        /// arbitrary fields — this is what makes the dual iteration converge.
        #[test]
        fn adjointness_random(
            w in 1usize..9,
            h in 1usize..9,
            seed in any::<u64>(),
        ) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let u = Grid::from_fn(w, h, |_, _| rng.gen_range(-1.0f64..1.0));
            let px = Grid::from_fn(w, h, |_, _| rng.gen_range(-1.0f64..1.0));
            let py = Grid::from_fn(w, h, |_, _| rng.gen_range(-1.0f64..1.0));
            let lhs = inner_product(&forward_diff_x(&u), &px)
                + inner_product(&forward_diff_y(&u), &py);
            let rhs = -inner_product(&u, &divergence(&px, &py));
            prop_assert!((lhs - rhs).abs() < 1e-9);
        }

        /// div and ∇ are linear; check additivity of div on random fields.
        #[test]
        fn divergence_is_linear(
            w in 1usize..8,
            h in 1usize..8,
            seed in any::<u64>(),
        ) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mk = |rng: &mut StdRng| Grid::from_fn(w, h, |_, _| rng.gen_range(-1.0f64..1.0));
            let (pxa, pya, pxb, pyb) = (mk(&mut rng), mk(&mut rng), mk(&mut rng), mk(&mut rng));
            let sum_px = Grid::from_fn(w, h, |x, y| pxa[(x, y)] + pxb[(x, y)]);
            let sum_py = Grid::from_fn(w, h, |x, y| pya[(x, y)] + pyb[(x, y)]);
            let da = divergence(&pxa, &pya);
            let db = divergence(&pxb, &pyb);
            let dsum = divergence(&sum_px, &sum_py);
            for i in 0..dsum.len() {
                prop_assert!((dsum.as_slice()[i] - (da.as_slice()[i] + db.as_slice()[i])).abs() < 1e-12);
            }
        }
    }
}
