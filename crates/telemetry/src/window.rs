//! Rolling time-windowed aggregation: rate counters and sliding-window
//! histograms over a ring of fixed-width time buckets.
//!
//! The process-lifetime [`crate::metrics::Metrics`] registry answers "what
//! did this run do end to end"; this module answers "what is the service
//! doing *right now*" — the last `bucket_width × buckets` of activity,
//! queryable at any moment for live scraping ([`WindowSnapshot`]) and SLO
//! burn evaluation. Zero external dependencies like the rest of the crate.
//!
//! Every mutating and reading method has a `*_at(now_us)` twin taking an
//! explicit timestamp (microseconds since the handle's epoch), which is
//! what tests use to stay deterministic.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::JsonValue;
use crate::metrics::{Histogram, DEFAULT_BUCKETS};

/// Shape of the rolling window: `buckets` ring slots of `bucket_width_us`
/// microseconds each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one time bucket in microseconds.
    pub bucket_width_us: u64,
    /// Number of buckets in the ring; the window spans
    /// `bucket_width_us * buckets`.
    pub buckets: usize,
}

impl WindowConfig {
    /// Ten one-second buckets — a 10 s rolling window.
    pub fn default_window() -> WindowConfig {
        WindowConfig {
            bucket_width_us: 1_000_000,
            buckets: 10,
        }
    }

    /// Total window span in microseconds.
    pub fn window_us(&self) -> u64 {
        self.bucket_width_us * self.buckets as u64
    }
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig::default_window()
    }
}

/// A ring of per-bucket values advanced by absolute bucket index; slots
/// skipped while idle are zeroed on the way forward.
#[derive(Debug, Clone)]
struct Ring<T: Clone> {
    slots: Vec<T>,
    /// Absolute index (now_us / width) of the bucket `head` points at.
    head_abs: u64,
    head: usize,
    zero: T,
}

impl<T: Clone> Ring<T> {
    fn new(len: usize, zero: T) -> Ring<T> {
        Ring {
            slots: vec![zero.clone(); len],
            head_abs: 0,
            head: 0,
            zero,
        }
    }

    /// Advances the head to the bucket holding `abs`, clearing skipped
    /// slots, then returns the head slot.
    fn advance(&mut self, abs: u64) -> &mut T {
        if abs > self.head_abs {
            let skipped = (abs - self.head_abs).min(self.slots.len() as u64);
            for _ in 0..skipped {
                self.head = (self.head + 1) % self.slots.len();
                self.slots[self.head] = self.zero.clone();
            }
            self.head_abs = abs;
        }
        &mut self.slots[self.head]
    }

    /// The slots still inside the window ending at bucket `abs` (older
    /// buckets that the ring hasn't overwritten yet are excluded).
    fn live(&self, abs: u64) -> impl Iterator<Item = &T> {
        let len = self.slots.len() as u64;
        self.slots.iter().enumerate().filter_map(move |(i, slot)| {
            // Slot i holds absolute bucket head_abs - ((head - i) mod len).
            let age = (self.head as u64 + len - i as u64) % len;
            let slot_abs = self.head_abs.wrapping_sub(age);
            // Live iff within [abs - len + 1, abs] and not in the future.
            if slot_abs <= abs && abs - slot_abs < len && slot_abs <= self.head_abs {
                Some(slot)
            } else {
                None
            }
        })
    }
}

struct WindowInner {
    config: WindowConfig,
    counters: BTreeMap<String, Ring<u64>>,
    histograms: BTreeMap<String, Ring<Histogram>>,
}

/// A shareable registry of windowed rate counters and histograms.
///
/// Cloning shares the underlying rings.
///
/// # Examples
///
/// ```
/// use chambolle_telemetry::window::{WindowConfig, WindowedMetrics};
///
/// let w = WindowedMetrics::new(WindowConfig { bucket_width_us: 1_000, buckets: 4 });
/// w.mark_at("requests", 3, 500);
/// w.observe_at("latency_us", 120.0, 600);
/// assert_eq!(w.count_in_window_at("requests", 900), 3);
/// let snap = w.snapshot_at(900);
/// assert_eq!(snap.histogram("latency_us").unwrap().count, 1);
/// ```
#[derive(Clone)]
pub struct WindowedMetrics {
    inner: Arc<Mutex<WindowInner>>,
    epoch: Instant,
}

impl std::fmt::Debug for WindowedMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedMetrics").finish()
    }
}

impl WindowedMetrics {
    /// An empty registry over the given window shape.
    pub fn new(config: WindowConfig) -> WindowedMetrics {
        assert!(config.bucket_width_us > 0, "bucket width must be positive");
        assert!(config.buckets > 0, "window needs at least one bucket");
        WindowedMetrics {
            inner: Arc::new(Mutex::new(WindowInner {
                config,
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
            })),
            epoch: Instant::now(),
        }
    }

    /// An empty registry over [`WindowConfig::default_window`].
    pub fn default_window() -> WindowedMetrics {
        WindowedMetrics::new(WindowConfig::default_window())
    }

    /// The window shape.
    pub fn config(&self) -> WindowConfig {
        self.inner.lock().expect("window poisoned").config
    }

    /// Microseconds since this registry was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Adds `delta` to a rate counter at the current time.
    pub fn mark(&self, name: &str, delta: u64) {
        self.mark_at(name, delta, self.now_us());
    }

    /// Adds `delta` to a rate counter at an explicit timestamp.
    pub fn mark_at(&self, name: &str, delta: u64, now_us: u64) {
        let mut inner = self.inner.lock().expect("window poisoned");
        let abs = now_us / inner.config.bucket_width_us;
        let buckets = inner.config.buckets;
        let ring = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Ring::new(buckets, 0));
        *ring.advance(abs) += delta;
    }

    /// Records a histogram observation at the current time.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_at(name, value, self.now_us());
    }

    /// Records a histogram observation at an explicit timestamp.
    pub fn observe_at(&self, name: &str, value: f64, now_us: u64) {
        let mut inner = self.inner.lock().expect("window poisoned");
        let abs = now_us / inner.config.bucket_width_us;
        let buckets = inner.config.buckets;
        let ring = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Ring::new(buckets, Histogram::new(&DEFAULT_BUCKETS)));
        ring.advance(abs).observe(value);
    }

    /// Sum of a rate counter over the window ending now.
    pub fn count_in_window(&self, name: &str) -> u64 {
        self.count_in_window_at(name, self.now_us())
    }

    /// Sum of a rate counter over the window ending at `now_us`.
    pub fn count_in_window_at(&self, name: &str, now_us: u64) -> u64 {
        let inner = self.inner.lock().expect("window poisoned");
        let abs = now_us / inner.config.bucket_width_us;
        inner
            .counters
            .get(name)
            .map(|ring| ring.live(abs).sum())
            .unwrap_or(0)
    }

    /// The merged window histogram for `name`, if any observation landed
    /// inside the window ending at `now_us`.
    pub fn histogram_in_window_at(&self, name: &str, now_us: u64) -> Option<Histogram> {
        let inner = self.inner.lock().expect("window poisoned");
        let abs = now_us / inner.config.bucket_width_us;
        let ring = inner.histograms.get(name)?;
        let mut merged = Histogram::new(&DEFAULT_BUCKETS);
        for h in ring.live(abs) {
            merged.merge(h);
        }
        if merged.count() == 0 {
            None
        } else {
            Some(merged)
        }
    }

    /// A point-in-time snapshot of every windowed metric, taken now.
    pub fn snapshot(&self) -> WindowSnapshot {
        self.snapshot_at(self.now_us())
    }

    /// A point-in-time snapshot at an explicit timestamp.
    pub fn snapshot_at(&self, now_us: u64) -> WindowSnapshot {
        let inner = self.inner.lock().expect("window poisoned");
        let abs = now_us / inner.config.bucket_width_us;
        let window_us = inner.config.window_us();
        // The effective span is capped by how long the registry has lived,
        // so early rates aren't diluted by empty future buckets.
        let span_us = window_us.min(now_us.max(inner.config.bucket_width_us));
        let rates = inner
            .counters
            .iter()
            .map(|(name, ring)| {
                let count: u64 = ring.live(abs).sum();
                let per_sec = count as f64 / (span_us as f64 / 1e6);
                (name.clone(), RateSnapshot { count, per_sec })
            })
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .filter_map(|(name, ring)| {
                let mut merged = Histogram::new(&DEFAULT_BUCKETS);
                for h in ring.live(abs) {
                    merged.merge(h);
                }
                if merged.count() == 0 {
                    return None;
                }
                Some((name.clone(), HistogramSnapshot::from_histogram(&merged)))
            })
            .collect();
        WindowSnapshot {
            now_us,
            window_us,
            rates,
            histograms,
        }
    }
}

/// A rate counter's window total plus its normalized per-second rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSnapshot {
    /// Events inside the window.
    pub count: u64,
    /// Events per second over the effective window span.
    pub per_sec: f64,
}

/// Summary of a windowed histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations inside the window.
    pub count: u64,
    /// Mean observation.
    pub mean: f64,
    /// Median (bucket-resolved; see [`Histogram::quantile`]).
    pub p50: f64,
    /// 99th percentile (bucket-resolved).
    pub p99: f64,
    /// Largest observation in the window.
    pub max: f64,
    /// Observations above the last bucket bound (`+Inf` bucket).
    pub overflow: u64,
}

impl HistogramSnapshot {
    fn from_histogram(h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            count: h.count(),
            mean: h.mean(),
            p50: h.p50(),
            p99: h.p99(),
            max: h.max(),
            overflow: h.overflow(),
        }
    }

    /// Serializes the summary.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("count".into(), self.count.into()),
            ("mean".into(), self.mean.into()),
            ("p50".into(), self.p50.into()),
            ("p99".into(), self.p99.into()),
            ("max".into(), self.max.into()),
            ("overflow".into(), self.overflow.into()),
        ])
    }
}

/// One point-in-time view over every windowed metric.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// When the snapshot was taken (µs since the registry epoch).
    pub now_us: u64,
    /// Configured window span in microseconds.
    pub window_us: u64,
    /// Rate counters by name.
    pub rates: BTreeMap<String, RateSnapshot>,
    /// Windowed histograms by name (only those with observations).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl WindowSnapshot {
    /// Looks up a rate counter.
    pub fn rate(&self, name: &str) -> Option<RateSnapshot> {
        self.rates.get(name).copied()
    }

    /// Looks up a histogram summary.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Serializes the snapshot as one JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("now_us".into(), self.now_us.into()),
            ("window_us".into(), self.window_us.into()),
            (
                "rates".into(),
                JsonValue::Object(
                    self.rates
                        .iter()
                        .map(|(name, r)| {
                            (
                                name.clone(),
                                JsonValue::Object(vec![
                                    ("count".into(), r.count.into()),
                                    ("per_sec".into(), r.per_sec.into()),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                JsonValue::Object(
                    self.histograms
                        .iter()
                        .map(|(name, h)| (name.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WindowedMetrics {
        WindowedMetrics::new(WindowConfig {
            bucket_width_us: 1_000,
            buckets: 4,
        })
    }

    #[test]
    fn counts_inside_the_window_and_expires_old_buckets() {
        let w = small();
        w.mark_at("r", 2, 100); // bucket 0
        w.mark_at("r", 3, 1_100); // bucket 1
        assert_eq!(w.count_in_window_at("r", 1_500), 5);
        // Window is 4 buckets: at bucket 4 (t=4_500), bucket 0 has expired.
        assert_eq!(w.count_in_window_at("r", 4_500), 3);
        // At bucket 5, bucket 1 has expired too.
        assert_eq!(w.count_in_window_at("r", 5_500), 0);
    }

    #[test]
    fn idle_gaps_zero_skipped_buckets() {
        let w = small();
        w.mark_at("r", 10, 0);
        // Jump far ahead: the write at bucket 100 must not see stale slots.
        w.mark_at("r", 1, 100_000);
        assert_eq!(w.count_in_window_at("r", 100_000), 1);
    }

    #[test]
    fn windowed_histogram_merges_live_buckets_only() {
        let w = small();
        w.observe_at("h", 10.0, 100);
        w.observe_at("h", 1_000.0, 2_100);
        let merged = w.histogram_in_window_at("h", 2_500).unwrap();
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.max(), 1_000.0);
        // At t=5_500 the first bucket has rolled off.
        let merged = w.histogram_in_window_at("h", 5_500).unwrap();
        assert_eq!(merged.count(), 1);
        assert_eq!(merged.max(), 1_000.0);
        assert!(w.histogram_in_window_at("h", 60_000).is_none());
    }

    #[test]
    fn snapshot_reports_rates_and_quantiles() {
        let w = small();
        for t in [100, 600, 1_200, 1_800] {
            w.mark_at("req", 1, t);
            w.observe_at("lat", 100.0, t);
        }
        let snap = w.snapshot_at(2_000);
        let rate = snap.rate("req").unwrap();
        assert_eq!(rate.count, 4);
        // Effective span = min(window 4ms, elapsed 2ms) = 2ms -> 2000/s.
        assert!((rate.per_sec - 2_000.0).abs() < 1.0);
        let lat = snap.histogram("lat").unwrap();
        assert_eq!(lat.count, 4);
        assert_eq!(lat.p99, 100.0);
        assert_eq!(lat.overflow, 0);
        assert_eq!(snap.window_us, 4_000);
    }

    #[test]
    fn snapshot_json_is_schema_stable() {
        let w = small();
        w.mark_at("req", 2, 100);
        w.observe_at("lat", 50.0, 100);
        let json = w.snapshot_at(500).to_json();
        assert_eq!(json.get_path("window_us").unwrap().as_f64(), Some(4_000.0));
        assert_eq!(
            json.get_path("rates.req.count").unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(
            json.get_path("histograms.lat.p99").unwrap().as_f64(),
            Some(50.0)
        );
        assert_eq!(
            json.get_path("histograms.lat.overflow").unwrap().as_f64(),
            Some(0.0)
        );
    }

    #[test]
    fn wall_clock_twins_agree_with_explicit_time() {
        let w = WindowedMetrics::default_window();
        w.mark("r", 1);
        w.observe("h", 5.0);
        assert_eq!(w.count_in_window("r"), 1);
        let snap = w.snapshot();
        assert_eq!(snap.rate("r").unwrap().count, 1);
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(w.config().buckets, 10);
    }

    #[test]
    fn clones_share_the_rings() {
        let w = small();
        let other = w.clone();
        w.mark_at("r", 1, 100);
        other.mark_at("r", 2, 200);
        assert_eq!(w.count_in_window_at("r", 300), 3);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_rejected() {
        WindowedMetrics::new(WindowConfig {
            bucket_width_us: 0,
            buckets: 4,
        });
    }
}
