//! RAII span timers.

use crate::Telemetry;

/// An open span: created by [`Telemetry::span`], closed (and timed) on drop.
///
/// Closing emits a `span_end` event and records the elapsed wall time, in
/// microseconds, into the histogram `span.<name>` — so p50/p90/p99 of every
/// instrumented region come for free in the final report.
///
/// Spans nest: the event stream carries the nesting depth, and a span opened
/// while another is alive is a child of it (the Chrome trace renders them as
/// stacked slices).
///
/// # Examples
///
/// ```
/// use chambolle_telemetry::Telemetry;
///
/// let tele = Telemetry::null();
/// {
///     let _solve = tele.span("solve");
///     let _round = tele.span("round"); // nested
/// } // both close here, innermost first
/// let snap = tele.snapshot();
/// assert_eq!(snap.get("span.round").unwrap().as_histogram().unwrap().count(), 1);
/// ```
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to a named variable"]
pub struct Span {
    pub(crate) telemetry: Telemetry,
    pub(crate) name: String,
    /// Begin timestamp; `None` when the owning telemetry is disabled.
    pub(crate) begin_micros: Option<u64>,
}

impl Span {
    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(begin) = self.begin_micros else {
            return;
        };
        self.telemetry.close_span(&self.name, begin);
    }
}

/// Metric name of the duration histogram a span feeds.
pub fn span_metric_name(span_name: &str) -> String {
    format!("span.{span_name}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Event, EventKind as EK, MemorySink};

    fn kinds(events: &[Event]) -> Vec<(String, &'static str, u32)> {
        events
            .iter()
            .map(|e| {
                let tag = match e.kind {
                    EK::SpanBegin => "B",
                    EK::SpanEnd { .. } => "E",
                    _ => "other",
                };
                (e.name.clone(), tag, e.depth)
            })
            .collect()
    }

    #[test]
    fn spans_nest_and_unwind_in_order() {
        let sink = MemorySink::new();
        let events = sink.events();
        let tele = Telemetry::new(Box::new(sink));
        {
            let _outer = tele.span("outer");
            {
                let _mid = tele.span("mid");
                let _inner = tele.span("inner");
                // `inner` drops before `mid` (reverse declaration order).
            }
            let _sibling = tele.span("sibling");
        }
        let events = events.lock().unwrap();
        assert_eq!(
            kinds(&events),
            vec![
                ("outer".to_string(), "B", 0),
                ("mid".to_string(), "B", 1),
                ("inner".to_string(), "B", 2),
                ("inner".to_string(), "E", 2),
                ("mid".to_string(), "E", 1),
                ("sibling".to_string(), "B", 1),
                ("sibling".to_string(), "E", 1),
                ("outer".to_string(), "E", 0),
            ]
        );
        // Every span also produced a duration observation.
        let snap = tele.snapshot();
        for name in ["span.outer", "span.mid", "span.inner", "span.sibling"] {
            assert_eq!(
                snap.get(name).unwrap().as_histogram().unwrap().count(),
                1,
                "{name}"
            );
        }
    }

    #[test]
    fn span_end_elapsed_is_monotone_with_nesting() {
        let sink = MemorySink::new();
        let events = sink.events();
        let tele = Telemetry::new(Box::new(sink));
        {
            let _outer = tele.span("outer");
            let _inner = tele.span("inner");
        }
        let events = events.lock().unwrap();
        let elapsed: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                EK::SpanEnd { elapsed_micros } => Some(elapsed_micros),
                _ => None,
            })
            .collect();
        assert_eq!(elapsed.len(), 2);
        // inner closes first; the outer span covers it, so outer >= inner.
        assert!(elapsed[1] >= elapsed[0]);
    }

    #[test]
    fn disabled_span_is_inert() {
        let tele = Telemetry::disabled();
        let span = tele.span("anything");
        assert_eq!(span.name(), "anything");
        drop(span);
        assert!(tele.snapshot().is_empty());
    }
}
