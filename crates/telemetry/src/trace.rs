//! Request-scoped distributed tracing: trace contexts, span records, and a
//! bounded in-memory ring of recently completed request traces.
//!
//! A [`TraceContext`] is minted once per logical request (client side) and
//! propagated across the wire so every hop — admission, batching, solve,
//! retry, idempotent replay — records [`SpanRecord`]s under the same
//! 128-bit trace id. A [`Tracer`] collects those spans, assembles them into
//! [`RequestTrace`] trees when a trace finishes, and keeps the most recent
//! traces in a bounded ring with a "slowest N" view.
//!
//! Zero external dependencies, like the rest of the crate. A disabled
//! tracer costs one branch per call; recording never blocks the caller on
//! I/O (sink export happens through the owning [`crate::Telemetry`]).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use crate::json::JsonValue;

/// Default capacity of the finished-trace ring.
pub const DEFAULT_TRACE_RING: usize = 64;

/// A propagated trace identity: which request this work belongs to and
/// which span is the current causal parent.
///
/// `trace_id == 0` means "no tracing" — the wire encodes that as an
/// all-zero trace block and every layer skips span recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// 128-bit request-unique trace id (0 = tracing disabled).
    pub trace_id: u128,
    /// The span id of the current causal parent (0 = root).
    pub span_id: u64,
    /// Whether downstream layers should record spans for this trace.
    pub sampled: bool,
}

impl TraceContext {
    /// The "no tracing" context: all-zero, never sampled.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
        sampled: false,
    };

    /// Mints a fresh sampled root context from a SplitMix64 state.
    ///
    /// Two `next` calls build the 128-bit trace id, a third the root span
    /// id; the id is re-rolled in the (astronomically unlikely) all-zero
    /// case so zero stays reserved for "disabled".
    pub fn mint(state: &mut u64) -> TraceContext {
        let mut trace_id =
            (u128::from(splitmix_next(state)) << 64) | u128::from(splitmix_next(state));
        while trace_id == 0 {
            trace_id = u128::from(splitmix_next(state));
        }
        let mut span_id = splitmix_next(state);
        while span_id == 0 {
            span_id = splitmix_next(state);
        }
        TraceContext {
            trace_id,
            span_id,
            sampled: true,
        }
    }

    /// A child context: same trace, fresh span id, parented at `self`.
    pub fn child(&self, state: &mut u64) -> TraceContext {
        if !self.is_active() {
            return TraceContext::NONE;
        }
        let mut span_id = splitmix_next(state);
        while span_id == 0 {
            span_id = splitmix_next(state);
        }
        TraceContext {
            trace_id: self.trace_id,
            span_id,
            sampled: self.sampled,
        }
    }

    /// Whether this context carries a real trace (nonzero id and sampled).
    pub fn is_active(&self) -> bool {
        self.trace_id != 0 && self.sampled
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        TraceContext::NONE
    }
}

/// SplitMix64: the same tiny deterministic generator the service layer uses
/// for jitter and idempotency keys.
pub fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One completed span within a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Owning trace.
    pub trace_id: u128,
    /// This span's id.
    pub span_id: u64,
    /// Causal parent span id (0 = root of the tree).
    pub parent_span_id: u64,
    /// Stage name, e.g. `request`, `queue`, `batch`, `solve`, `retry`.
    pub name: String,
    /// Start, microseconds since the tracer's owner epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Free-form attributes (attempt number, batch size, lane, ...).
    pub attrs: Vec<(String, JsonValue)>,
}

impl SpanRecord {
    /// Serializes the span as one JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("trace_id".into(), format!("{:032x}", self.trace_id).into()),
            ("span_id".into(), self.span_id.into()),
            ("parent_span_id".into(), self.parent_span_id.into()),
            ("name".into(), self.name.as_str().into()),
            ("start_us".into(), self.start_us.into()),
            ("dur_us".into(), self.dur_us.into()),
        ];
        if !self.attrs.is_empty() {
            fields.push(("attrs".into(), JsonValue::Object(self.attrs.clone())));
        }
        JsonValue::Object(fields)
    }
}

/// A finished request trace: the assembled span tree plus summary fields.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// The trace id shared by every span.
    pub trace_id: u128,
    /// Spans sorted by `start_us` (ties keep record order).
    pub spans: Vec<SpanRecord>,
    /// Duration of the root span (the longest causal chain observed).
    pub total_us: u64,
}

impl RequestTrace {
    fn assemble(trace_id: u128, mut spans: Vec<SpanRecord>) -> RequestTrace {
        spans.sort_by_key(|s| s.start_us);
        let total_us = spans
            .iter()
            .filter(|s| s.parent_span_id == 0)
            .map(|s| s.dur_us)
            .max()
            .unwrap_or_else(|| spans.iter().map(|s| s.dur_us).max().unwrap_or(0));
        RequestTrace {
            trace_id,
            spans,
            total_us,
        }
    }

    /// Builds a trace from an arbitrary span collection — e.g. merging the
    /// server-side spans of several attempts of one retried request, or
    /// joining client- and server-side views of the same trace id.
    pub fn from_spans(trace_id: u128, spans: Vec<SpanRecord>) -> RequestTrace {
        RequestTrace::assemble(trace_id, spans)
    }

    /// The root spans (parent id 0).
    pub fn roots(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(|s| s.parent_span_id == 0)
    }

    /// Direct children of `span_id`, in start order.
    pub fn children(&self, span_id: u64) -> impl Iterator<Item = &SpanRecord> {
        self.spans
            .iter()
            .filter(move |s| s.parent_span_id == span_id)
    }

    /// Looks up a span by name (first match in start order).
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Whether the tree is complete: at least one root exists and every
    /// non-root span's parent id is present in the trace (no orphans).
    pub fn is_complete(&self) -> bool {
        if self.spans.is_empty() || !self.spans.iter().any(|s| s.parent_span_id == 0) {
            return false;
        }
        self.spans.iter().all(|s| {
            s.parent_span_id == 0 || self.spans.iter().any(|p| p.span_id == s.parent_span_id)
        })
    }

    /// Serializes the trace (summary plus every span).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("trace_id".into(), format!("{:032x}", self.trace_id).into()),
            ("total_us".into(), self.total_us.into()),
            ("span_count".into(), (self.spans.len() as u64).into()),
            (
                "spans".into(),
                JsonValue::Array(self.spans.iter().map(SpanRecord::to_json).collect()),
            ),
        ])
    }
}

struct TracerInner {
    /// Spans of traces still in flight, keyed by trace id.
    open: HashMap<u128, Vec<SpanRecord>>,
    /// Finished traces, oldest first, bounded by `capacity`.
    finished: VecDeque<RequestTrace>,
    capacity: usize,
}

/// Collects spans and assembles finished request traces into a bounded
/// ring. Cloning shares the ring; a [`Tracer::disabled`] handle makes every
/// call a single branch.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TracerInner>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Tracer {
    /// An enabled tracer keeping the most recent `capacity` traces.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TracerInner {
                open: HashMap::new(),
                finished: VecDeque::new(),
                capacity: capacity.max(1),
            }))),
        }
    }

    /// An enabled tracer with the default ring size.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_TRACE_RING)
    }

    /// A tracer that records nothing.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one completed span. Spans with an inactive trace id are
    /// dropped silently.
    pub fn record_span(&self, span: SpanRecord) {
        let Some(inner) = &self.inner else {
            return;
        };
        if span.trace_id == 0 {
            return;
        }
        let mut inner = inner.lock().expect("tracer poisoned");
        inner.open.entry(span.trace_id).or_default().push(span);
    }

    /// Finishes a trace: moves its spans into the ring as a
    /// [`RequestTrace`]. A trace with no recorded spans is ignored.
    pub fn finish(&self, trace_id: u128) {
        let Some(inner) = &self.inner else {
            return;
        };
        if trace_id == 0 {
            return;
        }
        let mut inner = inner.lock().expect("tracer poisoned");
        let Some(spans) = inner.open.remove(&trace_id) else {
            return;
        };
        if spans.is_empty() {
            return;
        }
        let trace = RequestTrace::assemble(trace_id, spans);
        if inner.finished.len() == inner.capacity {
            inner.finished.pop_front();
        }
        inner.finished.push_back(trace);
    }

    /// A finished trace by id, if still in the ring.
    pub fn get(&self, trace_id: u128) -> Option<RequestTrace> {
        let inner = self.inner.as_ref()?;
        let inner = inner.lock().expect("tracer poisoned");
        inner
            .finished
            .iter()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// All finished traces, oldest first.
    pub fn recent(&self) -> Vec<RequestTrace> {
        match &self.inner {
            Some(inner) => inner
                .lock()
                .expect("tracer poisoned")
                .finished
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// The `n` slowest finished traces, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<RequestTrace> {
        let mut traces = self.recent();
        traces.sort_by_key(|t| std::cmp::Reverse(t.total_us));
        traces.truncate(n);
        traces
    }

    /// Number of finished traces currently held.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().expect("tracer poisoned").finished.len(),
            None => 0,
        }
    }

    /// Whether the ring holds no finished traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Tracer {
    /// The disabled handle.
    fn default() -> Self {
        Tracer::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u128, id: u64, parent: u64, name: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_span_id: parent,
            name: name.into(),
            start_us: start,
            dur_us: dur,
            attrs: vec![],
        }
    }

    #[test]
    fn mint_is_deterministic_and_nonzero() {
        let mut a = 42u64;
        let mut b = 42u64;
        let ca = TraceContext::mint(&mut a);
        let cb = TraceContext::mint(&mut b);
        assert_eq!(ca, cb, "same state mints the same context");
        assert_ne!(ca.trace_id, 0);
        assert_ne!(ca.span_id, 0);
        assert!(ca.is_active());
        let cc = TraceContext::mint(&mut a);
        assert_ne!(ca.trace_id, cc.trace_id, "successive mints differ");
    }

    #[test]
    fn child_keeps_trace_id_and_none_stays_none() {
        let mut state = 7u64;
        let root = TraceContext::mint(&mut state);
        let child = root.child(&mut state);
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
        assert!(child.sampled);
        assert_eq!(TraceContext::NONE.child(&mut state), TraceContext::NONE);
        assert!(!TraceContext::default().is_active());
    }

    #[test]
    fn tracer_assembles_sorted_complete_trees() {
        let tracer = Tracer::new();
        tracer.record_span(span(9, 2, 1, "solve", 50, 20));
        tracer.record_span(span(9, 3, 1, "queue", 10, 30));
        tracer.record_span(span(9, 1, 0, "request", 0, 100));
        tracer.finish(9);
        let trace = tracer.get(9).expect("finished trace is retrievable");
        assert_eq!(trace.total_us, 100);
        assert!(trace.is_complete());
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["request", "queue", "solve"], "sorted by start");
        assert_eq!(trace.roots().count(), 1);
        assert_eq!(trace.children(1).count(), 2);
        assert_eq!(trace.find("queue").unwrap().dur_us, 30);
    }

    #[test]
    fn orphan_spans_make_a_trace_incomplete() {
        let tracer = Tracer::new();
        tracer.record_span(span(5, 1, 0, "request", 0, 10));
        tracer.record_span(span(5, 7, 99, "stray", 1, 2)); // parent 99 missing
        tracer.finish(5);
        assert!(!tracer.get(5).unwrap().is_complete());

        let tracer2 = Tracer::new();
        tracer2.record_span(span(6, 2, 1, "child-without-root", 0, 1));
        tracer2.finish(6);
        assert!(!tracer2.get(6).unwrap().is_complete(), "no root span");
    }

    #[test]
    fn ring_is_bounded_and_slowest_sorts() {
        let tracer = Tracer::with_capacity(3);
        for i in 1..=5u128 {
            tracer.record_span(span(i, 1, 0, "request", 0, (i as u64) * 10));
            tracer.finish(i);
        }
        assert_eq!(tracer.len(), 3, "ring holds the most recent 3");
        assert!(tracer.get(1).is_none(), "oldest evicted");
        let slowest = tracer.slowest(2);
        assert_eq!(slowest.len(), 2);
        assert_eq!(slowest[0].total_us, 50);
        assert_eq!(slowest[1].total_us, 40);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        tracer.record_span(span(1, 1, 0, "request", 0, 1));
        tracer.finish(1);
        assert!(!tracer.is_enabled());
        assert!(tracer.is_empty());
        assert!(tracer.get(1).is_none());
        assert!(tracer.slowest(10).is_empty());
    }

    #[test]
    fn trace_json_carries_hex_id_and_spans() {
        let tracer = Tracer::new();
        let mut s = span(0xAB, 1, 0, "request", 0, 42);
        s.attrs.push(("attempt".into(), 1u64.into()));
        tracer.record_span(s);
        tracer.finish(0xAB);
        let json = tracer.get(0xAB).unwrap().to_json();
        assert_eq!(
            json.get("trace_id").unwrap().as_str().unwrap(),
            format!("{:032x}", 0xABu128)
        );
        assert_eq!(json.get_path("total_us").unwrap().as_f64(), Some(42.0));
        let spans = json.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].get_path("attrs.attempt").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn finish_without_spans_is_a_noop() {
        let tracer = Tracer::new();
        tracer.finish(77);
        assert!(tracer.is_empty());
        tracer.record_span(span(0, 1, 0, "dropped", 0, 1)); // inactive trace id
        tracer.finish(0);
        assert!(tracer.is_empty());
    }
}
