//! Cross-crate telemetry for the Chambolle reproduction: a metric registry
//! (counters, gauges, fixed-bucket histograms with p50/p90/p99), RAII span
//! timers, pluggable event sinks (no-op, in-memory, JSON-lines, Chrome
//! `trace_event`), and a serializable [`report::RunReport`].
//!
//! Zero external dependencies — the workspace builds fully offline, and the
//! instrumentation must never pull weight the kernels it observes don't.
//!
//! # Design
//!
//! A [`Telemetry`] handle is a cheap `Clone` (an `Arc` around the registry
//! and sink). Instrumented code holds an `Option<Telemetry>` or a
//! [`Telemetry::disabled`] handle; every recording method starts with a
//! single branch on that option, so the disabled path costs one predictable
//! branch and touches no locks, clocks, or allocations — the "measurable
//! no-op" contract (`tests/telemetry_noop.rs` at the workspace root pins the
//! bit-identical-output half of it).
//!
//! Aggregation happens in [`metrics::Metrics`]; the configured
//! [`sink::Sink`] additionally sees the raw ordered event stream, which is
//! how the JSON-lines log and the `about://tracing` export are produced.
//! Cycle-accurate waveforms stay in `hwsim::trace` (VCD) — the two layers
//! complement each other: VCD answers "what did the BRAM schedule do each
//! cycle", telemetry answers "what did this run do end to end".
//!
//! # Examples
//!
//! ```
//! use chambolle_telemetry::{names, Telemetry};
//!
//! let tele = Telemetry::null(); // metrics on, event stream discarded
//! {
//!     let _solve = tele.span("solve");
//!     tele.counter_add(names::SOLVER_ITERATIONS, 100);
//!     tele.gauge_set(names::SOLVER_FINAL_GAP, 0.034);
//! }
//! let snapshot = tele.snapshot();
//! assert_eq!(snapshot.counter(names::SOLVER_ITERATIONS), Some(100));
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod span;
pub mod trace;
pub mod window;

use std::io;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use json::JsonValue;
use metrics::Metrics;
use sink::{Event, EventKind, MemorySink, NullSink, Sink};
use span::Span;

pub use report::{RunReport, RUN_REPORT_SCHEMA};
pub use trace::{RequestTrace, SpanRecord, TraceContext, Tracer};
pub use window::{WindowConfig, WindowSnapshot, WindowedMetrics};

/// The metric name registry.
///
/// Every instrumented subsystem publishes under a fixed dotted prefix so
/// reports stay schema-stable; see DESIGN.md § Observability for the prose
/// version of this table.
pub mod names {
    /// Counter: Chambolle iterations actually executed.
    pub const SOLVER_ITERATIONS: &str = "solver.iterations";
    /// Counter: duality-gap checkpoints evaluated.
    pub const SOLVER_GAP_CHECKS: &str = "solver.gap_checks";
    /// Gauge: last observed primal ROF energy.
    pub const SOLVER_FINAL_ENERGY: &str = "solver.final_energy";
    /// Gauge: last observed duality gap.
    pub const SOLVER_FINAL_GAP: &str = "solver.final_gap";
    /// Instant event: one convergence checkpoint (iteration, energy, gap).
    pub const SOLVER_CONVERGENCE_POINT: &str = "solver.convergence_point";

    /// Counter: tile-solver rounds executed (⌈N/K⌉ per denoise).
    pub const TILING_ROUNDS: &str = "tiling.rounds";
    /// Counter: window (tile) computations executed.
    pub const TILING_WINDOW_LOADS: &str = "tiling.window_loads";
    /// Gauge: windows per round of the active plan.
    pub const TILING_WINDOWS_PER_ROUND: &str = "tiling.windows_per_round";
    /// Gauge: redundant-halo compute fraction of the active plan.
    pub const TILING_REDUNDANCY_RATIO: &str = "tiling.redundancy_ratio";

    /// Counter: simulated accelerator cycles (busiest window per frame).
    pub const HWSIM_CYCLES: &str = "hwsim.cycles";
    /// Counter: accelerator window loads (including u-rounds).
    pub const HWSIM_WINDOW_LOADS: &str = "hwsim.window_loads";
    /// Counter: accelerator iteration rounds.
    pub const HWSIM_ROUNDS: &str = "hwsim.rounds";
    /// Counter: frames pushed through the accelerator.
    pub const HWSIM_FRAMES: &str = "hwsim.frames";
    /// Counter: BRAM reads issued on port 1 (the design's read port).
    pub const HWSIM_BRAM_PORT1_READS: &str = "hwsim.bram.port1.reads";
    /// Counter: BRAM reads issued on port 2.
    pub const HWSIM_BRAM_PORT2_READS: &str = "hwsim.bram.port2.reads";
    /// Counter: BRAM writes issued on port 1.
    pub const HWSIM_BRAM_PORT1_WRITES: &str = "hwsim.bram.port1.writes";
    /// Counter: BRAM writes issued on port 2 (the design's write port).
    pub const HWSIM_BRAM_PORT2_WRITES: &str = "hwsim.bram.port2.writes";
    /// Counter: port-1 cycles with no access (stall/idle tally).
    pub const HWSIM_BRAM_PORT1_IDLE: &str = "hwsim.bram.port1.idle_cycles";
    /// Counter: port-2 cycles with no access (stall/idle tally).
    pub const HWSIM_BRAM_PORT2_IDLE: &str = "hwsim.bram.port2.idle_cycles";
    /// Counter: sqrt-LUT table lookups performed by the PE-V datapaths.
    pub const HWSIM_SQRT_LOOKUPS: &str = "hwsim.sqrt.lut_lookups";

    /// Gauge: closed-form model cycles for the last projected frame.
    pub const MODEL_FRAME_CYCLES: &str = "timing.model.frame_cycles";
    /// Gauge: closed-form model fps for the last projected frame.
    pub const MODEL_FPS: &str = "timing.model.fps";

    /// Counter: tasks executed by the parallel worker pool.
    pub const PAR_TASKS: &str = "par.tasks";
    /// Counter: tiles stolen across worker queues by the pool.
    pub const PAR_STEALS: &str = "par.steal_count";
    /// Counter: pool broadcasts (whole-pool park/unpark cycles).
    pub const PAR_BROADCASTS: &str = "par.broadcasts";

    /// Counter: guard-layer fault detections.
    pub const GUARD_DETECTIONS: &str = "guard.detections";
    /// Counter: recovery actions taken (all kinds).
    pub const GUARD_RECOVERIES: &str = "guard.recoveries";
    /// Counter: falls back to the sequential reference path.
    pub const GUARD_FALLBACKS: &str = "guard.fallbacks";
    /// Counter: runs that finished in degraded mode.
    pub const GUARD_DEGRADED: &str = "guard.degraded";
    /// Prefix for per-kind recovery-action counters
    /// (e.g. `guard.action.step_backoff`).
    pub const GUARD_ACTION_PREFIX: &str = "guard.action.";

    /// Counter: requests submitted to the service front door.
    pub const SERVICE_SUBMITTED: &str = "service.submitted";
    /// Counter: requests admitted past admission control.
    pub const SERVICE_ACCEPTED: &str = "service.accepted";
    /// Counter: submissions rejected because the queue was at capacity.
    pub const SERVICE_REJECTED_QUEUE_FULL: &str = "service.rejected.queue_full";
    /// Counter: submissions rejected because the service was draining.
    pub const SERVICE_REJECTED_SHUTTING_DOWN: &str = "service.rejected.shutting_down";
    /// Counter: submissions rejected for invalid workloads/parameters.
    pub const SERVICE_REJECTED_INVALID: &str = "service.rejected.invalid";
    /// Counter: requests completed successfully.
    pub const SERVICE_COMPLETED: &str = "service.completed";
    /// Counter: requests that failed in the solver (guard exhausted/panic).
    pub const SERVICE_FAILED: &str = "service.failed";
    /// Counter: requests cancelled explicitly by the client.
    pub const SERVICE_CANCELLED: &str = "service.cancelled";
    /// Counter: requests that exceeded their deadline.
    pub const SERVICE_DEADLINE_EXCEEDED: &str = "service.deadline_exceeded";
    /// Counter: batches dispatched to the solver pool.
    pub const SERVICE_BATCHES: &str = "service.batches";
    /// Histogram: requests coalesced per dispatched batch.
    pub const SERVICE_BATCH_SIZE: &str = "service.batch_size";
    /// Gauge: queue depth observed at the latest admission decision.
    pub const SERVICE_QUEUE_DEPTH: &str = "service.queue_depth";
    /// Counter: queue-depth crossings of the high watermark (rising edge).
    pub const SERVICE_HIGH_WATERMARK: &str = "service.watermark.high";
    /// Counter: queue-depth crossings of the low watermark (falling edge).
    pub const SERVICE_LOW_WATERMARK: &str = "service.watermark.low";
    /// Histogram: microseconds a request waited in the queue.
    pub const SERVICE_QUEUE_LATENCY_US: &str = "service.latency.queue_us";
    /// Histogram: microseconds a request spent in the solver.
    pub const SERVICE_SOLVE_LATENCY_US: &str = "service.latency.solve_us";
    /// Histogram: microseconds from submission to response.
    pub const SERVICE_TOTAL_LATENCY_US: &str = "service.latency.total_us";
    /// Counter: brownout activations (queue depth crossed the high
    /// watermark while a degradation policy was configured).
    pub const SERVICE_BROWNOUT_ENTERED: &str = "service.brownout.entered";
    /// Counter: brownout deactivations (depth fell back to the low
    /// watermark; full fidelity restored).
    pub const SERVICE_BROWNOUT_EXITED: &str = "service.brownout.exited";
    /// Counter: responses served at the degraded fidelity tier.
    pub const SERVICE_DEGRADED_RESPONSES: &str = "service.degraded_responses";
    /// Counter: health/readiness probes answered by the front-end.
    pub const SERVICE_HEALTH_PROBES: &str = "service.health_probes";
    /// Counter: wire requests answered from the idempotency cache instead
    /// of recomputing.
    pub const SERVICE_IDEMPOTENT_HITS: &str = "service.idempotent.hits";

    /// Counter: client retry attempts beyond the first try.
    pub const SERVICE_RETRY_ATTEMPTS: &str = "service.retry.attempts";
    /// Counter: requests that eventually succeeded after >= 1 retry.
    pub const SERVICE_RETRY_RECOVERED: &str = "service.retry.recovered";
    /// Counter: requests abandoned after exhausting the retry budget.
    pub const SERVICE_RETRY_EXHAUSTED: &str = "service.retry.exhausted";
    /// Histogram: microseconds from first failure to eventual success on
    /// requests that needed retries (client-observed recovery time).
    pub const SERVICE_RETRY_RECOVERY_US: &str = "service.retry.recovery_us";

    /// Counter: circuit-breaker transitions into `Open`.
    pub const SERVICE_BREAKER_OPENED: &str = "service.breaker.opened";
    /// Counter: circuit-breaker transitions into `HalfOpen` (probe allowed).
    pub const SERVICE_BREAKER_HALF_OPEN: &str = "service.breaker.half_open";
    /// Counter: circuit-breaker transitions back into `Closed`.
    pub const SERVICE_BREAKER_CLOSED: &str = "service.breaker.closed";
    /// Gauge: current breaker state (0 closed, 1 open, 2 half-open).
    pub const SERVICE_BREAKER_STATE: &str = "service.breaker.state";

    /// Counter: wire metrics-snapshot requests answered by the front-end.
    pub const SERVICE_METRICS_PROBES: &str = "service.metrics_probes";
    /// Counter: spans recorded into the request tracer.
    pub const SERVICE_TRACE_SPANS: &str = "service.trace.spans";
    /// Counter: request traces completed and retained in the trace ring.
    pub const SERVICE_TRACE_FINISHED: &str = "service.trace.finished";

    /// Counter: per-lane SLO breaches (latency objective missed or request
    /// failed), qualified with the lane (`service.slo.breach.interactive`).
    pub const SERVICE_SLO_BREACH_PREFIX: &str = "service.slo.breach.";
    /// Counter: transitions into SLO burn (edge-counted, like brownout).
    pub const SERVICE_SLO_BURN_ENTERED: &str = "service.slo.burn_entered";
    /// Counter: transitions out of SLO burn.
    pub const SERVICE_SLO_BURN_EXITED: &str = "service.slo.burn_exited";
    /// Gauge: the worst per-lane burn rate observed at the last evaluation
    /// (breach fraction over the window divided by the error budget).
    pub const SERVICE_SLO_BURN_RATE: &str = "service.slo.burn_rate";

    /// Counter: chaos-injected connection resets.
    pub const SERVICE_CHAOS_RESETS: &str = "service.chaos.resets";
    /// Counter: chaos-injected byte corruptions.
    pub const SERVICE_CHAOS_CORRUPTIONS: &str = "service.chaos.corruptions";
    /// Counter: chaos-injected read stalls.
    pub const SERVICE_CHAOS_STALLS: &str = "service.chaos.stalls";
    /// Counter: chaos-injected partial writes (prefix flushed, then reset).
    pub const SERVICE_CHAOS_PARTIAL_WRITES: &str = "service.chaos.partial_writes";
    /// Counter: chaos-injected server crashes after commit, before respond.
    pub const SERVICE_CHAOS_SERVER_PANICS: &str = "service.chaos.server_panics";

    /// Gauge: `f32` lanes per vector op of the selected kernel backend
    /// (1 scalar, 4 SSE2, 8 AVX2, 16 AVX-512).
    pub const BACKEND_SIMD_LANES: &str = "backend.simd_lanes";
    /// Gauge: 1 if the host CPU supports the SSE2 backend, else 0.
    pub const BACKEND_SSE2_SUPPORTED: &str = "backend.sse2_supported";
    /// Gauge: 1 if the host CPU supports the AVX2 backend, else 0.
    pub const BACKEND_AVX2_SUPPORTED: &str = "backend.avx2_supported";
    /// Gauge: 1 if the host CPU supports the AVX-512 backend, else 0.
    pub const BACKEND_AVX512_SUPPORTED: &str = "backend.avx512_supported";
    /// Gauge: 1 when the active numerics tier is Fast, 0 when Exact.
    pub const BACKEND_NUMERICS_FAST: &str = "backend.numerics_fast";

    /// Counter: tuning profiles loaded and applied at startup.
    pub const TUNE_PROFILE_LOADED: &str = "tune.profile.loaded";
    /// Counter: tuning-profile loads that fell back to defaults (missing,
    /// corrupt, wrong schema, wrong machine, or invalid knobs).
    pub const TUNE_PROFILE_FALLBACK: &str = "tune.profile.fallback";
    /// Counter: configurations measured (or pruned) by the tuning search.
    pub const TUNE_TRIALS: &str = "tune.trials";
    /// Counter: search candidates pruned before full measurement.
    pub const TUNE_TRIALS_PRUNED: &str = "tune.trials_pruned";
    /// Histogram: per-trial measured score, milliseconds.
    pub const TUNE_TRIAL_MS: &str = "tune.trial_ms";
}

struct Inner {
    metrics: Metrics,
    sink: Box<dyn Sink>,
    depth: u32,
}

/// A shareable telemetry handle.
///
/// Cloning shares the underlying registry and sink. A disabled handle
/// ([`Telemetry::disabled`]) makes every operation a single branch.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Inner>>>,
    epoch: Instant,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Telemetry {
    /// A handle that records nothing and costs one branch per call.
    pub fn disabled() -> Self {
        Telemetry {
            inner: None,
            epoch: Instant::now(),
        }
    }

    /// An enabled handle feeding `sink`.
    pub fn new(sink: Box<dyn Sink>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Inner {
                metrics: Metrics::new(),
                sink,
                depth: 0,
            }))),
            epoch: Instant::now(),
        }
    }

    /// Metrics on, event stream discarded ([`sink::NullSink`]).
    pub fn null() -> Self {
        Telemetry::new(Box::new(NullSink))
    }

    /// Metrics on, events buffered in memory; returns the handle plus the
    /// shared event buffer.
    pub fn memory() -> (Self, Arc<Mutex<Vec<Event>>>) {
        let sink = MemorySink::new();
        let events = sink.events();
        (Telemetry::new(Box::new(sink)), events)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn emit(&self, name: &str, kind: EventKind) {
        let Some(inner) = &self.inner else {
            return;
        };
        let micros = self.now_micros();
        let mut inner = inner.lock().expect("telemetry poisoned");
        match &kind {
            EventKind::CounterAdd(delta) => inner.metrics.counter_add(name, *delta),
            EventKind::GaugeSet(value) => inner.metrics.gauge_set(name, *value),
            EventKind::Observe(value) => inner.metrics.observe(name, *value),
            _ => {}
        }
        let event = Event {
            micros,
            name: name.to_string(),
            kind,
            depth: inner.depth,
        };
        inner.sink.record(&event);
    }

    /// Adds to a counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if self.inner.is_none() {
            return;
        }
        self.emit(name, EventKind::CounterAdd(delta));
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if self.inner.is_none() {
            return;
        }
        self.emit(name, EventKind::GaugeSet(value));
    }

    /// Records a histogram observation.
    pub fn observe(&self, name: &str, value: f64) {
        if self.inner.is_none() {
            return;
        }
        self.emit(name, EventKind::Observe(value));
    }

    /// Emits a point-in-time event with a free-form payload.
    pub fn event(&self, name: &str, fields: Vec<(String, JsonValue)>) {
        if self.inner.is_none() {
            return;
        }
        self.emit(name, EventKind::Instant(fields));
    }

    /// Opens a RAII span; the returned guard times its own scope.
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                telemetry: Telemetry::disabled(),
                name: name.to_string(),
                begin_micros: None,
            };
        };
        let micros = self.now_micros();
        {
            let mut inner = inner.lock().expect("telemetry poisoned");
            let event = Event {
                micros,
                name: name.to_string(),
                kind: EventKind::SpanBegin,
                depth: inner.depth,
            };
            inner.sink.record(&event);
            inner.depth += 1;
        }
        Span {
            telemetry: self.clone(),
            name: name.to_string(),
            begin_micros: Some(micros),
        }
    }

    pub(crate) fn close_span(&self, name: &str, begin_micros: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let now = self.now_micros();
        let elapsed = now.saturating_sub(begin_micros);
        let mut inner = inner.lock().expect("telemetry poisoned");
        inner.depth = inner.depth.saturating_sub(1);
        inner
            .metrics
            .observe(&span::span_metric_name(name), elapsed as f64);
        let event = Event {
            micros: now,
            name: name.to_string(),
            kind: EventKind::SpanEnd {
                elapsed_micros: elapsed,
            },
            depth: inner.depth,
        };
        inner.sink.record(&event);
    }

    /// A clone of the current metric registry.
    pub fn snapshot(&self) -> Metrics {
        match &self.inner {
            Some(inner) => inner.lock().expect("telemetry poisoned").metrics.clone(),
            None => Metrics::new(),
        }
    }

    /// Flushes the sink (closes the Chrome trace array, flushes writers).
    ///
    /// # Errors
    ///
    /// Returns the sink's first buffered I/O error, if any.
    pub fn flush(&self) -> io::Result<()> {
        match &self.inner {
            Some(inner) => inner.lock().expect("telemetry poisoned").sink.flush(),
            None => Ok(()),
        }
    }
}

impl Default for Telemetry {
    /// The disabled handle.
    fn default() -> Self {
        Telemetry::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tele = Telemetry::disabled();
        tele.counter_add("c", 5);
        tele.gauge_set("g", 1.0);
        tele.observe("h", 2.0);
        tele.event("e", vec![]);
        drop(tele.span("s"));
        assert!(!tele.is_enabled());
        assert!(tele.snapshot().is_empty());
        tele.flush().unwrap();
    }

    #[test]
    fn clones_share_the_registry() {
        let tele = Telemetry::null();
        let other = tele.clone();
        tele.counter_add("c", 1);
        other.counter_add("c", 2);
        assert_eq!(tele.snapshot().counter("c"), Some(3));
    }

    #[test]
    fn memory_handle_captures_the_stream() {
        let (tele, events) = Telemetry::memory();
        tele.counter_add("a", 1);
        tele.event("point", vec![("k".into(), JsonValue::from(9u64))]);
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].name, "point");
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
    }
}
