//! The machine-readable run report.
//!
//! A [`RunReport`] is the single JSON artifact a run leaves behind: which
//! tool ran, the final metric registry, and free-form named sections for
//! structured experiment records (the `repro --json` tables, CLI run
//! summaries, …). The schema string is versioned so downstream consumers can
//! reject reports they do not understand.

use std::io::{self, Write};
use std::path::Path;

use crate::json::JsonValue;
use crate::metrics::Metrics;
use crate::Telemetry;

/// Schema identifier of the current report layout.
///
/// Layout (`v1`):
///
/// ```json
/// {
///   "schema": "chambolle.run_report.v1",
///   "tool": "<producer>",
///   "sections": { "<name>": <free-form JSON>, ... },
///   "metrics": { "<metric>": {"type": "...", "value": ...}, ... }
/// }
/// ```
pub const RUN_REPORT_SCHEMA: &str = "chambolle.run_report.v1";

/// A serializable summary of one run.
///
/// # Examples
///
/// ```
/// use chambolle_telemetry::{json::JsonValue, report::RunReport, Telemetry};
///
/// let tele = Telemetry::null();
/// tele.counter_add("solver.iterations", 100);
/// let mut report = RunReport::from_telemetry("demo", &tele);
/// report.add_section("params", JsonValue::Object(vec![("k".into(), 2u64.into())]));
/// let json = report.to_json();
/// assert_eq!(json.get_path("metrics.solver.iterations.value").unwrap().as_f64(), Some(100.0));
/// ```
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Producing tool (binary or harness name).
    pub tool: String,
    /// Named free-form sections, in insertion order.
    pub sections: Vec<(String, JsonValue)>,
    /// Final metric registry snapshot.
    pub metrics: Metrics,
}

impl RunReport {
    /// An empty report for `tool`.
    pub fn new(tool: &str) -> Self {
        RunReport {
            tool: tool.to_string(),
            sections: Vec::new(),
            metrics: Metrics::new(),
        }
    }

    /// A report seeded with a snapshot of `telemetry`'s metrics.
    pub fn from_telemetry(tool: &str, telemetry: &Telemetry) -> Self {
        RunReport {
            tool: tool.to_string(),
            sections: Vec::new(),
            metrics: telemetry.snapshot(),
        }
    }

    /// Appends (or replaces) a named section.
    pub fn add_section(&mut self, name: &str, value: JsonValue) {
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.sections.push((name.to_string(), value));
        }
    }

    /// Looks up a section by name.
    pub fn section(&self, name: &str) -> Option<&JsonValue> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Serializes the report.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("schema".into(), RUN_REPORT_SCHEMA.into()),
            ("tool".into(), self.tool.as_str().into()),
            ("sections".into(), JsonValue::Object(self.sections.clone())),
            ("metrics".into(), self.metrics.to_json()),
        ])
    }

    /// Writes the pretty-printed report.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        writer.write_all(self.to_json().to_string_pretty().as_bytes())
    }

    /// Writes the pretty-printed report to a file path.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        self.write_to(&mut file)
    }

    /// Parses a serialized report back into (tool, sections, metrics-JSON),
    /// verifying the schema string.
    ///
    /// The metric registry is returned as JSON rather than re-hydrated into
    /// [`Metrics`]: consumers only read reports.
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not a `v1` run report.
    pub fn validate(document: &JsonValue) -> Result<(), String> {
        match document.get("schema").and_then(JsonValue::as_str) {
            Some(RUN_REPORT_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported report schema {other:?}")),
            None => return Err("missing schema field".into()),
        }
        if document.get("tool").and_then(JsonValue::as_str).is_none() {
            return Err("missing tool field".into());
        }
        if document
            .get("sections")
            .and_then(JsonValue::as_object)
            .is_none()
        {
            return Err("missing sections object".into());
        }
        if document
            .get("metrics")
            .and_then(JsonValue::as_object)
            .is_none()
        {
            return Err("missing metrics object".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let tele = Telemetry::null();
        tele.counter_add("hwsim.cycles", 12345);
        tele.gauge_set("tiling.redundancy_ratio", 0.109);
        let mut report = RunReport::from_telemetry("unit-test", &tele);
        report.add_section(
            "frame",
            JsonValue::Object(vec![
                ("width".into(), 512u64.into()),
                ("height".into(), 512u64.into()),
            ]),
        );
        let mut buffer = Vec::new();
        report.write_to(&mut buffer).unwrap();
        let parsed = JsonValue::parse(std::str::from_utf8(&buffer).unwrap()).unwrap();
        RunReport::validate(&parsed).unwrap();
        assert_eq!(
            parsed.get_path("sections.frame.width").unwrap().as_f64(),
            Some(512.0)
        );
        assert_eq!(
            parsed
                .get_path("metrics.hwsim.cycles.value")
                .unwrap()
                .as_f64(),
            Some(12345.0)
        );
        assert_eq!(parsed.get("tool").unwrap().as_str(), Some("unit-test"));
    }

    #[test]
    fn add_section_replaces_by_name() {
        let mut report = RunReport::new("t");
        report.add_section("a", 1u64.into());
        report.add_section("a", 2u64.into());
        assert_eq!(report.sections.len(), 1);
        assert_eq!(report.section("a").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn validate_rejects_wrong_schema() {
        let doc = JsonValue::parse(r#"{"schema":"something.else","tool":"x"}"#).unwrap();
        assert!(RunReport::validate(&doc).is_err());
        assert!(RunReport::validate(&JsonValue::Null).is_err());
    }
}
