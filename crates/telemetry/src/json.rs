//! A minimal JSON value type with a serializer and a parser.
//!
//! The workspace is deliberately `serde`-free (see DESIGN.md, "External
//! dependencies"); the telemetry layer needs only a small, well-specified
//! subset of JSON — finite numbers, UTF-8 strings, arrays and objects with
//! stable key order — which this module implements in a few hundred lines.
//! Objects preserve insertion order so reports are byte-stable across runs.

use std::fmt::Write as _;

/// A JSON document node.
///
/// # Examples
///
/// ```
/// use chambolle_telemetry::json::JsonValue;
///
/// let v = JsonValue::Object(vec![
///     ("cycles".into(), JsonValue::from(1234u64)),
///     ("name".into(), JsonValue::from("window")),
/// ]);
/// let text = v.to_string();
/// assert_eq!(text, r#"{"cycles":1234,"name":"window"}"#);
/// assert_eq!(JsonValue::parse(&text).unwrap(), v);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved (insertion order).
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}

impl JsonValue {
    /// Looks up a key in an object; `None` for other node kinds.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `.`-separated path of object keys.
    ///
    /// Keys may themselves contain dots (metric names such as
    /// `hwsim.cycles` do): at each object, the longest joined run of
    /// remaining segments that matches a key wins, so
    /// `report.get_path("metrics.hwsim.cycles.value")` resolves even though
    /// `hwsim.cycles` is a single key.
    pub fn get_path(&self, path: &str) -> Option<&JsonValue> {
        if path.is_empty() {
            return Some(self);
        }
        if let Some(direct) = self.get(path) {
            return Some(direct);
        }
        let segments: Vec<&str> = path.split('.').collect();
        for take in (1..segments.len()).rev() {
            let key = segments[..take].join(".");
            if let Some(child) = self.get(&key) {
                let rest = segments[take..].join(".");
                if let Some(found) = child.get_path(&rest) {
                    return Some(found);
                }
            }
        }
        None
    }

    /// The numeric payload, if this node is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this node is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this node is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this node is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("malformed number"))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "1e3"] {
            let v = JsonValue::parse(text).unwrap();
            let again = JsonValue::parse(&v.to_string()).unwrap();
            assert_eq!(v, again, "{text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(JsonValue::from(42u64).to_string(), "42");
        assert_eq!(JsonValue::Number(-3.0).to_string(), "-3");
        assert_eq!(JsonValue::Number(0.125).to_string(), "0.125");
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"slash\\tab\tunit\u{1}end ünïcode";
        let v = JsonValue::from(s);
        assert_eq!(JsonValue::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn surrogate_pair_parses() {
        let v = JsonValue::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn nested_structure_round_trips_compact_and_pretty() {
        let text = r#"{"a":[1,2,{"b":null}],"c":{"d":true,"e":"x"},"empty":[],"eo":{}}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(JsonValue::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = JsonValue::parse(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn path_lookup() {
        let v = JsonValue::parse(r#"{"a":{"b":{"c":7}}}"#).unwrap();
        assert_eq!(v.get_path("a.b.c").and_then(JsonValue::as_f64), Some(7.0));
        assert!(v.get_path("a.x").is_none());
    }

    #[test]
    fn malformed_inputs_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "01x",
            "[1]extra",
            "\"\\q\"",
        ] {
            assert!(JsonValue::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get_path("a").unwrap().as_array().unwrap().len(), 2);
    }
}
