//! The metric registry: counters, gauges, and fixed-bucket histograms.
//!
//! Names are flat dotted strings from the registry in [`crate::names`];
//! the registry stores them in a `BTreeMap` so snapshots and reports come
//! out in a deterministic order.

use std::collections::BTreeMap;

use crate::json::JsonValue;

/// Default histogram bucket upper bounds — a 1/2/5 decade ladder that suits
/// both microsecond span durations and cycle counts.
pub const DEFAULT_BUCKETS: [f64; 16] = [
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 1e5, 1e6, 1e7,
];

/// A fixed-bucket histogram.
///
/// Bucket `i` counts observations `v` with `bounds[i-1] < v <= bounds[i]`
/// (the first bucket has no lower edge); one overflow bucket counts
/// everything above the last bound. Quantiles resolve to the upper bound of
/// the bucket containing the requested rank, so a value observed exactly at
/// a bucket edge is reported as that edge.
///
/// # Examples
///
/// ```
/// use chambolle_telemetry::metrics::Histogram;
///
/// let mut h = Histogram::new(&[10.0, 100.0]);
/// for v in [1.0, 5.0, 10.0, 60.0] {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.quantile(0.5), 10.0); // rank 2 of 4 falls in the (_, 10] bucket
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A histogram over [`DEFAULT_BUCKETS`].
    pub fn with_default_buckets() -> Self {
        Histogram::new(&DEFAULT_BUCKETS)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (`0.0` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Observations that exceeded the last bucket bound (the saturating
    /// `+Inf` bucket).
    pub fn overflow(&self) -> u64 {
        self.counts[self.bounds.len()]
    }

    /// Mean observation (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The quantile `q ∈ [0, 1]`, resolved to the upper bound of the bucket
    /// holding rank `⌈q·count⌉` (at least 1). Observations in the overflow
    /// bucket resolve to the largest observation. Returns `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merges another histogram's observations into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "bucket layouts must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serializes the summary plus the raw buckets.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("count".into(), self.count.into()),
            ("sum".into(), self.sum.into()),
            ("min".into(), self.min().into()),
            ("max".into(), self.max().into()),
            ("mean".into(), self.mean().into()),
            ("p50".into(), self.p50().into()),
            ("p90".into(), self.p90().into()),
            ("p99".into(), self.p99().into()),
            ("overflow".into(), self.overflow().into()),
            (
                "bounds".into(),
                JsonValue::Array(self.bounds.iter().map(|&b| b.into()).collect()),
            ),
            (
                "counts".into(),
                JsonValue::Array(self.counts.iter().map(|&c| c.into()).collect()),
            ),
        ])
    }
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Last-written measurement.
    Gauge(f64),
    /// Distribution of observations.
    Histogram(Histogram),
}

impl MetricValue {
    /// The counter payload, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge payload, if this is a gauge.
    pub fn as_gauge(&self) -> Option<f64> {
        match self {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram payload, if this is a histogram.
    pub fn as_histogram(&self) -> Option<&Histogram> {
        match self {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// A registry of named metrics with deterministic (sorted) iteration order.
///
/// # Examples
///
/// ```
/// use chambolle_telemetry::metrics::Metrics;
///
/// let mut m = Metrics::new();
/// m.counter_add("solver.iterations", 100);
/// m.gauge_set("tiling.redundancy_ratio", 0.11);
/// m.observe("span.window", 42.0);
/// assert_eq!(m.counter("solver.iterations"), Some(100));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    entries: BTreeMap<String, MetricValue>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds to a counter, creating it at zero if absent. A name already
    /// registered with a different kind is left untouched (the mismatch is a
    /// programming error; it trips a debug assertion).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(v) => *v += delta,
            _ => debug_assert!(false, "metric {name:?} is not a counter"),
        }
    }

    /// Sets a gauge, creating it if absent.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(MetricValue::Gauge(0.0))
        {
            MetricValue::Gauge(v) => *v = value,
            _ => debug_assert!(false, "metric {name:?} is not a gauge"),
        }
    }

    /// Records a histogram observation (default buckets on first use).
    pub fn observe(&mut self, name: &str, value: f64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Histogram::with_default_buckets()))
        {
            MetricValue::Histogram(h) => h.observe(value),
            _ => debug_assert!(false, "metric {name:?} is not a histogram"),
        }
    }

    /// Records a histogram observation, creating the histogram with the
    /// given bucket bounds on first use.
    pub fn observe_with_buckets(&mut self, name: &str, value: f64, bounds: &[f64]) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)))
        {
            MetricValue::Histogram(h) => h.observe(value),
            _ => debug_assert!(false, "metric {name:?} is not a histogram"),
        }
    }

    /// Looks up a metric.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// A counter's value, if registered as one.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(MetricValue::as_counter)
    }

    /// A gauge's value, if registered as one.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(MetricValue::as_gauge)
    }

    /// Iterates metrics in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other's value, histograms merge.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, value) in &other.entries {
            match value {
                MetricValue::Counter(v) => self.counter_add(name, *v),
                MetricValue::Gauge(v) => self.gauge_set(name, *v),
                MetricValue::Histogram(h) => match self
                    .entries
                    .entry(name.clone())
                    .or_insert_with(|| MetricValue::Histogram(Histogram::new(&h.bounds)))
                {
                    MetricValue::Histogram(mine) => mine.merge(h),
                    _ => debug_assert!(false, "metric {name:?} is not a histogram"),
                },
            }
        }
    }

    /// Serializes every metric into one JSON object keyed by name.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.entries
                .iter()
                .map(|(name, value)| {
                    let v = match value {
                        MetricValue::Counter(c) => JsonValue::Object(vec![
                            ("type".into(), "counter".into()),
                            ("value".into(), (*c).into()),
                        ]),
                        MetricValue::Gauge(g) => JsonValue::Object(vec![
                            ("type".into(), "gauge".into()),
                            ("value".into(), (*g).into()),
                        ]),
                        MetricValue::Histogram(h) => JsonValue::Object(vec![
                            ("type".into(), "histogram".into()),
                            ("value".into(), h.to_json()),
                        ]),
                    };
                    (name.clone(), v)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_at_bucket_edges() {
        // Bounds 10 / 20 / 30; observations placed exactly on the edges.
        let mut h = Histogram::new(&[10.0, 20.0, 30.0]);
        for v in [10.0, 10.0, 20.0, 20.0, 20.0, 30.0, 30.0, 30.0, 30.0, 30.0] {
            h.observe(v);
        }
        // Ranks: bucket (..10] holds 2, (10..20] holds 3, (20..30] holds 5.
        assert_eq!(h.quantile(0.0), 10.0); // rank clamps to 1
        assert_eq!(h.quantile(0.2), 10.0); // rank 2: last in the first bucket
        assert_eq!(h.quantile(0.21), 20.0); // rank 3: first of the second
        assert_eq!(h.p50(), 20.0); // rank 5: last of the second
        assert_eq!(h.quantile(0.51), 30.0); // rank 6: first of the third
        assert_eq!(h.p90(), 30.0);
        assert_eq!(h.p99(), 30.0);
        assert_eq!(h.quantile(1.0), 30.0);
    }

    #[test]
    fn edge_value_lands_in_lower_bucket() {
        // An observation exactly equal to a bound belongs to that bound's
        // bucket, so the quantile never over-reports it into the next one.
        let mut h = Histogram::new(&[5.0, 50.0]);
        h.observe(5.0);
        assert_eq!(h.p50(), 5.0);
        assert_eq!(h.p99(), 5.0);
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(0.5);
        h.observe(123.0);
        h.observe(456.0);
        assert_eq!(h.quantile(0.01), 1.0);
        assert_eq!(h.p99(), 456.0, "overflow resolves to the observed max");
        assert_eq!(h.max(), 456.0);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.overflow(), 2, "both out-of-range values counted");
    }

    #[test]
    fn edge_values_never_split_across_buckets() {
        // Regression: a value exactly equal to an upper bound must land in
        // that bound's bucket every time, independent of observation order.
        let mut a = Histogram::new(&[10.0, 20.0]);
        let mut b = Histogram::new(&[10.0, 20.0]);
        for _ in 0..100 {
            a.observe(10.0);
        }
        for _ in 0..100 {
            b.observe(10.0);
        }
        assert_eq!(a, b, "identical inputs give identical bucket layouts");
        assert_eq!(a.quantile(0.0), 10.0);
        assert_eq!(a.quantile(1.0), 10.0);
        assert_eq!(a.overflow(), 0);
    }

    #[test]
    fn overflow_is_reported_in_json() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(999.0);
        h.observe(1e9);
        let j = h.to_json();
        assert_eq!(j.get("overflow").unwrap().as_f64(), Some(2.0));
        // The counts array carries the +Inf bucket as its final entry.
        let counts = j.get("counts").unwrap().as_array().unwrap();
        assert_eq!(counts.len(), 3, "bounds + 1 saturating overflow bucket");
        assert_eq!(counts[2].as_f64(), Some(2.0));
        let empty = Histogram::new(&[1.0]);
        assert_eq!(empty.to_json().get("overflow").unwrap().as_f64(), Some(0.0));
        assert_eq!(empty.overflow(), 0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn summary_statistics() {
        let mut h = Histogram::with_default_buckets();
        for v in [1.0, 3.0, 8.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 12.0);
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(&[10.0]);
        let mut b = Histogram::new(&[10.0]);
        a.observe(1.0);
        b.observe(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 100.0);
    }

    #[test]
    fn registry_basics() {
        let mut m = Metrics::new();
        m.counter_add("c", 2);
        m.counter_add("c", 3);
        m.gauge_set("g", 1.5);
        m.gauge_set("g", 2.5);
        m.observe("h", 7.0);
        assert_eq!(m.counter("c"), Some(5));
        assert_eq!(m.gauge("g"), Some(2.5));
        assert_eq!(m.get("h").unwrap().as_histogram().unwrap().count(), 1);
        assert_eq!(m.len(), 3);
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["c", "g", "h"], "sorted iteration order");
    }

    #[test]
    fn registry_merge() {
        let mut a = Metrics::new();
        a.counter_add("c", 1);
        a.observe("h", 1.0);
        let mut b = Metrics::new();
        b.counter_add("c", 2);
        b.gauge_set("g", 9.0);
        b.observe("h", 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.get("h").unwrap().as_histogram().unwrap().count(), 2);
    }

    #[test]
    fn to_json_shape() {
        let mut m = Metrics::new();
        m.counter_add("c", 4);
        m.observe("h", 3.0);
        let j = m.to_json();
        assert_eq!(j.get_path("c.type").unwrap().as_str(), Some("counter"));
        assert_eq!(j.get_path("c.value").unwrap().as_f64(), Some(4.0));
        assert_eq!(j.get_path("h.value.count").unwrap().as_f64(), Some(1.0));
    }
}
