//! Pluggable event sinks: no-op, in-memory, JSON-lines, and Chrome
//! `trace_event`.
//!
//! Every telemetry operation produces an [`Event`]; the configured sink sees
//! them in order. Sinks are deliberately dumb — aggregation lives in the
//! [`crate::metrics::Metrics`] registry, the sink only captures the stream
//! (for debugging, machine-readable logs, or `about://tracing`
//! visualization, complementing the cycle-accurate VCD path in
//! `hwsim::trace`).

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::json::JsonValue;

/// What an [`Event`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A counter increment.
    CounterAdd(u64),
    /// A gauge write.
    GaugeSet(f64),
    /// A histogram observation.
    Observe(f64),
    /// A span opened.
    SpanBegin,
    /// A span closed after `elapsed_micros`.
    SpanEnd {
        /// Wall time between begin and end, in microseconds.
        elapsed_micros: u64,
    },
    /// A point-in-time event with free-form payload fields.
    Instant(Vec<(String, JsonValue)>),
}

impl EventKind {
    fn tag(&self) -> &'static str {
        match self {
            EventKind::CounterAdd(_) => "counter",
            EventKind::GaugeSet(_) => "gauge",
            EventKind::Observe(_) => "observe",
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::Instant(_) => "instant",
        }
    }
}

/// One telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the owning [`crate::Telemetry`] was created.
    pub micros: u64,
    /// Metric / span / event name (see [`crate::names`]).
    pub name: String,
    /// Payload.
    pub kind: EventKind,
    /// Span nesting depth at which the event was emitted (0 = top level).
    pub depth: u32,
}

impl Event {
    /// Serializes the event as one JSON object (the JSON-lines record).
    pub fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("ts_us".into(), self.micros.into()),
            ("name".into(), self.name.as_str().into()),
            ("kind".into(), self.kind.tag().into()),
            ("depth".into(), u64::from(self.depth).into()),
        ];
        match &self.kind {
            EventKind::CounterAdd(delta) => fields.push(("delta".into(), (*delta).into())),
            EventKind::GaugeSet(value) | EventKind::Observe(value) => {
                fields.push(("value".into(), (*value).into()))
            }
            EventKind::SpanBegin => {}
            EventKind::SpanEnd { elapsed_micros } => {
                fields.push(("elapsed_us".into(), (*elapsed_micros).into()))
            }
            EventKind::Instant(payload) => {
                fields.push(("fields".into(), JsonValue::Object(payload.clone())))
            }
        }
        JsonValue::Object(fields)
    }

    /// Parses an event back from its [`Event::to_json`] record.
    pub fn from_json(value: &JsonValue) -> Option<Event> {
        let micros = value.get("ts_us")?.as_f64()? as u64;
        let name = value.get("name")?.as_str()?.to_string();
        let depth = value.get("depth")?.as_f64()? as u32;
        let kind = match value.get("kind")?.as_str()? {
            "counter" => EventKind::CounterAdd(value.get("delta")?.as_f64()? as u64),
            "gauge" => EventKind::GaugeSet(value.get("value")?.as_f64()?),
            "observe" => EventKind::Observe(value.get("value")?.as_f64()?),
            "span_begin" => EventKind::SpanBegin,
            "span_end" => EventKind::SpanEnd {
                elapsed_micros: value.get("elapsed_us")?.as_f64()? as u64,
            },
            "instant" => EventKind::Instant(value.get("fields")?.as_object()?.to_vec()),
            _ => return None,
        };
        Some(Event {
            micros,
            name,
            kind,
            depth,
        })
    }
}

/// An event consumer.
pub trait Sink: Send {
    /// Receives one event, in emission order.
    fn record(&mut self, event: &Event);

    /// Flushes buffered output (e.g. closes the Chrome trace array).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the sink encountered, if any.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards every event (the enabled-metrics/no-stream configuration).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _event: &Event) {}
}

/// Buffers events in memory behind a shared handle.
///
/// # Examples
///
/// ```
/// use chambolle_telemetry::sink::{MemorySink, Sink};
///
/// let sink = MemorySink::new();
/// let events = sink.events();
/// // ... hand `sink` to a Telemetry instance, run, then:
/// assert!(events.lock().unwrap().is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// An empty buffer.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The shared buffer handle (clone it before boxing the sink).
    pub fn events(&self) -> Arc<Mutex<Vec<Event>>> {
        Arc::clone(&self.events)
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// Writes one JSON object per line — the grep-able machine log format.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    writer: W,
    error: Option<io::Error>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer,
            error: None,
        }
    }
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json().to_string();
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }
}

/// Emits the Chrome `trace_event` JSON array format: load the output in
/// `about://tracing` (or Perfetto) to see spans as nested slices and
/// counters as tracks.
///
/// Span begin/end map to phases `B`/`E`, counters and gauges to `C`,
/// instants to `i`. Everything runs on one synthetic pid/tid since the
/// instrumented pipeline is single-threaded per telemetry handle.
#[derive(Debug)]
pub struct ChromeTraceSink<W: Write + Send> {
    writer: W,
    wrote_any: bool,
    closed: bool,
    error: Option<io::Error>,
}

impl<W: Write + Send> ChromeTraceSink<W> {
    /// Wraps a writer; the JSON array opens lazily on the first event.
    pub fn new(writer: W) -> Self {
        ChromeTraceSink {
            writer,
            wrote_any: false,
            closed: false,
            error: None,
        }
    }

    fn phase_records(event: &Event) -> Vec<JsonValue> {
        let base = |ph: &str, args: Vec<(String, JsonValue)>| {
            let mut fields: Vec<(String, JsonValue)> = vec![
                ("name".into(), event.name.as_str().into()),
                ("ph".into(), ph.into()),
                ("ts".into(), event.micros.into()),
                ("pid".into(), 1u64.into()),
                ("tid".into(), 1u64.into()),
            ];
            if ph == "i" {
                fields.push(("s".into(), "t".into()));
            }
            if !args.is_empty() {
                fields.push(("args".into(), JsonValue::Object(args)));
            }
            JsonValue::Object(fields)
        };
        match &event.kind {
            EventKind::SpanBegin => vec![base("B", Vec::new())],
            EventKind::SpanEnd { .. } => vec![base("E", Vec::new())],
            EventKind::CounterAdd(delta) => {
                vec![base("C", vec![(event.name.clone(), (*delta).into())])]
            }
            EventKind::GaugeSet(value) | EventKind::Observe(value) => {
                vec![base("C", vec![(event.name.clone(), (*value).into())])]
            }
            EventKind::Instant(payload) => vec![base("i", payload.clone())],
        }
    }
}

impl<W: Write + Send> Sink for ChromeTraceSink<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() || self.closed {
            return;
        }
        for record in Self::phase_records(event) {
            let prefix = if self.wrote_any { ",\n" } else { "[\n" };
            self.wrote_any = true;
            if let Err(e) = write!(self.writer, "{prefix}{}", record.to_string()) {
                self.error = Some(e);
                return;
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if !self.closed {
            self.closed = true;
            if self.wrote_any {
                writeln!(self.writer, "\n]")?;
            } else {
                writeln!(self.writer, "[]")?;
            }
        }
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                micros: 1,
                name: "span.solve".into(),
                kind: EventKind::SpanBegin,
                depth: 0,
            },
            Event {
                micros: 2,
                name: "solver.iterations".into(),
                kind: EventKind::CounterAdd(100),
                depth: 1,
            },
            Event {
                micros: 3,
                name: "tiling.redundancy_ratio".into(),
                kind: EventKind::GaugeSet(0.11),
                depth: 1,
            },
            Event {
                micros: 4,
                name: "span.window".into(),
                kind: EventKind::Observe(17.0),
                depth: 1,
            },
            Event {
                micros: 5,
                name: "solver.convergence_point".into(),
                kind: EventKind::Instant(vec![
                    ("iteration".into(), 50u64.into()),
                    ("gap".into(), 0.25.into()),
                ]),
                depth: 1,
            },
            Event {
                micros: 9,
                name: "span.solve".into(),
                kind: EventKind::SpanEnd { elapsed_micros: 8 },
                depth: 0,
            },
        ]
    }

    #[test]
    fn json_lines_round_trip() {
        let mut sink = JsonLinesSink::new(Vec::new());
        let events = sample_events();
        for e in &events {
            sink.record(e);
        }
        sink.flush().unwrap();
        let text = String::from_utf8(sink.writer).unwrap();
        let parsed: Vec<Event> = text
            .lines()
            .map(|line| {
                Event::from_json(&JsonValue::parse(line).expect("line parses")).expect("round-trip")
            })
            .collect();
        assert_eq!(parsed, events);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_phases() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        for e in &sample_events() {
            sink.record(e);
        }
        sink.flush().unwrap();
        let text = String::from_utf8(sink.writer).unwrap();
        let doc = JsonValue::parse(&text).expect("valid trace_event JSON");
        let records = doc.as_array().unwrap();
        let phases: Vec<&str> = records
            .iter()
            .map(|r| r.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases, ["B", "C", "C", "C", "i", "E"]);
        assert!(records
            .iter()
            .all(|r| r.get("ts").is_some() && r.get("pid").is_some()));
    }

    #[test]
    fn empty_chrome_trace_closes_to_an_empty_array() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.flush().unwrap();
        let text = String::from_utf8(sink.writer).unwrap();
        assert_eq!(JsonValue::parse(&text).unwrap(), JsonValue::Array(vec![]));
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let mut sink = MemorySink::new();
        let handle = sink.events();
        for e in &sample_events() {
            sink.record(e);
        }
        assert_eq!(*handle.lock().unwrap(), sample_events());
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        for e in &sample_events() {
            sink.record(e);
        }
        sink.flush().unwrap();
    }
}
