//! Pluggable event sinks: no-op, in-memory, JSON-lines, and Chrome
//! `trace_event`.
//!
//! Every telemetry operation produces an [`Event`]; the configured sink sees
//! them in order. Sinks are deliberately dumb — aggregation lives in the
//! [`crate::metrics::Metrics`] registry, the sink only captures the stream
//! (for debugging, machine-readable logs, or `about://tracing`
//! visualization, complementing the cycle-accurate VCD path in
//! `hwsim::trace`).

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::json::JsonValue;

/// What an [`Event`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A counter increment.
    CounterAdd(u64),
    /// A gauge write.
    GaugeSet(f64),
    /// A histogram observation.
    Observe(f64),
    /// A span opened.
    SpanBegin,
    /// A span closed after `elapsed_micros`.
    SpanEnd {
        /// Wall time between begin and end, in microseconds.
        elapsed_micros: u64,
    },
    /// A point-in-time event with free-form payload fields.
    Instant(Vec<(String, JsonValue)>),
}

impl EventKind {
    fn tag(&self) -> &'static str {
        match self {
            EventKind::CounterAdd(_) => "counter",
            EventKind::GaugeSet(_) => "gauge",
            EventKind::Observe(_) => "observe",
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::Instant(_) => "instant",
        }
    }
}

/// One telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the owning [`crate::Telemetry`] was created.
    pub micros: u64,
    /// Metric / span / event name (see [`crate::names`]).
    pub name: String,
    /// Payload.
    pub kind: EventKind,
    /// Span nesting depth at which the event was emitted (0 = top level).
    pub depth: u32,
}

impl Event {
    /// Serializes the event as one JSON object (the JSON-lines record).
    pub fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("ts_us".into(), self.micros.into()),
            ("name".into(), self.name.as_str().into()),
            ("kind".into(), self.kind.tag().into()),
            ("depth".into(), u64::from(self.depth).into()),
        ];
        match &self.kind {
            EventKind::CounterAdd(delta) => fields.push(("delta".into(), (*delta).into())),
            EventKind::GaugeSet(value) | EventKind::Observe(value) => {
                fields.push(("value".into(), (*value).into()))
            }
            EventKind::SpanBegin => {}
            EventKind::SpanEnd { elapsed_micros } => {
                fields.push(("elapsed_us".into(), (*elapsed_micros).into()))
            }
            EventKind::Instant(payload) => {
                fields.push(("fields".into(), JsonValue::Object(payload.clone())))
            }
        }
        JsonValue::Object(fields)
    }

    /// Parses an event back from its [`Event::to_json`] record.
    pub fn from_json(value: &JsonValue) -> Option<Event> {
        let micros = value.get("ts_us")?.as_f64()? as u64;
        let name = value.get("name")?.as_str()?.to_string();
        let depth = value.get("depth")?.as_f64()? as u32;
        let kind = match value.get("kind")?.as_str()? {
            "counter" => EventKind::CounterAdd(value.get("delta")?.as_f64()? as u64),
            "gauge" => EventKind::GaugeSet(value.get("value")?.as_f64()?),
            "observe" => EventKind::Observe(value.get("value")?.as_f64()?),
            "span_begin" => EventKind::SpanBegin,
            "span_end" => EventKind::SpanEnd {
                elapsed_micros: value.get("elapsed_us")?.as_f64()? as u64,
            },
            "instant" => EventKind::Instant(value.get("fields")?.as_object()?.to_vec()),
            _ => return None,
        };
        Some(Event {
            micros,
            name,
            kind,
            depth,
        })
    }
}

/// An event consumer.
pub trait Sink: Send {
    /// Receives one event, in emission order.
    fn record(&mut self, event: &Event);

    /// Flushes buffered output (e.g. closes the Chrome trace array).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the sink encountered, if any.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards every event (the enabled-metrics/no-stream configuration).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _event: &Event) {}
}

/// Buffers events in memory behind a shared handle.
///
/// # Examples
///
/// ```
/// use chambolle_telemetry::sink::{MemorySink, Sink};
///
/// let sink = MemorySink::new();
/// let events = sink.events();
/// // ... hand `sink` to a Telemetry instance, run, then:
/// assert!(events.lock().unwrap().is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// An empty buffer.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The shared buffer handle (clone it before boxing the sink).
    pub fn events(&self) -> Arc<Mutex<Vec<Event>>> {
        Arc::clone(&self.events)
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// Writes one JSON object per line — the grep-able machine log format.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    writer: W,
    error: Option<io::Error>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer,
            error: None,
        }
    }
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json().to_string();
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }
}

/// Emits the Chrome `trace_event` JSON array format: load the output in
/// `about://tracing` (or Perfetto) to see spans as nested slices and
/// counters as tracks.
///
/// Spans are buffered until their end and emitted as complete `ph: "X"`
/// events (begin timestamp + `dur`), which is what Perfetto's importer
/// handles most robustly; counters and gauges map to `C`, instants to `i`.
/// Every record carries the real process id as `pid` and a stable synthetic
/// `tid` of 1 (the instrumented pipeline is serialized per telemetry
/// handle), and the flushed array is sorted by timestamp so downstream
/// tools see monotonic `ts`.
#[derive(Debug)]
pub struct ChromeTraceSink<W: Write + Send> {
    writer: W,
    /// (sort ts, record) pairs buffered until flush.
    records: Vec<(u64, JsonValue)>,
    /// Begin timestamps of spans not yet closed, innermost last.
    open_spans: Vec<(String, u64)>,
    /// Latest event timestamp seen — closes dangling spans at flush.
    last_ts: u64,
    closed: bool,
    error: Option<io::Error>,
}

impl<W: Write + Send> ChromeTraceSink<W> {
    /// Wraps a writer; output is buffered and written sorted at flush.
    pub fn new(writer: W) -> Self {
        ChromeTraceSink {
            writer,
            records: Vec::new(),
            open_spans: Vec::new(),
            last_ts: 0,
            closed: false,
            error: None,
        }
    }

    fn base_record(name: &str, ph: &str, ts: u64, args: Vec<(String, JsonValue)>) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("name".into(), name.into()),
            ("ph".into(), ph.into()),
            ("ts".into(), ts.into()),
            ("pid".into(), u64::from(std::process::id()).into()),
            ("tid".into(), 1u64.into()),
        ];
        if ph == "i" {
            fields.push(("s".into(), "t".into()));
        }
        if ph == "X" || !args.is_empty() {
            fields.push(("args".into(), JsonValue::Object(args)));
        }
        JsonValue::Object(fields)
    }

    fn complete_span(&mut self, name: &str, begin: u64, dur: u64, depth: u32) {
        let record = Self::base_record(
            name,
            "X",
            begin,
            vec![("depth".into(), u64::from(depth).into())],
        );
        let mut fields = match record {
            JsonValue::Object(fields) => fields,
            _ => unreachable!(),
        };
        // `dur` sits right after `ts` so the record reads naturally.
        fields.insert(3, ("dur".into(), dur.into()));
        self.records.push((begin, JsonValue::Object(fields)));
    }
}

impl<W: Write + Send> Sink for ChromeTraceSink<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() || self.closed {
            return;
        }
        self.last_ts = self.last_ts.max(event.micros);
        match &event.kind {
            EventKind::SpanBegin => {
                self.open_spans.push((event.name.clone(), event.micros));
            }
            EventKind::SpanEnd { elapsed_micros } => {
                // Pop the innermost matching begin; a mismatched end (no
                // begin seen) still yields a record at its own timestamp.
                let begin = match self
                    .open_spans
                    .iter()
                    .rposition(|(name, _)| name == &event.name)
                {
                    Some(i) => self.open_spans.remove(i).1,
                    None => event.micros.saturating_sub(*elapsed_micros),
                };
                self.complete_span(&event.name.clone(), begin, *elapsed_micros, event.depth);
            }
            EventKind::CounterAdd(delta) => {
                let record = Self::base_record(
                    &event.name,
                    "C",
                    event.micros,
                    vec![(event.name.clone(), (*delta).into())],
                );
                self.records.push((event.micros, record));
            }
            EventKind::GaugeSet(value) | EventKind::Observe(value) => {
                let record = Self::base_record(
                    &event.name,
                    "C",
                    event.micros,
                    vec![(event.name.clone(), (*value).into())],
                );
                self.records.push((event.micros, record));
            }
            EventKind::Instant(payload) => {
                let record = Self::base_record(&event.name, "i", event.micros, payload.clone());
                self.records.push((event.micros, record));
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if !self.closed {
            self.closed = true;
            // Spans never closed get a best-effort duration to the last
            // observed timestamp instead of being dropped.
            let last_ts = self.last_ts;
            while let Some((name, begin)) = self.open_spans.pop() {
                let depth = self.open_spans.len() as u32;
                self.complete_span(&name, begin, last_ts.saturating_sub(begin), depth);
            }
            self.records.sort_by_key(|(ts, _)| *ts);
            if self.records.is_empty() {
                writeln!(self.writer, "[]")?;
            } else {
                for (i, (_, record)) in self.records.iter().enumerate() {
                    let prefix = if i == 0 { "[\n" } else { ",\n" };
                    write!(self.writer, "{prefix}{}", record.to_string())?;
                }
                writeln!(self.writer, "\n]")?;
            }
            self.records.clear();
        }
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                micros: 1,
                name: "span.solve".into(),
                kind: EventKind::SpanBegin,
                depth: 0,
            },
            Event {
                micros: 2,
                name: "solver.iterations".into(),
                kind: EventKind::CounterAdd(100),
                depth: 1,
            },
            Event {
                micros: 3,
                name: "tiling.redundancy_ratio".into(),
                kind: EventKind::GaugeSet(0.11),
                depth: 1,
            },
            Event {
                micros: 4,
                name: "span.window".into(),
                kind: EventKind::Observe(17.0),
                depth: 1,
            },
            Event {
                micros: 5,
                name: "solver.convergence_point".into(),
                kind: EventKind::Instant(vec![
                    ("iteration".into(), 50u64.into()),
                    ("gap".into(), 0.25.into()),
                ]),
                depth: 1,
            },
            Event {
                micros: 9,
                name: "span.solve".into(),
                kind: EventKind::SpanEnd { elapsed_micros: 8 },
                depth: 0,
            },
        ]
    }

    #[test]
    fn json_lines_round_trip() {
        let mut sink = JsonLinesSink::new(Vec::new());
        let events = sample_events();
        for e in &events {
            sink.record(e);
        }
        sink.flush().unwrap();
        let text = String::from_utf8(sink.writer).unwrap();
        let parsed: Vec<Event> = text
            .lines()
            .map(|line| {
                Event::from_json(&JsonValue::parse(line).expect("line parses")).expect("round-trip")
            })
            .collect();
        assert_eq!(parsed, events);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_phases() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        for e in &sample_events() {
            sink.record(e);
        }
        sink.flush().unwrap();
        let text = String::from_utf8(sink.writer).unwrap();
        let doc = JsonValue::parse(&text).expect("valid trace_event JSON");
        let records = doc.as_array().unwrap();
        let phases: Vec<&str> = records
            .iter()
            .map(|r| r.get("ph").unwrap().as_str().unwrap())
            .collect();
        // The span emits one complete `X` slice at its *begin* timestamp.
        assert_eq!(phases, ["X", "C", "C", "C", "i"]);
        let span = &records[0];
        assert_eq!(span.get("name").unwrap().as_str(), Some("span.solve"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(8.0));
        let pid = f64::from(std::process::id());
        assert!(
            records
                .iter()
                .all(|r| r.get("pid").unwrap().as_f64() == Some(pid)
                    && r.get("tid").unwrap().as_f64() == Some(1.0)),
            "every record carries the stable pid/tid pair"
        );
        // Timestamps are monotonic after the sorted flush.
        let ts: Vec<f64> = records
            .iter()
            .map(|r| r.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "monotonic ts: {ts:?}");
    }

    #[test]
    fn chrome_trace_closes_dangling_spans_at_flush() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.record(&Event {
            micros: 10,
            name: "span.outer".into(),
            kind: EventKind::SpanBegin,
            depth: 0,
        });
        sink.record(&Event {
            micros: 25,
            name: "x".into(),
            kind: EventKind::CounterAdd(1),
            depth: 1,
        });
        sink.flush().unwrap();
        let doc = JsonValue::parse(&String::from_utf8(sink.writer).unwrap()).unwrap();
        let records = doc.as_array().unwrap();
        let span = records
            .iter()
            .find(|r| r.get("ph").unwrap().as_str() == Some("X"))
            .expect("dangling span still flushed");
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(10.0));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(15.0));
    }

    #[test]
    fn empty_chrome_trace_closes_to_an_empty_array() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.flush().unwrap();
        let text = String::from_utf8(sink.writer).unwrap();
        assert_eq!(JsonValue::parse(&text).unwrap(), JsonValue::Array(vec![]));
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let mut sink = MemorySink::new();
        let handle = sink.events();
        for e in &sample_events() {
            sink.record(e);
        }
        assert_eq!(*handle.lock().unwrap(), sample_events());
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        for e in &sample_events() {
            sink.record(e);
        }
        sink.flush().unwrap();
    }
}
