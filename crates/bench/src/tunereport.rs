//! Command-line surface and schema validation for the `tune` binary.
//!
//! Lives in the library (rather than the binary) so the integration tests
//! under `crates/bench/tests` can parse-test every flag and validate the
//! emitted `BENCH_pr9.json` against the stable schema without spawning the
//! binary — the same split `loadreport` gives `loadgen`.
//!
//! The `pr9` document records one auto-tuning run: the host fingerprint,
//! one entry per searched workload (trial counts, anchor timings, the
//! winning knobs), the merged best schedule, and the profile block proving
//! the emitted `chambolle.tuning_profile.v2` file reloaded for this host,
//! reproduced the default pixels bit for bit at the Exact tier, and — when
//! the winner runs the Fast tier — stayed inside the Fast-tier tolerance
//! envelope. The block also records which numerics tier was persisted
//! (a Fast winner is demoted to `auto` unless `--allow-fast-profile`).

use chambolle_telemetry::json::JsonValue;

use crate::loadreport::SCHEMA;

/// Benchmark identifier of the auto-tuning run within the schema.
pub const BENCH_TUNING: &str = "pr9";

/// Minimum knob dimensions a valid tuning run must have searched (the
/// acceptance contract of the subsystem).
pub const MIN_DIMENSIONS: usize = 5;

/// Parsed `tune` command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// Shrink the search to the coarse CI grid (`--smoke`).
    pub smoke: bool,
    /// Report path override (`--out`).
    pub out: Option<String>,
    /// Profile path override (`--profile-out`).
    pub profile_out: Option<String>,
    /// Persist a `Fast`-tier winner as-is (`--allow-fast-profile`).
    /// Without it a Fast winner is demoted to `auto` in the saved profile,
    /// so a profile on disk never silently flips consumers off the
    /// bit-exact tier.
    pub allow_fast_profile: bool,
}

impl Args {
    /// The report path: `--out` if given, else `BENCH_pr9.json`.
    pub fn out_path(&self) -> String {
        self.out.clone().unwrap_or_else(|| "BENCH_pr9.json".into())
    }

    /// The profile path: `--profile-out` if given, else the default path
    /// every startup probes (`chambolle.profile.json`).
    pub fn profile_path(&self) -> String {
        self.profile_out
            .clone()
            .unwrap_or_else(|| chambolle_tune::DEFAULT_PROFILE_PATH.into())
    }
}

/// Parses `tune` flags (`args` excludes the program name).
pub fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        smoke: false,
        out: None,
        profile_out: None,
        allow_fast_profile: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--allow-fast-profile" => parsed.allow_fast_profile = true,
            "--out" => {
                let value = iter.next().ok_or("--out requires a path")?;
                parsed.out = Some(value.clone());
            }
            "--profile-out" => {
                let value = iter.next().ok_or("--profile-out requires a path")?;
                parsed.profile_out = Some(value.clone());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(parsed)
}

/// Checks the tuning document against the stable shape downstream tooling
/// relies on: schema/bench identifiers, the fingerprint, at least one
/// workload entry with anchors and a winning config, the dimension floor,
/// and the profile block with its reload and bit-identity attestations.
pub fn validate_tuning(text: &str) -> Result<(), String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
        return Err(format!("schema must be {SCHEMA:?}"));
    }
    if doc.get("bench").and_then(JsonValue::as_str) != Some(BENCH_TUNING) {
        return Err(format!("bench must be {BENCH_TUNING:?}"));
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("full") | Some("smoke") => {}
        other => return Err(format!("mode must be full|smoke, got {other:?}")),
    }
    if doc.get("fingerprint").is_none() {
        return Err("tuning report missing \"fingerprint\"".into());
    }
    let workloads = doc
        .get("workloads")
        .and_then(JsonValue::as_array)
        .ok_or("workloads must be an array")?;
    if workloads.is_empty() {
        return Err("tuning report must cover at least one workload".into());
    }
    for (i, workload) in workloads.iter().enumerate() {
        if workload.get("name").and_then(JsonValue::as_str).is_none() {
            return Err(format!("workload {i} missing \"name\""));
        }
        for field in [
            "dimensions_searched",
            "trials",
            "pruned",
            "baseline_proxy_ms",
            "best_proxy_ms",
            "baseline_full_ms",
            "best_full_ms",
            "speedup",
        ] {
            if workload.get(field).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("workload {i} missing numeric {field:?}"));
            }
        }
        if workload.get("best").is_none() {
            return Err(format!("workload {i} missing its \"best\" config"));
        }
    }
    let dims = doc
        .get("dimensions_searched_total")
        .and_then(JsonValue::as_f64)
        .ok_or("tuning report missing \"dimensions_searched_total\"")?;
    if (dims as usize) < MIN_DIMENSIONS {
        return Err(format!(
            "a tuning run must search >= {MIN_DIMENSIONS} knob dimensions, searched {dims}"
        ));
    }
    if doc.get("best").is_none() {
        return Err("tuning report missing the merged \"best\" config".into());
    }
    if doc
        .get_path("profile.path")
        .and_then(JsonValue::as_str)
        .is_none()
    {
        return Err("tuning report missing \"profile.path\"".into());
    }
    for attestation in [
        "profile.reloaded",
        "profile.bit_identical",
        "profile.fast_within_tolerance",
    ] {
        match doc.get_path(attestation) {
            Some(JsonValue::Bool(true)) => {}
            other => {
                return Err(format!(
                    "tuning report must attest {attestation:?} = true, got {other:?}"
                ))
            }
        }
    }
    match doc.get_path("profile.numerics").and_then(JsonValue::as_str) {
        Some("auto") | Some("exact") | Some("fast") => Ok(()),
        other => Err(format!(
            "tuning report must record the persisted \"profile.numerics\" tier, got {other:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn defaults_are_full_mode_with_standard_paths() {
        let args = parse_args(&[]).unwrap();
        assert!(!args.smoke);
        assert_eq!(args.out_path(), "BENCH_pr9.json");
        assert_eq!(args.profile_path(), chambolle_tune::DEFAULT_PROFILE_PATH);
    }

    #[test]
    fn flags_override_mode_and_paths() {
        let args = parse_args(&strings(&[
            "--smoke",
            "--out",
            "report.json",
            "--profile-out",
            "prof.json",
            "--allow-fast-profile",
        ]))
        .unwrap();
        assert!(args.smoke);
        assert_eq!(args.out_path(), "report.json");
        assert_eq!(args.profile_path(), "prof.json");
        assert!(args.allow_fast_profile);
        assert!(!parse_args(&[]).unwrap().allow_fast_profile);
    }

    #[test]
    fn missing_values_and_unknown_flags_are_rejected() {
        assert!(parse_args(&strings(&["--out"])).is_err());
        assert!(parse_args(&strings(&["--profile-out"])).is_err());
        assert!(parse_args(&strings(&["--frobnicate"])).is_err());
    }
}
