//! Wall-time benchmark of the persistent parallel execution layer.
//!
//! Measures the pooled tiled solver against the per-round-spawn baseline
//! (the PR's headline comparison), the fused [`ParallelSolver`] across
//! thread counts, and the pooled TV-L1 pipeline, then writes a
//! schema-stable `BENCH_pr3.json` report.
//!
//! ```text
//! cargo run --release -p chambolle-bench --bin perf              # full run
//! cargo run --release -p chambolle-bench --bin perf -- --smoke  # CI smoke
//! cargo run --release -p chambolle-bench --bin perf -- --out x.json
//! ```
//!
//! `--smoke` shrinks every workload so the binary finishes in seconds,
//! then self-validates the emitted JSON against the schema; CI runs it on
//! every push.

use std::env;
use std::sync::Arc;
use std::time::Instant;

use chambolle_bench::workloads::timing_frame;
use chambolle_core::{
    chambolle_iterate_tiled_spawn_baseline, chambolle_iterate_tiled_with_ctx, ChambolleParams,
    DualField, ExecCtx, NumericsPolicy, ParallelSolver, SequentialSolver, TileConfig, TvDenoiser,
    TvL1Params, TvL1Solver,
};
use chambolle_imaging::Image;
use chambolle_par::ThreadPool;
use chambolle_telemetry::json::JsonValue;
use chambolle_telemetry::Telemetry;

/// Schema identifier checked by the smoke validation and downstream tools.
const SCHEMA: &str = "chambolle.bench.v1";
/// Benchmark identifier within the schema.
const BENCH: &str = "pr3";

struct Workload {
    name: String,
    width: usize,
    height: usize,
    iterations: u32,
    threads: usize,
    wall_ms: f64,
}

impl Workload {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("name".into(), self.name.as_str().into()),
            ("width".into(), (self.width as u64).into()),
            ("height".into(), (self.height as u64).into()),
            ("iterations".into(), u64::from(self.iterations).into()),
            ("threads".into(), (self.threads as u64).into()),
            ("wall_ms".into(), self.wall_ms.into()),
        ])
    }
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_ms<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr3.json".to_string());

    // Smoke keeps CI fast; the full run uses the paper's 512x512 frame and
    // a best-of-3 to damp scheduler noise.
    let (size, iters, tvl1_size, reps) = if smoke {
        (128usize, 20u32, (64usize, 48usize), 1u32)
    } else {
        (512, 100, (192, 144), 3)
    };
    let threads = 4usize;
    let v: Image = timing_frame(size, size);
    let params = ChambolleParams::with_iterations(iters);
    let config = TileConfig::new(92, 88, 2, threads).expect("valid tile config");

    let mut workloads: Vec<Workload> = Vec::new();
    let mut push = |name: &str, w: usize, h: usize, n: u32, t: usize, ms: f64| {
        eprintln!("  {name:<28} {w}x{h} @{n} iters, {t} thread(s): {ms:>9.2} ms");
        workloads.push(Workload {
            name: name.into(),
            width: w,
            height: h,
            iterations: n,
            threads: t,
            wall_ms: ms,
        });
    };

    eprintln!(
        "perf: tiled denoise, pooled vs per-round spawn ({} mode)",
        mode(smoke)
    );

    // Headline comparison: identical tile plan and merge factor, one
    // persistent pool vs fresh scoped threads every round. Outputs must be
    // bit-identical — the schedulers only move work, never change it.
    let mut p_base = DualField::<f32>::zeros(size, size);
    let baseline_ms = time_ms(reps, || {
        p_base = DualField::zeros(size, size);
        chambolle_iterate_tiled_spawn_baseline(&mut p_base, &v, &params, iters, &config);
    });
    push(
        "tiled.spawn_baseline",
        size,
        size,
        iters,
        threads,
        baseline_ms,
    );

    // Pin the Exact tier: this comparison asserts bit-identity against the
    // spawn baseline, which never honors the fast tier.
    let ctx = ExecCtx::default()
        .with_pool(Arc::new(ThreadPool::new(threads)))
        .with_telemetry(Telemetry::disabled())
        .with_numerics(NumericsPolicy::Exact);
    let mut p_pool = DualField::<f32>::zeros(size, size);
    let pooled_ms = time_ms(reps, || {
        p_pool = DualField::zeros(size, size);
        chambolle_iterate_tiled_with_ctx(&mut p_pool, &v, &params, iters, &config, &ctx)
            .expect("no cancellation token installed");
    });
    push("tiled.pooled", size, size, iters, threads, pooled_ms);
    let bit_identical = p_base.px.as_slice() == p_pool.px.as_slice()
        && p_base.py.as_slice() == p_pool.py.as_slice();
    assert!(
        bit_identical,
        "pooled and baseline dual fields must match exactly"
    );
    let speedup = baseline_ms / pooled_ms;
    eprintln!("  speedup: {speedup:.2}x (bit-identical: {bit_identical})");

    // Whole-frame solvers: the sequential reference and the fused banded
    // ParallelSolver at increasing pool sizes.
    let seq_ms = time_ms(reps, || {
        let _ = SequentialSolver::new().denoise(&v, &params);
    });
    push("denoise.sequential", size, size, iters, 1, seq_ms);
    for t in [2usize, 4] {
        let solver = ParallelSolver::new(t);
        let ms = time_ms(reps, || {
            let _ = solver.denoise(&v, &params);
        });
        push("denoise.parallel", size, size, iters, t, ms);
    }

    // TV-L1: the full outer loop, sequential vs one shared pool driving the
    // pyramid, the warps, and the inner Chambolle solves.
    let (tw, th) = tvl1_size;
    let frame = timing_frame(tw, th);
    let tvl1_params = TvL1Params::new(38.0, ChambolleParams::with_iterations(30), 2, 3, 3)
        .expect("valid TV-L1 params");
    let tvl1_seq_ms = time_ms(reps, || {
        let _ = TvL1Solver::sequential(tvl1_params)
            .flow(&frame, &frame)
            .expect("equal-size frames are valid");
    });
    push("tvl1.sequential", tw, th, 30, 1, tvl1_seq_ms);
    let shared = Arc::new(ThreadPool::new(threads));
    let tvl1_pool_ms = time_ms(reps, || {
        let solver =
            TvL1Solver::with_backend(tvl1_params, ParallelSolver::with_pool(Arc::clone(&shared)))
                .with_pool(Arc::clone(&shared));
        let _ = solver
            .flow(&frame, &frame)
            .expect("equal-size frames are valid");
    });
    push("tvl1.pooled", tw, th, 30, threads, tvl1_pool_ms);

    let report = JsonValue::Object(vec![
        ("schema".into(), SCHEMA.into()),
        ("bench".into(), BENCH.into()),
        ("mode".into(), mode(smoke).into()),
        ("threads".into(), (threads as u64).into()),
        (
            "workloads".into(),
            JsonValue::Array(workloads.iter().map(Workload::to_json).collect()),
        ),
        (
            "speedup".into(),
            JsonValue::Object(vec![
                ("baseline_ms".into(), baseline_ms.into()),
                ("pooled_ms".into(), pooled_ms.into()),
                ("speedup".into(), speedup.into()),
                ("bit_identical".into(), JsonValue::Bool(bit_identical)),
            ]),
        ),
    ]);
    let text = report.to_string_pretty();
    validate(&text).unwrap_or_else(|e| {
        eprintln!("emitted report failed schema validation: {e}");
        std::process::exit(1);
    });
    std::fs::write(&out_path, format!("{text}\n")).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
    println!("{text}");
}

fn mode(smoke: bool) -> &'static str {
    if smoke {
        "smoke"
    } else {
        "full"
    }
}

/// Checks the emitted document against the stable shape downstream tooling
/// relies on: schema/bench identifiers, a non-empty workload array whose
/// entries carry every field, and the speedup block.
fn validate(text: &str) -> Result<(), String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
        return Err(format!("schema must be {SCHEMA:?}"));
    }
    if doc.get("bench").and_then(JsonValue::as_str) != Some(BENCH) {
        return Err(format!("bench must be {BENCH:?}"));
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("full") | Some("smoke") => {}
        other => return Err(format!("mode must be full|smoke, got {other:?}")),
    }
    let workloads = doc
        .get("workloads")
        .and_then(JsonValue::as_array)
        .ok_or("workloads must be an array")?;
    if workloads.is_empty() {
        return Err("workloads must not be empty".into());
    }
    for w in workloads {
        for field in [
            "name",
            "width",
            "height",
            "iterations",
            "threads",
            "wall_ms",
        ] {
            if w.get(field).is_none() {
                return Err(format!("workload entry missing {field:?}"));
            }
        }
    }
    for field in ["baseline_ms", "pooled_ms", "speedup"] {
        if doc
            .get_path(&format!("speedup.{field}"))
            .and_then(JsonValue::as_f64)
            .is_none()
        {
            return Err(format!("speedup block missing {field:?}"));
        }
    }
    Ok(())
}
