//! `kernels` — the PR-5 fused-row-kernel microbenchmark.
//!
//! Times one full Chambolle iteration (fused term + dual-update rows, the
//! exact loop [`chambolle_core::kernels::fused_band_iteration_on`] runs
//! inside every solver) on a 512×512 frame, **single thread**, and emits
//! `BENCH_pr5.json`. Four contenders run:
//!
//! - `serial` — the reference arithmetic executed strictly one lane at a
//!   time ([`std::hint::black_box`] pins every cell, so LLVM cannot
//!   auto-vectorize it). This is the conventional SIMD-speedup baseline:
//!   what the kernel costs without *any* data parallelism.
//! - `scalar` — [`KernelBackend::Scalar`], the portable reference kernels
//!   as actually compiled. LLVM auto-vectorizes these loops to 128-bit
//!   SSE on x86-64, so this baseline is already ~4-wide.
//! - `sse2` / `avx2` — the explicit intrinsic backends.
//!
//! Both speedup ratios are recorded: `avx2_speedup` (AVX2 over the serial
//! baseline — the data-parallel win of the backend) and
//! `avx2_speedup_vs_autovec` (AVX2 over the auto-vectorized scalar
//! backend). The second is structurally modest on modern cores: the dual
//! update is divider-bound, and 256-bit `div`/`sqrt` retire at the same
//! per-element rate as 128-bit, so a bit-exact AVX2 kernel cannot beat an
//! SSE-auto-vectorized baseline by more than ~1.3× there, and at 512×512
//! the full-frame pass is L3-bandwidth-bound on top (see `DESIGN.md`).
//! The 1.5× acceptance gate therefore applies to the serial baseline;
//! against the auto-vectorized one the gate is a parity sanity bound
//! (≥0.95, catching dispatch regressions without flaking on noise).
//!
//! Every contender's dual field is checked **byte-identical** to the
//! scalar reference after the timed run — the backends are throughput
//! knobs, not approximations. Timing is interleaved round-robin across
//! contenders and best-of-reps, so machine noise (steal time, frequency
//! drift) hits every contender alike instead of biasing one window.
//!
//! A second phase benches the **numerics tiers** end to end on the same
//! 512×512 frame — full solver iterations through
//! [`chambolle_core::chambolle_iterate_with_ctx`] at the Exact and Fast
//! tiers per supported backend, plus the Q24.8 fixed-point planar solver
//! ([`chambolle_fixed::fixed_denoise`], the paper's 13/9/9-bit datapath) —
//! and emits a second schema-stable report, `BENCH_pr10.json`. In full
//! mode the Fast tier's best contender must clear **2×** the best-iter
//! time of the Exact AVX2 path (the PR-10 acceptance gate).
//!
//! ```text
//! kernels [--smoke] [--out PATH] [--numerics-out PATH]
//!   --smoke          few iterations; exercises the harness, skips the gates
//!   --out P          row-kernel report path              [BENCH_pr5.json]
//!   --numerics-out P numerics-tier report path           [BENCH_pr10.json]
//! ```

use std::hint::black_box;
use std::time::Instant;

use chambolle_core::kernels::BandHalo;
use chambolle_core::{
    chambolle_iterate_with_ctx, ChambolleParams, DualField, ExecCtx, KernelBackend, NumericsPolicy,
};
use chambolle_fixed::{fixed_denoise, FixedFrame, FixedSolverParams, SqrtUnit};
use chambolle_imaging::Grid;
use chambolle_telemetry::json::JsonValue;

/// Schema identifier shared by every bench report in the workspace.
const SCHEMA: &str = "chambolle.bench.v1";
/// This bench's identifier inside the shared schema.
const BENCH: &str = "pr5";
/// The numerics-tier phase's identifier inside the shared schema.
const BENCH_NUMERICS: &str = "pr10";
/// Frame edge: the acceptance criterion is stated at 512×512.
const SIZE: usize = 512;
/// The speedup AVX2 must clear over the serial baseline in full mode.
const REQUIRED_AVX2_SPEEDUP: f64 = 1.5;
/// The best-iter speedup the Fast tier must clear over Exact AVX2 in full
/// mode (the PR-10 acceptance gate).
const REQUIRED_FAST_SPEEDUP: f64 = 2.0;

/// One timed implementation of the fused iteration.
#[derive(Clone, Copy, PartialEq)]
enum Contender {
    /// Lane-serial reference arithmetic, auto-vectorization inhibited.
    Serial,
    /// A [`KernelBackend`] running [`KernelBackend::fused_band_iteration`].
    Backend(KernelBackend),
}

impl Contender {
    fn name(&self) -> &'static str {
        match self {
            Contender::Serial => "serial",
            Contender::Backend(b) => b.as_str(),
        }
    }

    fn lanes(&self) -> usize {
        match self {
            Contender::Serial => 1,
            Contender::Backend(b) => b.lanes(),
        }
    }
}

/// One contender's timed result.
struct ContenderResult {
    name: &'static str,
    lanes: usize,
    /// Best single-iteration wall time across repetitions, in milliseconds.
    best_iter_ms: f64,
    /// Mean iteration wall time across all repetitions, in milliseconds.
    mean_iter_ms: f64,
    /// Throughput at the best iteration time, in megapixels per second.
    mpixels_per_s: f64,
    /// Dual-field bits after the run, for cross-contender identity checks.
    bits: Vec<u32>,
}

impl ContenderResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("name".into(), self.name.into()),
            ("lanes".into(), (self.lanes as u64).into()),
            ("best_iter_ms".into(), self.best_iter_ms.into()),
            ("mean_iter_ms".into(), self.mean_iter_ms.into()),
            ("mpixels_per_s".into(), self.mpixels_per_s.into()),
        ])
    }
}

/// Deterministic synthetic frame with enough variation to keep the sqrt in
/// the dual update off the trivial fast path.
fn frame(w: usize, h: usize) -> Vec<f32> {
    let mut v = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            v.push(((x * 7 + y * 13) % 29) as f32 / 29.0 - 0.45);
        }
    }
    v
}

/// `term = div p − v/θ` for one row, strictly lane-serial.
///
/// Replays [`chambolle_core::kernels::compute_term_row`] exactly — same
/// expression grouping per cell — with each result pinned by `black_box`
/// so the loop cannot be auto-vectorized. `black_box` is the identity, so
/// the output stays bit-identical to the reference.
fn term_row_serial(
    px: &[f32],
    py: &[f32],
    above: Option<&[f32]>,
    v: &[f32],
    inv_theta: f32,
    last_row: bool,
    out: &mut [f32],
) {
    let w = out.len();
    let dy = |x: usize| -> f32 {
        match (above, last_row) {
            (None, true) => 0.0,
            (None, false) => py[x],
            (Some(a), false) => py[x] - a[x],
            (Some(a), true) => -a[x],
        }
    };
    out[0] = black_box((px[0] + dy(0)) - v[0] * inv_theta);
    for x in 1..w - 1 {
        out[x] = black_box(((px[x] - px[x - 1]) + dy(x)) - v[x] * inv_theta);
    }
    out[w - 1] = black_box((-px[w - 2] + dy(w - 1)) - v[w - 1] * inv_theta);
}

/// The projected dual update for one row, strictly lane-serial; same
/// per-cell arithmetic as [`chambolle_core::kernels::update_p_row`].
fn update_p_row_serial(
    term: &[f32],
    below: Option<&[f32]>,
    step: f32,
    px: &mut [f32],
    py: &mut [f32],
) {
    let w = term.len();
    let mut cell = |x: usize, t1: f32, t2: f32| {
        let t1 = black_box(t1);
        let t2 = black_box(t2);
        let grad = (t1 * t1 + t2 * t2).sqrt();
        let denom = 1.0 + step * grad;
        px[x] = (px[x] + step * t1) / denom;
        py[x] = (py[x] + step * t2) / denom;
    };
    match below {
        Some(b) => {
            for x in 0..w - 1 {
                cell(x, term[x + 1] - term[x], b[x] - term[x]);
            }
            cell(w - 1, 0.0, b[w - 1] - term[w - 1]);
        }
        None => {
            for x in 0..w - 1 {
                cell(x, term[x + 1] - term[x], 0.0);
            }
            cell(w - 1, 0.0, 0.0);
        }
    }
}

/// One full fused iteration, lane-serial, mirroring the rolling term-buffer
/// order of [`chambolle_core::kernels::fused_band_iteration`].
#[allow(clippy::too_many_arguments)]
fn fused_iteration_serial(
    px: &mut [f32],
    py: &mut [f32],
    v: &[f32],
    w: usize,
    h: usize,
    inv_theta: f32,
    step: f32,
    term_a: &mut [f32],
    term_b: &mut [f32],
) {
    let mut cur: &mut [f32] = term_a;
    let mut next: &mut [f32] = term_b;
    term_row_serial(&px[..w], &py[..w], None, &v[..w], inv_theta, h == 1, cur);
    for y in 0..h {
        let lo = y * w;
        if y + 1 < h {
            let (py_here, py_next) = py[lo..].split_at(w);
            term_row_serial(
                &px[lo + w..lo + 2 * w],
                &py_next[..w],
                Some(py_here),
                &v[lo + w..lo + 2 * w],
                inv_theta,
                y + 2 == h,
                next,
            );
            update_p_row_serial(
                cur,
                Some(next),
                step,
                &mut px[lo..lo + w],
                &mut py[lo..lo + w],
            );
            std::mem::swap(&mut cur, &mut next);
        } else {
            update_p_row_serial(cur, None, step, &mut px[lo..lo + w], &mut py[lo..lo + w]);
        }
    }
}

/// Runs `iters` fused full-frame iterations on `contender` once, returning
/// the per-iteration wall time in milliseconds and the resulting dual-field
/// bits. Single-threaded by construction: the whole frame is one band, no
/// pool anywhere.
fn run_once(
    contender: Contender,
    v: &[f32],
    w: usize,
    h: usize,
    params: &ChambolleParams,
    iters: usize,
) -> (f64, Vec<u32>) {
    let inv_theta = 1.0f32 / params.theta;
    let step_ratio = params.tau / params.theta;
    let mut px = vec![0.0f32; w * h];
    let mut py = vec![0.0f32; w * h];
    let mut term_a = vec![0.0f32; w];
    let mut term_b = vec![0.0f32; w];
    let start = Instant::now();
    for _ in 0..iters {
        match contender {
            Contender::Serial => fused_iteration_serial(
                &mut px,
                &mut py,
                v,
                w,
                h,
                inv_theta,
                step_ratio,
                &mut term_a,
                &mut term_b,
            ),
            Contender::Backend(backend) => backend.fused_band_iteration(
                &mut px,
                &mut py,
                v,
                w,
                h,
                0,
                BandHalo {
                    py_above: None,
                    below: None,
                },
                inv_theta,
                step_ratio,
                &mut term_a,
                &mut term_b,
            ),
        }
    }
    let iter_ms = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    let bits = px.iter().chain(py.iter()).map(|f| f.to_bits()).collect();
    (iter_ms, bits)
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_pr5.json");
    let mut numerics_out_path = String::from("BENCH_pr10.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a value");
                    std::process::exit(2);
                }
            },
            "--numerics-out" => match args.next() {
                Some(p) => numerics_out_path = p,
                None => {
                    eprintln!("--numerics-out needs a value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown option {other:?}");
                eprintln!("usage: kernels [--smoke] [--out PATH] [--numerics-out PATH]");
                std::process::exit(2);
            }
        }
    }

    let (iters, reps) = if smoke { (4, 2) } else { (20, 7) };
    let (w, h) = (SIZE, SIZE);
    let v = frame(w, h);
    let params =
        ChambolleParams::new(0.25, 0.248 * 0.25, iters as u32).expect("paper parameters are valid");

    let contenders: Vec<Contender> = std::iter::once(Contender::Serial)
        .chain(
            [
                KernelBackend::Scalar,
                KernelBackend::Sse2,
                KernelBackend::Avx2,
            ]
            .into_iter()
            .filter(|b| {
                let ok = b.is_supported();
                if !ok {
                    eprintln!("  {}: not supported on this host, skipped", b.as_str());
                }
                ok
            })
            .map(Contender::Backend),
        )
        .collect();

    eprintln!(
        "fused-row-kernel microbench: {w}x{h}, {iters} iterations x {reps} interleaved reps, \
         single thread"
    );

    // Round-robin across contenders inside every rep so noise (steal time,
    // frequency drift) is shared instead of biasing whichever contender
    // owned an unlucky window; best-of-reps then discards the spikes.
    let mut best = vec![f64::INFINITY; contenders.len()];
    let mut total = vec![0.0f64; contenders.len()];
    let mut bits: Vec<Vec<u32>> = vec![Vec::new(); contenders.len()];
    for _ in 0..reps {
        for (i, &c) in contenders.iter().enumerate() {
            let (iter_ms, b) = run_once(c, &v, w, h, &params, iters);
            best[i] = best[i].min(iter_ms);
            total[i] += iter_ms;
            bits[i] = b;
        }
    }
    let results: Vec<ContenderResult> = contenders
        .iter()
        .enumerate()
        .map(|(i, c)| ContenderResult {
            name: c.name(),
            lanes: c.lanes(),
            best_iter_ms: best[i],
            mean_iter_ms: total[i] / reps as f64,
            mpixels_per_s: (w * h) as f64 / (best[i] * 1e3),
            bits: std::mem::take(&mut bits[i]),
        })
        .collect();
    for r in &results {
        eprintln!(
            "  {:>6}: best {:.3} ms/iter, mean {:.3} ms/iter, {:.1} Mpx/s",
            r.name, r.best_iter_ms, r.mean_iter_ms, r.mpixels_per_s
        );
    }

    // Byte-identity across contenders is the contract the whole PR rests
    // on; a benchmark timing divergent computations would be meaningless.
    let serial = &results[0];
    for r in &results[1..] {
        assert_eq!(
            r.bits, serial.bits,
            "{} dual field diverged from the serial reference — all contenders must be \
             bit-identical",
            r.name
        );
    }

    let time_of = |name: &str| -> Option<f64> {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.best_iter_ms)
    };
    let scalar_ms = time_of("scalar").expect("scalar backend always runs");
    let avx2 = time_of("avx2").map(|ms| {
        (
            serial.best_iter_ms / ms, // vs the serial baseline
            scalar_ms / ms,           // vs the auto-vectorized scalar backend
        )
    });
    let sse2 = time_of("sse2").map(|ms| (serial.best_iter_ms / ms, scalar_ms / ms));
    eprintln!(
        "  scalar backend (LLVM auto-vectorized) speedup over serial: {:.2}x",
        serial.best_iter_ms / scalar_ms
    );
    if let Some((vs_serial, vs_autovec)) = avx2 {
        eprintln!(
            "  avx2 speedup: {vs_serial:.2}x over serial (gate: {REQUIRED_AVX2_SPEEDUP}x in full \
             mode), {vs_autovec:.2}x over the auto-vectorized scalar backend (gate: >=0.95x)"
        );
        if !smoke {
            assert!(
                vs_serial >= REQUIRED_AVX2_SPEEDUP,
                "AVX2 backend must be at least {REQUIRED_AVX2_SPEEDUP}x the serial reference on \
                 the fused row kernel (measured {vs_serial:.2}x)"
            );
            // Parity-modulo-noise is the memory-bound expectation at this
            // frame size; a real regression (a dispatch bug dropping to a
            // slower path) lands far below this bound.
            assert!(
                vs_autovec >= 0.95,
                "AVX2 backend must not lose to the auto-vectorized scalar backend \
                 (measured {vs_autovec:.2}x)"
            );
        }
    } else {
        eprintln!("  (no AVX2 on this host: speedups recorded as absent, gates skipped)");
    }

    let mut comparison = vec![
        (
            "serial_best_iter_ms".into(),
            JsonValue::from(serial.best_iter_ms),
        ),
        ("scalar_best_iter_ms".into(), scalar_ms.into()),
        (
            "scalar_autovec_speedup".into(),
            (serial.best_iter_ms / scalar_ms).into(),
        ),
        (
            "speedup_baseline".into(),
            "serial (lane-serial reference; *_vs_autovec uses the scalar backend)".into(),
        ),
    ];
    if let Some((vs_serial, vs_autovec)) = sse2 {
        comparison.push(("sse2_speedup".into(), vs_serial.into()));
        comparison.push(("sse2_speedup_vs_autovec".into(), vs_autovec.into()));
    }
    if let Some((vs_serial, vs_autovec)) = avx2 {
        comparison.push(("avx2_speedup".into(), vs_serial.into()));
        comparison.push(("avx2_speedup_vs_autovec".into(), vs_autovec.into()));
    }
    let report = JsonValue::Object(vec![
        ("schema".into(), SCHEMA.into()),
        ("bench".into(), BENCH.into()),
        ("mode".into(), mode(smoke).into()),
        ("width".into(), (w as u64).into()),
        ("height".into(), (h as u64).into()),
        ("iterations".into(), (iters as u64).into()),
        ("reps".into(), (reps as u64).into()),
        ("threads".into(), 1u64.into()),
        (
            "contenders".into(),
            JsonValue::Array(results.iter().map(ContenderResult::to_json).collect()),
        ),
        ("comparison".into(), JsonValue::Object(comparison)),
    ]);
    let text = report.to_string_pretty();
    validate(&text, avx2.is_some()).unwrap_or_else(|e| {
        eprintln!("emitted report failed schema validation: {e}");
        std::process::exit(1);
    });
    std::fs::write(&out_path, format!("{text}\n")).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
    println!("{text}");

    run_numerics_bench(smoke, &numerics_out_path);
}

/// One timed implementation of the full-frame solve in the numerics phase.
#[derive(Clone, Copy)]
enum NumericsContender {
    /// `chambolle_iterate_with_ctx` with the tier and backend pinned on the
    /// context — the exact dispatch every production solve goes through.
    Tier(NumericsPolicy, KernelBackend),
    /// The Q24.8 planar fixed-point solver with the paper's LUT sqrt unit.
    Fixedpoint,
}

impl NumericsContender {
    fn name(&self) -> String {
        match self {
            NumericsContender::Tier(tier, backend) => {
                let t = match tier {
                    NumericsPolicy::Exact => "exact",
                    NumericsPolicy::Fast => "fast",
                };
                format!("{t}_{}", backend.as_str())
            }
            NumericsContender::Fixedpoint => "fixedpoint".into(),
        }
    }
}

/// Runs `iters` full-frame solver iterations once for one numerics-phase
/// contender, returning the per-iteration wall time in milliseconds.
/// Single-threaded by construction: no pool is attached anywhere.
fn run_numerics_once(
    contender: NumericsContender,
    v: &Grid<f32>,
    params: &ChambolleParams,
    iters: u32,
) -> f64 {
    match contender {
        NumericsContender::Tier(tier, backend) => {
            let ctx = ExecCtx::default().with_numerics(tier).with_backend(backend);
            let mut p = DualField::zeros(v.width(), v.height());
            let start = Instant::now();
            chambolle_iterate_with_ctx(&mut p, v, params, iters, &ctx)
                .expect("an inert context carries no cancellation token");
            black_box(&p);
            start.elapsed().as_secs_f64() * 1e3 / f64::from(iters)
        }
        NumericsContender::Fixedpoint => {
            let mut frame = FixedFrame::quantize(v.as_slice(), v.width(), v.height());
            let fixed_params = FixedSolverParams::standard();
            let sqrt = SqrtUnit::lut();
            let start = Instant::now();
            let u = fixed_denoise(&mut frame, &fixed_params, iters, &sqrt);
            black_box(&u);
            start.elapsed().as_secs_f64() * 1e3 / f64::from(iters)
        }
    }
}

/// The numerics-tier phase: Exact vs Fast per supported backend plus the
/// fixed-point solver, on a 512×512 denoise, emitting `BENCH_pr10.json`.
fn run_numerics_bench(smoke: bool, out_path: &str) {
    let (iters, reps) = if smoke { (4u32, 2) } else { (20u32, 7) };
    let (w, h) = (SIZE, SIZE);
    let v = Grid::from_vec(w, h, frame(w, h)).expect("frame dims match");
    let params =
        ChambolleParams::new(0.25, 0.248 * 0.25, iters).expect("paper parameters are valid");

    let backends: Vec<KernelBackend> = [
        KernelBackend::Scalar,
        KernelBackend::Sse2,
        KernelBackend::Avx2,
        KernelBackend::Avx512,
    ]
    .into_iter()
    .filter(|b| b.is_supported())
    .collect();
    let mut contenders: Vec<NumericsContender> = Vec::new();
    for tier in [NumericsPolicy::Exact, NumericsPolicy::Fast] {
        for &b in &backends {
            contenders.push(NumericsContender::Tier(tier, b));
        }
    }
    contenders.push(NumericsContender::Fixedpoint);

    eprintln!(
        "numerics-tier bench: {w}x{h}, {iters} solver iterations x {reps} interleaved reps, \
         single thread"
    );
    let mut best = vec![f64::INFINITY; contenders.len()];
    let mut total = vec![0.0f64; contenders.len()];
    for _ in 0..reps {
        for (i, &c) in contenders.iter().enumerate() {
            let iter_ms = run_numerics_once(c, &v, &params, iters);
            best[i] = best[i].min(iter_ms);
            total[i] += iter_ms;
        }
    }
    let entries: Vec<JsonValue> = contenders
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let name = c.name();
            eprintln!(
                "  {:>12}: best {:.3} ms/iter, mean {:.3} ms/iter, {:.1} Mpx/s",
                name,
                best[i],
                total[i] / reps as f64,
                (w * h) as f64 / (best[i] * 1e3)
            );
            JsonValue::Object(vec![
                ("name".into(), name.as_str().into()),
                ("best_iter_ms".into(), best[i].into()),
                ("mean_iter_ms".into(), (total[i] / reps as f64).into()),
                (
                    "mpixels_per_s".into(),
                    ((w * h) as f64 / (best[i] * 1e3)).into(),
                ),
            ])
        })
        .collect();

    let time_of = |name: &str| -> Option<f64> {
        contenders
            .iter()
            .position(|c| c.name() == name)
            .map(|i| best[i])
    };
    let exact_avx2 = time_of("exact_avx2");
    let fast_best = contenders
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c, NumericsContender::Tier(NumericsPolicy::Fast, _)))
        .map(|(i, c)| (c.name(), best[i]))
        .min_by(|a, b| a.1.total_cmp(&b.1));
    let fixedpoint_ms = time_of("fixedpoint").expect("fixedpoint contender always runs");

    let mut comparison = vec![(
        "fixedpoint_best_iter_ms".into(),
        JsonValue::from(fixedpoint_ms),
    )];
    if let (Some(exact_ms), Some((fast_name, fast_ms))) = (exact_avx2, fast_best.clone()) {
        let speedup = exact_ms / fast_ms;
        eprintln!(
            "  fast tier ({fast_name}) speedup over exact_avx2: {speedup:.2}x \
             (gate: {REQUIRED_FAST_SPEEDUP}x in full mode)"
        );
        comparison.push(("exact_avx2_best_iter_ms".into(), exact_ms.into()));
        comparison.push(("fast_best_iter_ms".into(), fast_ms.into()));
        comparison.push(("fast_best_contender".into(), fast_name.as_str().into()));
        comparison.push(("fast_speedup_vs_exact_avx2".into(), speedup.into()));
        if !smoke {
            assert!(
                speedup >= REQUIRED_FAST_SPEEDUP,
                "the Fast tier must be at least {REQUIRED_FAST_SPEEDUP}x the Exact AVX2 \
                 best-iter time on a {SIZE}x{SIZE} denoise (measured {speedup:.2}x)"
            );
        }
    } else {
        eprintln!("  (no AVX2 on this host: the fast-vs-exact gate is skipped)");
    }

    let report = JsonValue::Object(vec![
        ("schema".into(), SCHEMA.into()),
        ("bench".into(), BENCH_NUMERICS.into()),
        ("mode".into(), mode(smoke).into()),
        ("width".into(), (w as u64).into()),
        ("height".into(), (h as u64).into()),
        ("iterations".into(), u64::from(iters).into()),
        ("reps".into(), (reps as u64).into()),
        ("threads".into(), 1u64.into()),
        ("contenders".into(), JsonValue::Array(entries)),
        ("comparison".into(), JsonValue::Object(comparison)),
    ]);
    let text = report.to_string_pretty();
    validate_numerics(&text, exact_avx2.is_some()).unwrap_or_else(|e| {
        eprintln!("emitted numerics report failed schema validation: {e}");
        std::process::exit(1);
    });
    std::fs::write(out_path, format!("{text}\n")).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
    println!("{text}");
}

/// Checks the numerics-tier document against its stable shape: identifiers,
/// one entry per contender with every timing field, a fixed-point entry,
/// and — on AVX2 hosts — the Exact-vs-Fast comparison the acceptance gate
/// reads.
fn validate_numerics(text: &str, expect_avx2: bool) -> Result<(), String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
        return Err(format!("schema must be {SCHEMA:?}"));
    }
    if doc.get("bench").and_then(JsonValue::as_str) != Some(BENCH_NUMERICS) {
        return Err(format!("bench must be {BENCH_NUMERICS:?}"));
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("full") | Some("smoke") => {}
        other => return Err(format!("mode must be full|smoke, got {other:?}")),
    }
    let contenders = doc
        .get("contenders")
        .and_then(JsonValue::as_array)
        .ok_or("contenders must be an array")?;
    let mut names = Vec::new();
    for entry in contenders {
        let name = entry
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("contender entry missing \"name\"")?;
        names.push(name.to_string());
        for field in ["best_iter_ms", "mean_iter_ms", "mpixels_per_s"] {
            if entry.get(field).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("contender {name:?} missing numeric {field:?}"));
            }
        }
    }
    for required in ["exact_scalar", "fast_scalar", "fixedpoint"] {
        if !names.iter().any(|n| n == required) {
            return Err(format!("contender {required:?} must always be present"));
        }
    }
    let comparison = doc.get("comparison").ok_or("comparison block missing")?;
    if comparison.get("fixedpoint_best_iter_ms").is_none() {
        return Err("comparison missing \"fixedpoint_best_iter_ms\"".into());
    }
    if expect_avx2 {
        for field in [
            "exact_avx2_best_iter_ms",
            "fast_best_iter_ms",
            "fast_best_contender",
            "fast_speedup_vs_exact_avx2",
        ] {
            if comparison.get(field).is_none() {
                return Err(format!("comparison missing {field:?} on an AVX2 host"));
            }
        }
    }
    Ok(())
}

fn mode(smoke: bool) -> &'static str {
    if smoke {
        "smoke"
    } else {
        "full"
    }
}

/// Checks the emitted document against the stable shape downstream tooling
/// relies on: schema/bench identifiers, serial + scalar always present,
/// every per-contender field, and the comparison block (with
/// `avx2_speedup` present exactly when the host ran the AVX2 backend).
fn validate(text: &str, expect_avx2: bool) -> Result<(), String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
        return Err(format!("schema must be {SCHEMA:?}"));
    }
    if doc.get("bench").and_then(JsonValue::as_str) != Some(BENCH) {
        return Err(format!("bench must be {BENCH:?}"));
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("full") | Some("smoke") => {}
        other => return Err(format!("mode must be full|smoke, got {other:?}")),
    }
    let contenders = doc
        .get("contenders")
        .and_then(JsonValue::as_array)
        .ok_or("contenders must be an array")?;
    if contenders.len() < 2 {
        return Err("serial and scalar must both be present".into());
    }
    if contenders[0].get("name").and_then(JsonValue::as_str) != Some("serial") {
        return Err("the first contender entry must be serial".into());
    }
    if contenders[1].get("name").and_then(JsonValue::as_str) != Some("scalar") {
        return Err("the second contender entry must be scalar".into());
    }
    for entry in contenders {
        for field in [
            "name",
            "lanes",
            "best_iter_ms",
            "mean_iter_ms",
            "mpixels_per_s",
        ] {
            if entry.get(field).is_none() {
                return Err(format!("contender entry missing {field:?}"));
            }
        }
    }
    let comparison = doc.get("comparison").ok_or("comparison block missing")?;
    for field in [
        "serial_best_iter_ms",
        "scalar_best_iter_ms",
        "scalar_autovec_speedup",
    ] {
        if comparison.get(field).is_none() {
            return Err(format!("comparison missing {field:?}"));
        }
    }
    if expect_avx2 {
        for field in ["avx2_speedup", "avx2_speedup_vs_autovec"] {
            if comparison.get(field).is_none() {
                return Err(format!("comparison missing {field:?} on an AVX2 host"));
            }
        }
    }
    Ok(())
}
