//! Auto-tuner for the Chambolle stack: searches the knob space on this
//! machine, persists the winning schedule as a fingerprinted
//! `chambolle.tuning_profile.v1`, and writes a schema-stable
//! `BENCH_pr9.json` run report.
//!
//! ```text
//! cargo run --release -p chambolle-bench --bin tune              # full grid
//! cargo run --release -p chambolle-bench --bin tune -- --smoke  # CI grid
//! cargo run --release -p chambolle-bench --bin tune -- --profile-out p.json
//! ```
//!
//! Two searches run, one per workload family:
//!
//! 1. `tiled_denoise` — the solver knobs (tile geometry, merge depth K,
//!    halo margin, pool width, band divisor, kernel backend) against the
//!    tiled ROF denoise. Candidates are installed as the process-wide
//!    schedule for the duration of their measurement, so the trial runs
//!    through exactly the `Tunables`-reading paths production uses.
//! 2. `service_replay` — the service knobs (micro-batch window, admission
//!    watermarks) against an in-process request replay, `loadgen`-style.
//!
//! The winners merge into one profile. Before anything is reported the
//! profile is written, re-loaded through the fingerprint-checking loader,
//! and the winning schedule is proven **bit-identical** to the defaults on
//! a test frame — tuning changes the schedule, never the pixels. A failed
//! reload or a pixel mismatch aborts the run.

use std::env;
use std::sync::Arc;
use std::time::Instant;

use chambolle_bench::loadreport::SCHEMA;
use chambolle_bench::tunereport::{parse_args, validate_tuning, Args, BENCH_TUNING};
use chambolle_bench::workloads::timing_frame;
use chambolle_core::{ChambolleParams, TileConfig, TiledSolver, TvDenoiser};
use chambolle_imaging::Image;
use chambolle_par::ThreadPool;
use chambolle_service::{Priority, Request, Service, ServiceConfig, Workload};
use chambolle_telemetry::json::JsonValue;
use chambolle_telemetry::{names, Telemetry};
use chambolle_tune::{
    coordinate_descent, Fingerprint, Profile, SearchOptions, SearchOutcome, SearchSpace, Tunables,
};

fn main() {
    let raw: Vec<String> = env::args().skip(1).collect();
    let args = parse_args(&raw).unwrap_or_else(|e| {
        eprintln!("tune: {e}");
        eprintln!("usage: tune [--smoke] [--out <path>] [--profile-out <path>]");
        eprintln!("  --smoke       coarse CI grid (seconds, not minutes)");
        eprintln!("  --out         report path            [BENCH_pr9.json]");
        eprintln!("  --profile-out profile path           [chambolle.profile.json]");
        std::process::exit(2);
    });

    let telemetry = Telemetry::null();
    let fingerprint = Fingerprint::detect();
    let max_threads = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
    eprintln!(
        "tune: {} grid on {max_threads} threads max",
        mode(args.smoke)
    );

    let solver = search_solver_knobs(&args, max_threads, &telemetry)
        .unwrap_or_else(|| abort("solver baseline could not be measured"));
    report_outcome("tiled_denoise", &solver);
    let service = search_service_knobs(&args, &telemetry)
        .unwrap_or_else(|| abort("service baseline could not be measured"));
    report_outcome("service_replay", &service);

    // Merge: solver knobs from the solver search, service knobs from the
    // replay search. The merged schedule must still validate as a whole.
    let best = Tunables {
        batch_window: service.best.batch_window,
        high_watermark_pct: service.best.high_watermark_pct,
        low_watermark_pct: service.best.low_watermark_pct,
        ..solver.best
    };
    best.validate()
        .unwrap_or_else(|e| abort(&format!("merged winner fails validation: {e}")));

    // The exactness contract, checked on the actual winner before it is
    // allowed anywhere near a profile file: identical pixels to defaults.
    let bit_identical = prove_bit_identity(&best);
    if !bit_identical {
        abort("winning schedule changed pixels — exactness contract violated");
    }

    // Persist, then prove the profile loads back through the strict
    // fingerprint-checking path a production startup would take.
    let profile_path = args.profile_path();
    let profile = Profile::new(fingerprint.clone(), best).with_provenance(JsonValue::Object(vec![
        ("solver_speedup".into(), solver.speedup().into()),
        ("service_speedup".into(), service.speedup().into()),
        ("mode".into(), mode(args.smoke).into()),
    ]));
    profile
        .save(&profile_path)
        .unwrap_or_else(|e| abort(&format!("cannot write {profile_path}: {e}")));
    let reloaded = Profile::load_for_host(&profile_path, &fingerprint)
        .unwrap_or_else(|e| abort(&format!("emitted profile failed to reload: {e}")));
    assert_eq!(reloaded.tunables, best, "reload must return the winner");
    eprintln!("tune: wrote profile {profile_path} (reload verified)");

    let trials_total = (solver.trials.len() + service.trials.len()) as u64;
    let snapshot = telemetry.snapshot();
    assert_eq!(
        snapshot.counter(names::TUNE_TRIALS),
        Some(trials_total),
        "every trial is counted through telemetry"
    );

    let report = JsonValue::Object(vec![
        ("schema".into(), SCHEMA.into()),
        ("bench".into(), BENCH_TUNING.into()),
        ("mode".into(), mode(args.smoke).into()),
        ("fingerprint".into(), fingerprint.to_json()),
        (
            "workloads".into(),
            JsonValue::Array(vec![
                outcome_to_json("tiled_denoise", &solver),
                outcome_to_json("service_replay", &service),
            ]),
        ),
        (
            "dimensions_searched_total".into(),
            ((solver.dimensions_searched + service.dimensions_searched) as u64).into(),
        ),
        ("trials_total".into(), trials_total.into()),
        ("best".into(), best.to_json()),
        (
            "profile".into(),
            JsonValue::Object(vec![
                ("path".into(), profile_path.as_str().into()),
                ("reloaded".into(), JsonValue::Bool(true)),
                ("bit_identical".into(), JsonValue::Bool(bit_identical)),
            ]),
        ),
    ]);
    let text = report.to_string_pretty();
    validate_tuning(&text).unwrap_or_else(|e| {
        abort(&format!("emitted report failed schema validation: {e}"));
    });
    let out_path = args.out_path();
    std::fs::write(&out_path, format!("{text}\n"))
        .unwrap_or_else(|e| abort(&format!("cannot write {out_path}: {e}")));
    eprintln!("wrote {out_path}");
    println!("{text}");
}

fn abort(msg: &str) -> ! {
    eprintln!("tune: {msg}");
    std::process::exit(1);
}

fn mode(smoke: bool) -> &'static str {
    if smoke {
        "smoke"
    } else {
        "full"
    }
}

fn outcome_to_json(name: &str, o: &SearchOutcome) -> JsonValue {
    JsonValue::Object(vec![
        ("name".into(), name.into()),
        (
            "dimensions_searched".into(),
            (o.dimensions_searched as u64).into(),
        ),
        ("trials".into(), (o.trials.len() as u64).into()),
        ("pruned".into(), (o.pruned as u64).into()),
        ("baseline_proxy_ms".into(), o.baseline_proxy_ms.into()),
        ("best_proxy_ms".into(), o.best_proxy_ms.into()),
        ("baseline_full_ms".into(), o.baseline_full_ms.into()),
        ("best_full_ms".into(), o.best_full_ms.into()),
        ("speedup".into(), o.speedup().into()),
        ("best".into(), o.best.to_json()),
    ])
}

fn report_outcome(name: &str, outcome: &SearchOutcome) {
    eprintln!(
        "  {:<15} {} dims, {} trials ({} pruned): {:.2} ms -> {:.2} ms ({:.2}x)",
        name,
        outcome.dimensions_searched,
        outcome.trials.len(),
        outcome.pruned,
        outcome.baseline_full_ms,
        outcome.best_full_ms,
        outcome.speedup(),
    );
}

/// Runs `f` with `t` installed as the process-wide schedule, restoring the
/// previous schedule afterwards. `None` when `t` does not validate.
fn with_installed<T>(t: &Tunables, f: impl FnOnce() -> T) -> Option<T> {
    let previous = chambolle_tune::install(*t).ok()?;
    let out = f();
    let _ = chambolle_tune::install(previous);
    Some(out)
}

/// One timed tiled denoise under the candidate schedule, in milliseconds.
/// The solver is built from `TileConfig::default()` *after* installation,
/// so the measurement exercises the same `Tunables`-reading path every
/// production entry point uses.
fn time_denoise(t: &Tunables, frame: &Image, params: &ChambolleParams) -> Option<f64> {
    with_installed(t, || {
        let pool = Arc::new(ThreadPool::new(t.threads));
        let solver = TiledSolver::new(TileConfig::default()).with_pool(pool);
        let start = Instant::now();
        let u = solver.denoise(frame, params);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(u.dims(), frame.dims());
        ms
    })
}

fn search_solver_knobs(
    args: &Args,
    max_threads: usize,
    telemetry: &Telemetry,
) -> Option<SearchOutcome> {
    let space = if args.smoke {
        SearchSpace::smoke(max_threads)
    } else {
        SearchSpace::full(max_threads)
    };
    // The proxy is a small frame at few iterations — enough to rank
    // schedules; the full measurement uses a heavier frame so window and
    // pool overheads are amortized the way real runs amortize them.
    let proxy_frame = timing_frame(64, 56);
    let proxy_params = ChambolleParams::with_iterations(6);
    let (fw, fh, fi) = if args.smoke {
        (128, 112, 15)
    } else {
        (256, 224, 40)
    };
    let full_frame = timing_frame(fw, fh);
    let full_params = ChambolleParams::with_iterations(fi);

    let opts = SearchOptions {
        sweeps: if args.smoke { 1 } else { 2 },
        keep_top: if args.smoke { 2 } else { 3 },
    };
    coordinate_descent(
        &space,
        Tunables::default(),
        &opts,
        telemetry,
        &mut |t| time_denoise(t, &proxy_frame, &proxy_params),
        &mut |t| time_denoise(t, &full_frame, &full_params),
    )
}

/// One timed in-process request replay under the candidate's service knobs:
/// `n` denoise requests submitted back to back through a service whose
/// batching window and admission watermarks come from `t`.
fn time_replay(t: &Tunables, n: usize, frame: &Image, params: &ChambolleParams) -> Option<f64> {
    const REPLAY_THREADS: usize = 2;
    let config = ServiceConfig::from_tunables(REPLAY_THREADS, n + 8, t);
    let service = Service::spawn(config);
    let start = Instant::now();
    let tickets: Vec<_> = (0..n)
        .map(|i| {
            let mut request = Request::new(Workload::Denoise {
                input: frame.clone(),
                params: *params,
            });
            if i % 4 == 0 {
                request = request.with_priority(Priority::Interactive);
            }
            service.handle().submit(request).ok()
        })
        .collect();
    for ticket in tickets.into_iter().flatten() {
        ticket.wait().ok()?;
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    service.shutdown();
    Some(ms)
}

fn search_service_knobs(args: &Args, telemetry: &Telemetry) -> Option<SearchOutcome> {
    let space = SearchSpace::service(args.smoke);
    let frame = timing_frame(24, 24);
    let params = ChambolleParams::with_iterations(8);
    let (proxy_n, full_n) = if args.smoke { (16, 48) } else { (48, 160) };

    let opts = SearchOptions {
        sweeps: 1,
        keep_top: 2,
    };
    coordinate_descent(
        &space,
        Tunables::default(),
        &opts,
        telemetry,
        &mut |t| time_replay(t, proxy_n, &frame, &params),
        &mut |t| time_replay(t, full_n, &frame, &params),
    )
}

/// Solves one frame under the default schedule and under `best`; true iff
/// the outputs agree bit for bit.
fn prove_bit_identity(best: &Tunables) -> bool {
    let frame = timing_frame(67, 53);
    let params = ChambolleParams::with_iterations(11);
    let solve = |t: &Tunables| {
        with_installed(t, || {
            let pool = Arc::new(ThreadPool::new(t.threads));
            TiledSolver::new(TileConfig::default())
                .with_pool(pool)
                .denoise(&frame, &params)
        })
    };
    match (solve(&Tunables::default()), solve(best)) {
        (Some(reference), Some(tuned)) => reference.as_slice() == tuned.as_slice(),
        _ => false,
    }
}
