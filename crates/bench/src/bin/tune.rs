//! Auto-tuner for the Chambolle stack: searches the knob space on this
//! machine, persists the winning schedule as a fingerprinted
//! `chambolle.tuning_profile.v2`, and writes a schema-stable
//! `BENCH_pr9.json` run report.
//!
//! ```text
//! cargo run --release -p chambolle-bench --bin tune              # full grid
//! cargo run --release -p chambolle-bench --bin tune -- --smoke  # CI grid
//! cargo run --release -p chambolle-bench --bin tune -- --profile-out p.json
//! ```
//!
//! Two searches run, one per workload family:
//!
//! 1. `tiled_denoise` — the solver knobs (tile geometry, merge depth K,
//!    halo margin, pool width, band divisor, kernel backend) against the
//!    tiled ROF denoise. Candidates are installed as the process-wide
//!    schedule for the duration of their measurement, so the trial runs
//!    through exactly the `Tunables`-reading paths production uses.
//! 2. `service_replay` — the service knobs (micro-batch window, admission
//!    watermarks) against an in-process request replay, `loadgen`-style.
//!
//! The winners merge into one profile. Before anything is reported the
//! profile is written, re-loaded through the fingerprint-checking loader,
//! and the winning schedule is proven **bit-identical** to the defaults on
//! a test frame *at the Exact numerics tier* — tuning changes the schedule,
//! never the pixels. A winner that selects the Fast tier must additionally
//! stay inside the Fast-tier tolerance envelope against its own Exact
//! solve, and is persisted with `numerics: "auto"` unless
//! `--allow-fast-profile` opts the profile into the tier explicitly. A
//! failed reload, pixel mismatch, or tolerance breach aborts the run.

use std::env;
use std::sync::Arc;
use std::time::Instant;

use chambolle_bench::loadreport::SCHEMA;
use chambolle_bench::tunereport::{parse_args, validate_tuning, Args, BENCH_TUNING};
use chambolle_bench::workloads::timing_frame;
use chambolle_core::{
    rof_energy, ChambolleParams, ExecCtx, NumericsPolicy, TileConfig, TiledSolver, TvDenoiser,
};
use chambolle_imaging::Image;
use chambolle_par::ThreadPool;
use chambolle_service::{Priority, Request, Service, ServiceConfig, Workload};
use chambolle_telemetry::json::JsonValue;
use chambolle_telemetry::{names, Telemetry};
use chambolle_tune::{
    coordinate_descent, Fingerprint, NumericsChoice, Profile, SearchOptions, SearchOutcome,
    SearchSpace, Tunables,
};

fn main() {
    let raw: Vec<String> = env::args().skip(1).collect();
    let args = parse_args(&raw).unwrap_or_else(|e| {
        eprintln!("tune: {e}");
        eprintln!(
            "usage: tune [--smoke] [--out <path>] [--profile-out <path>] [--allow-fast-profile]"
        );
        eprintln!("  --smoke              coarse CI grid (seconds, not minutes)");
        eprintln!("  --out                report path     [BENCH_pr9.json]");
        eprintln!("  --profile-out        profile path    [chambolle.profile.json]");
        eprintln!("  --allow-fast-profile persist a Fast-tier winner as-is");
        std::process::exit(2);
    });

    let telemetry = Telemetry::null();
    let fingerprint = Fingerprint::detect();
    let max_threads = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
    eprintln!(
        "tune: {} grid on {max_threads} threads max",
        mode(args.smoke)
    );

    let solver = search_solver_knobs(&args, max_threads, &telemetry)
        .unwrap_or_else(|| abort("solver baseline could not be measured"));
    report_outcome("tiled_denoise", &solver);
    let service = search_service_knobs(&args, &telemetry)
        .unwrap_or_else(|| abort("service baseline could not be measured"));
    report_outcome("service_replay", &service);

    // Merge: solver knobs from the solver search, service knobs from the
    // replay search. The merged schedule must still validate as a whole.
    let best = Tunables {
        batch_window: service.best.batch_window,
        high_watermark_pct: service.best.high_watermark_pct,
        low_watermark_pct: service.best.low_watermark_pct,
        ..solver.best
    };
    best.validate()
        .unwrap_or_else(|e| abort(&format!("merged winner fails validation: {e}")));

    // The exactness contract, checked on the actual winner before it is
    // allowed anywhere near a profile file: identical pixels to defaults at
    // the Exact tier (the only tier that promises bit equality).
    let bit_identical = prove_bit_identity(&best);
    if !bit_identical {
        abort("winning schedule changed pixels — exactness contract violated");
    }
    // A Fast-tier winner carries a second obligation: its own Fast solve
    // must sit inside the tolerance envelope of its Exact solve.
    let fast_within_tolerance = prove_fast_tolerance(&best);
    if !fast_within_tolerance {
        abort("Fast-tier winner breached the numerics tolerance envelope");
    }

    // Persist, then prove the profile loads back through the strict
    // fingerprint-checking path a production startup would take. A Fast
    // winner is demoted to `auto` unless explicitly allowed: a profile on
    // disk must not silently flip every consumer off the bit-exact tier.
    let persisted = if best.numerics == NumericsChoice::Fast && !args.allow_fast_profile {
        eprintln!(
            "tune: winner selects the Fast tier; persisting numerics=auto \
             (re-run with --allow-fast-profile to keep it)"
        );
        Tunables {
            numerics: NumericsChoice::Auto,
            ..best
        }
    } else {
        best
    };
    let profile_path = args.profile_path();
    let profile =
        Profile::new(fingerprint.clone(), persisted).with_provenance(JsonValue::Object(vec![
            ("solver_speedup".into(), solver.speedup().into()),
            ("service_speedup".into(), service.speedup().into()),
            ("mode".into(), mode(args.smoke).into()),
            ("searched_numerics".into(), best.numerics.as_str().into()),
        ]));
    profile
        .save(&profile_path)
        .unwrap_or_else(|e| abort(&format!("cannot write {profile_path}: {e}")));
    let reloaded = Profile::load_for_host(&profile_path, &fingerprint)
        .unwrap_or_else(|e| abort(&format!("emitted profile failed to reload: {e}")));
    assert_eq!(
        reloaded.tunables, persisted,
        "reload must return the persisted schedule"
    );
    eprintln!("tune: wrote profile {profile_path} (reload verified)");

    let trials_total = (solver.trials.len() + service.trials.len()) as u64;
    let snapshot = telemetry.snapshot();
    assert_eq!(
        snapshot.counter(names::TUNE_TRIALS),
        Some(trials_total),
        "every trial is counted through telemetry"
    );

    let report = JsonValue::Object(vec![
        ("schema".into(), SCHEMA.into()),
        ("bench".into(), BENCH_TUNING.into()),
        ("mode".into(), mode(args.smoke).into()),
        ("fingerprint".into(), fingerprint.to_json()),
        (
            "workloads".into(),
            JsonValue::Array(vec![
                outcome_to_json("tiled_denoise", &solver),
                outcome_to_json("service_replay", &service),
            ]),
        ),
        (
            "dimensions_searched_total".into(),
            ((solver.dimensions_searched + service.dimensions_searched) as u64).into(),
        ),
        ("trials_total".into(), trials_total.into()),
        ("best".into(), best.to_json()),
        (
            "profile".into(),
            JsonValue::Object(vec![
                ("path".into(), profile_path.as_str().into()),
                ("reloaded".into(), JsonValue::Bool(true)),
                ("bit_identical".into(), JsonValue::Bool(bit_identical)),
                (
                    "fast_within_tolerance".into(),
                    JsonValue::Bool(fast_within_tolerance),
                ),
                ("numerics".into(), persisted.numerics.as_str().into()),
            ]),
        ),
    ]);
    let text = report.to_string_pretty();
    validate_tuning(&text).unwrap_or_else(|e| {
        abort(&format!("emitted report failed schema validation: {e}"));
    });
    let out_path = args.out_path();
    std::fs::write(&out_path, format!("{text}\n"))
        .unwrap_or_else(|e| abort(&format!("cannot write {out_path}: {e}")));
    eprintln!("wrote {out_path}");
    println!("{text}");
}

fn abort(msg: &str) -> ! {
    eprintln!("tune: {msg}");
    std::process::exit(1);
}

fn mode(smoke: bool) -> &'static str {
    if smoke {
        "smoke"
    } else {
        "full"
    }
}

fn outcome_to_json(name: &str, o: &SearchOutcome) -> JsonValue {
    JsonValue::Object(vec![
        ("name".into(), name.into()),
        (
            "dimensions_searched".into(),
            (o.dimensions_searched as u64).into(),
        ),
        ("trials".into(), (o.trials.len() as u64).into()),
        ("pruned".into(), (o.pruned as u64).into()),
        ("baseline_proxy_ms".into(), o.baseline_proxy_ms.into()),
        ("best_proxy_ms".into(), o.best_proxy_ms.into()),
        ("baseline_full_ms".into(), o.baseline_full_ms.into()),
        ("best_full_ms".into(), o.best_full_ms.into()),
        ("speedup".into(), o.speedup().into()),
        ("best".into(), o.best.to_json()),
    ])
}

fn report_outcome(name: &str, outcome: &SearchOutcome) {
    eprintln!(
        "  {:<15} {} dims, {} trials ({} pruned): {:.2} ms -> {:.2} ms ({:.2}x)",
        name,
        outcome.dimensions_searched,
        outcome.trials.len(),
        outcome.pruned,
        outcome.baseline_full_ms,
        outcome.best_full_ms,
        outcome.speedup(),
    );
}

/// Runs `f` with `t` installed as the process-wide schedule, restoring the
/// previous schedule afterwards. `None` when `t` does not validate.
fn with_installed<T>(t: &Tunables, f: impl FnOnce() -> T) -> Option<T> {
    let previous = chambolle_tune::install(*t).ok()?;
    let out = f();
    let _ = chambolle_tune::install(previous);
    Some(out)
}

/// One timed tiled denoise under the candidate schedule, in milliseconds.
/// The solver is built from `TileConfig::default()` *after* installation,
/// so the measurement exercises the same `Tunables`-reading path every
/// production entry point uses.
fn time_denoise(t: &Tunables, frame: &Image, params: &ChambolleParams) -> Option<f64> {
    with_installed(t, || {
        let pool = Arc::new(ThreadPool::new(t.threads));
        let solver = TiledSolver::new(TileConfig::default()).with_pool(pool);
        let start = Instant::now();
        let u = solver.denoise(frame, params);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(u.dims(), frame.dims());
        ms
    })
}

fn search_solver_knobs(
    args: &Args,
    max_threads: usize,
    telemetry: &Telemetry,
) -> Option<SearchOutcome> {
    let space = if args.smoke {
        SearchSpace::smoke(max_threads)
    } else {
        SearchSpace::full(max_threads)
    };
    // The proxy is a small frame at few iterations — enough to rank
    // schedules; the full measurement uses a heavier frame so window and
    // pool overheads are amortized the way real runs amortize them.
    let proxy_frame = timing_frame(64, 56);
    let proxy_params = ChambolleParams::with_iterations(6);
    let (fw, fh, fi) = if args.smoke {
        (128, 112, 15)
    } else {
        (256, 224, 40)
    };
    let full_frame = timing_frame(fw, fh);
    let full_params = ChambolleParams::with_iterations(fi);

    let opts = SearchOptions {
        sweeps: if args.smoke { 1 } else { 2 },
        keep_top: if args.smoke { 2 } else { 3 },
    };
    coordinate_descent(
        &space,
        Tunables::default(),
        &opts,
        telemetry,
        &mut |t| time_denoise(t, &proxy_frame, &proxy_params),
        &mut |t| time_denoise(t, &full_frame, &full_params),
    )
}

/// One timed in-process request replay under the candidate's service knobs:
/// `n` denoise requests submitted back to back through a service whose
/// batching window and admission watermarks come from `t`.
fn time_replay(t: &Tunables, n: usize, frame: &Image, params: &ChambolleParams) -> Option<f64> {
    const REPLAY_THREADS: usize = 2;
    let config = ServiceConfig::from_tunables(REPLAY_THREADS, n + 8, t);
    let service = Service::spawn(config);
    let start = Instant::now();
    let tickets: Vec<_> = (0..n)
        .map(|i| {
            let mut request = Request::new(Workload::Denoise {
                input: frame.clone(),
                params: *params,
            });
            if i % 4 == 0 {
                request = request.with_priority(Priority::Interactive);
            }
            service.handle().submit(request).ok()
        })
        .collect();
    for ticket in tickets.into_iter().flatten() {
        ticket.wait().ok()?;
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    service.shutdown();
    Some(ms)
}

fn search_service_knobs(args: &Args, telemetry: &Telemetry) -> Option<SearchOutcome> {
    let space = SearchSpace::service(args.smoke);
    let frame = timing_frame(24, 24);
    let params = ChambolleParams::with_iterations(8);
    let (proxy_n, full_n) = if args.smoke { (16, 48) } else { (48, 160) };

    let opts = SearchOptions {
        sweeps: 1,
        keep_top: 2,
    };
    coordinate_descent(
        &space,
        Tunables::default(),
        &opts,
        telemetry,
        &mut |t| time_replay(t, proxy_n, &frame, &params),
        &mut |t| time_replay(t, full_n, &frame, &params),
    )
}

/// Solves one frame under schedule `t` with the numerics tier pinned on
/// the context (so neither the knob under test nor a `CHAMBOLLE_NUMERICS`
/// environment can move the attestation off `tier`), through the same
/// `Tunables`-reading schedule path production uses.
fn solve_at_tier(
    t: &Tunables,
    tier: NumericsPolicy,
    frame: &Image,
    params: &ChambolleParams,
) -> Option<Image> {
    with_installed(t, || {
        let pool = Arc::new(ThreadPool::new(t.threads));
        let ctx = ExecCtx::default().with_numerics(tier);
        TiledSolver::new(TileConfig::default())
            .with_pool(pool)
            .denoise_with_ctx(frame, params, &ctx)
    })
}

/// Solves one frame under the default schedule and under `best`, both
/// pinned to the Exact tier; true iff the outputs agree bit for bit.
/// (Bit equality across schedules is the Exact tier's contract — a Fast
/// winner is held to the tolerance envelope instead, see
/// [`prove_fast_tolerance`].)
fn prove_bit_identity(best: &Tunables) -> bool {
    let frame = timing_frame(67, 53);
    let params = ChambolleParams::with_iterations(11);
    let at_exact = |t: &Tunables| solve_at_tier(t, NumericsPolicy::Exact, &frame, &params);
    match (at_exact(&Tunables::default()), at_exact(best)) {
        (Some(reference), Some(tuned)) => reference.as_slice() == tuned.as_slice(),
        _ => false,
    }
}

/// For a winner that selects the Fast tier: its Fast solve must stay within
/// the numerics tolerance envelope ([`NumericsPolicy::PIXEL_ATOL`] pixels,
/// [`NumericsPolicy::ENERGY_RTOL`] relative ROF energy) of its own Exact
/// solve. Vacuously true for Exact/Auto winners.
fn prove_fast_tolerance(best: &Tunables) -> bool {
    if best.numerics != NumericsChoice::Fast {
        return true;
    }
    let frame = timing_frame(67, 53);
    let params = ChambolleParams::with_iterations(11);
    let exact = solve_at_tier(best, NumericsPolicy::Exact, &frame, &params);
    let fast = solve_at_tier(best, NumericsPolicy::Fast, &frame, &params);
    let (Some(exact), Some(fast)) = (exact, fast) else {
        return false;
    };
    let max_dev = exact
        .as_slice()
        .iter()
        .zip(fast.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    let e_exact = rof_energy(&exact, &frame, params.theta);
    let e_fast = rof_energy(&fast, &frame, params.theta);
    let energy_rdev = (e_exact - e_fast).abs() / e_exact.abs().max(f64::EPSILON);
    max_dev <= NumericsPolicy::PIXEL_ATOL && energy_rdev <= NumericsPolicy::ENERGY_RTOL
}
