//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p chambolle-bench --bin repro --release -- all
//! cargo run -p chambolle-bench --bin repro --release -- table2
//! ```
//!
//! Subcommands: `table1`, `table2`, `fig1`, `overhead`, `sqrt`, `profile`,
//! `arch`, `all`. See `EXPERIMENTS.md` for the experiment index.
//!
//! With `--json`, the selected reproduction is emitted as a machine-readable
//! [`RunReport`] on stdout instead of text tables: `--json` alone runs a fast
//! instrumented suite (solver trajectory, tiling redundancy, accelerator
//! cycle/BRAM counters, fault-recovery counters, Table I/II records), while
//! `--json table1` / `--json table2` restrict the report to that table.

use std::env;

use chambolle_bench::baselines::{
    best_baseline, PAPER_SPEEDUP_RANGE, TABLE2_BASELINES, TABLE2_PROPOSED,
};
use chambolle_bench::dataset::standard_cases;
use chambolle_bench::tables::{fps_cell, TextTable};
use chambolle_bench::workloads::{measure_host_chambolle, timing_frame};
use chambolle_core::dependency::{best_group_shape, cone_stats};
use chambolle_core::{
    chambolle_denoise, chambolle_denoise_monitored, chambolle_denoise_monitored_with_ctx,
    ChambolleParams, ExecCtx, TileConfig, TilePlan, TiledSolver, TvDenoiser, TvL1Params,
    TvL1Solver,
};
use chambolle_fixed::{sqrt_accuracy, SqrtLut};
use chambolle_hwsim::{
    fixed_chambolle_reference_with, quantize_input, AccelConfig, AccelGuardConfig, ArrayConfig,
    ChambolleAccel, DeviceCapacity, FaultConfig, FaultInjector, HwParams, PeArray, ResourceModel,
    SqrtKind, ThroughputModel,
};
use chambolle_telemetry::json::JsonValue;
use chambolle_telemetry::report::RunReport;
use chambolle_telemetry::Telemetry;

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let json_mode = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    if json_mode {
        let report = match cmd {
            "all" | "report" => json_full_report(),
            "table1" => json_table_report("repro.table1", "table1", table1_json()),
            "table2" => json_table_report("repro.table2", "table2", table2_json()),
            other => {
                eprintln!("unknown --json experiment {other:?}; use one of: table1 table2 all");
                std::process::exit(2);
            }
        };
        println!("{}", report.to_json().to_string_pretty());
        return;
    }
    match cmd {
        "table1" => table1(),
        "table2" => table2(),
        "fig1" => fig1(),
        "overhead" => overhead(),
        "sqrt" => sqrt(),
        "profile" => profile(),
        "arch" => arch(),
        "ablate" => ablate(),
        "convergence" => convergence(),
        "accuracy" => accuracy(),
        "decomposition" => decomposition(),
        "all" => {
            table1();
            fig1();
            overhead();
            sqrt();
            arch();
            ablate();
            convergence();
            accuracy();
            decomposition();
            profile();
            table2();
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; use one of: table1 table2 fig1 overhead sqrt profile arch ablate convergence accuracy decomposition all"
            );
            std::process::exit(2);
        }
    }
}

/// A [`RunReport`] holding a single table section (for `--json table1|2`).
fn json_table_report(tool: &str, section: &str, value: JsonValue) -> RunReport {
    let mut report = RunReport::new(tool);
    report.add_section(section, value);
    report
}

/// The default `--json` suite: runs instrumented versions of the fast
/// experiments and collects every cross-crate metric the telemetry layer
/// exposes — solver iterations and duality-gap trajectory, tiling redundancy,
/// accelerator cycle and per-port BRAM counters, throughput-model gauges, and
/// fault-recovery counters — into one schema-versioned report.
fn json_full_report() -> RunReport {
    let telemetry = Telemetry::null();

    // Solver: monitored convergence on the standard timing frame.
    let v = timing_frame(128, 128).map(|&x| f64::from(x));
    let solver_iters = 200u32;
    let solve = chambolle_denoise_monitored_with_ctx(
        &v,
        &ChambolleParams::with_iterations(solver_iters),
        50,
        0.0,
        &ExecCtx::default().with_telemetry(telemetry.clone()),
    )
    .expect("no cancellation token installed");
    let trajectory = JsonValue::Array(
        solve
            .history
            .iter()
            .map(|p| {
                JsonValue::Object(vec![
                    ("iteration".into(), u64::from(p.iteration).into()),
                    ("energy".into(), p.energy.into()),
                    ("gap".into(), p.gap.into()),
                ])
            })
            .collect(),
    );

    // Tiling: the sliding-window solver on a multi-window frame (records
    // rounds, window loads, and the halo-redundancy ratio).
    let v32 = timing_frame(256, 256);
    let tiled = TiledSolver::new(TileConfig::new(92, 88, 2, 2).expect("valid config"))
        .with_telemetry(telemetry.clone());
    let _ = tiled.denoise(&v32, &ChambolleParams::paper(6));

    // Accelerator: a cycle-level two-window frame (cycle totals, per-port
    // BRAM access/idle counts, sqrt-LUT usage).
    let frame = timing_frame(150, 120);
    let mut accel = ChambolleAccel::new(AccelConfig::paper(2).expect("valid config"));
    accel.attach_telemetry(telemetry.clone());
    accel
        .denoise_pair(&frame, None, &ChambolleParams::paper(6))
        .expect("paper params are hardware-representable");

    // Guarded accelerator under a deterministic SEU schedule (detection /
    // recovery / fallback counters).
    let mut guarded = ChambolleAccel::new(AccelConfig::paper(2).expect("valid config"));
    guarded.attach_telemetry(telemetry.clone());
    let mut injector = FaultInjector::new(FaultConfig {
        seed: 2011,
        bram_flip_rate: 5e-4,
        lut_rate: 0.0,
        datapath_rate: 0.0,
    });
    guarded
        .denoise_pair_guarded(
            &frame,
            None,
            &ChambolleParams::paper(6),
            &mut injector,
            &AccelGuardConfig::default(),
        )
        .expect("paper params are hardware-representable");

    // Throughput model at the Table II flagship shape.
    let model = ThroughputModel::new(AccelConfig::paper(2).expect("valid config"));
    model.record_telemetry(&telemetry, 512, 512, 200);

    let mut report = RunReport::from_telemetry("repro", &telemetry);
    report.add_section(
        "solver",
        JsonValue::Object(vec![
            ("iterations".into(), u64::from(solver_iters).into()),
            ("trajectory".into(), trajectory),
        ]),
    );
    report.add_section("table1", table1_json());
    report.add_section("table2", table2_json());
    report
}

/// Table I as structured records (shares `table1()`'s resource model).
fn table1_json() -> JsonValue {
    let model = ResourceModel::paper();
    let usage = model.usage();
    let dev = DeviceCapacity::XC5VLX110T;
    let util = usage.utilization(&dev);
    let resources = JsonValue::Object(vec![
        (
            "used".into(),
            JsonValue::Object(vec![
                ("flipflops".into(), u64::from(usage.flipflops).into()),
                ("luts".into(), u64::from(usage.luts).into()),
                ("brams".into(), u64::from(usage.brams).into()),
                ("dsps".into(), u64::from(usage.dsps).into()),
            ]),
        ),
        (
            "total".into(),
            JsonValue::Object(vec![
                ("flipflops".into(), u64::from(dev.flipflops).into()),
                ("luts".into(), u64::from(dev.luts).into()),
                ("brams".into(), u64::from(dev.brams).into()),
                ("dsps".into(), u64::from(dev.dsps).into()),
            ]),
        ),
        (
            "percent".into(),
            JsonValue::Object(vec![
                ("flipflops".into(), util.flipflops_pct.into()),
                ("luts".into(), util.luts_pct.into()),
                ("brams".into(), util.brams_pct.into()),
                ("dsps".into(), util.dsps_pct.into()),
            ]),
        ),
    ]);
    let breakdown = JsonValue::Array(
        model
            .breakdown()
            .into_iter()
            .map(|(name, u)| {
                JsonValue::Object(vec![
                    ("block".into(), name.into()),
                    ("flipflops".into(), u64::from(u.flipflops).into()),
                    ("luts".into(), u64::from(u.luts).into()),
                    ("brams".into(), u64::from(u.brams).into()),
                    ("dsps".into(), u64::from(u.dsps).into()),
                ])
            })
            .collect(),
    );
    JsonValue::Object(vec![
        ("device".into(), "XC5VLX110T".into()),
        ("pe_count".into(), u64::from(model.pe_count()).into()),
        ("resources".into(), resources),
        ("breakdown".into(), breakdown),
    ])
}

/// Table II as structured records: literature baselines plus the analytic
/// cycle model of the simulated accelerator (the slow measured host-CPU rows
/// of the text table are skipped so `--json` stays fast).
fn table2_json() -> JsonValue {
    let row = |reference: &str, device: &str, iters: u32, w: usize, h: usize, lo: f64, hi: f64| {
        JsonValue::Object(vec![
            ("reference".into(), reference.into()),
            ("device".into(), device.into()),
            ("iterations".into(), u64::from(iters).into()),
            ("width".into(), (w as u64).into()),
            ("height".into(), (h as u64).into()),
            ("fps_lo".into(), lo.into()),
            ("fps_hi".into(), hi.into()),
        ])
    };
    let mut rows = Vec::new();
    for r in TABLE2_BASELINES.iter().chain(TABLE2_PROPOSED) {
        rows.push(row(
            r.reference,
            r.device,
            r.iterations,
            r.width,
            r.height,
            r.fps_lo,
            r.fps_hi,
        ));
    }
    let model = ThroughputModel::new(AccelConfig::paper(2).expect("valid config"));
    let shapes: &[(usize, usize, &[u32])] = &[
        (128, 128, &[50, 100, 200]),
        (256, 256, &[50, 100, 200]),
        (512, 512, &[50, 100, 200]),
        (1024, 768, &[200]),
    ];
    for &(w, h, iters) in shapes {
        for &n in iters {
            let f1 = model.fps(w, h, n);
            let f3 = model.fps_with_loop_decomposition(w, h, n, 3);
            rows.push(row(
                "ours",
                "simulated FPGA @221 MHz (m=1)",
                n,
                w,
                h,
                f1,
                f1,
            ));
            rows.push(row(
                "ours",
                "simulated FPGA @221 MHz (m=3)",
                n,
                w,
                h,
                f3,
                f3,
            ));
        }
    }
    JsonValue::Object(vec![("rows".into(), JsonValue::Array(rows))])
}

fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// E1 — Table I: area usage on the XC5VLX110T.
fn table1() {
    banner("Table I: area usage on a XC5VLX110T (resource model)");
    let model = ResourceModel::paper();
    let usage = model.usage();
    let dev = DeviceCapacity::XC5VLX110T;
    let util = usage.utilization(&dev);

    let mut t = TextTable::new(&["", "FlipFlops", "LUTs", "BRAMs", "DSPs"]);
    t.row_owned(vec![
        "Used".into(),
        usage.flipflops.to_string(),
        usage.luts.to_string(),
        usage.brams.to_string(),
        usage.dsps.to_string(),
    ]);
    t.row_owned(vec![
        "Total".into(),
        dev.flipflops.to_string(),
        dev.luts.to_string(),
        dev.brams.to_string(),
        dev.dsps.to_string(),
    ]);
    t.row_owned(vec![
        "Percentage".into(),
        format!("{:.0}%", util.flipflops_pct),
        format!("{:.0}%", util.luts_pct),
        format!("{:.0}%", util.brams_pct),
        format!("{:.1}%", util.dsps_pct),
    ]);
    println!("{}", t.render());

    println!("Breakdown ({} PEs total):", model.pe_count());
    let mut b = TextTable::new(&["block", "FF", "LUT", "BRAM", "DSP"]);
    for (name, u) in model.breakdown() {
        b.row_owned(vec![
            name.into(),
            u.flipflops.to_string(),
            u.luts.to_string(),
            u.brams.to_string(),
            u.dsps.to_string(),
        ]);
    }
    println!("{}", b.render());
    println!("Paper reports: 23143 FF (33%), 32829 LUT (47%), 36 BRAM (28%), 62 DSP (96.8%).");
}

/// E2/E3 — Table II: frame rates and speedups.
fn table2() {
    banner("Table II: frame-rate comparison");
    let mut t = TextTable::new(&["Ref.", "Device", "Iter", "Resolution", "fps"]);
    for r in TABLE2_BASELINES {
        t.row_owned(vec![
            r.reference.into(),
            r.device.into(),
            r.iterations.to_string(),
            format!("{}x{}", r.width, r.height),
            fps_cell(r.fps_lo, r.fps_hi),
        ]);
    }
    for r in TABLE2_PROPOSED {
        t.row_owned(vec![
            r.reference.into(),
            r.device.into(),
            r.iterations.to_string(),
            format!("{}x{}", r.width, r.height),
            fps_cell(r.fps_lo, r.fps_hi),
        ]);
    }

    // Our rows: measured host software baseline + the cycle model of the
    // simulated accelerator (structural m=1 and calibrated m=3; see
    // DESIGN.md deviation 2).
    let model = ThroughputModel::new(AccelConfig::paper(2).expect("valid config"));
    let shapes: &[(usize, usize, &[u32])] = &[
        (128, 128, &[50, 100, 200]),
        (256, 256, &[50, 100, 200]),
        (512, 512, &[50, 100, 200]),
        (1024, 768, &[200]),
    ];
    for &(w, h, iters) in shapes {
        for &n in iters {
            let host = measure_host_chambolle(w, h, n);
            t.row_owned(vec![
                "ours".into(),
                "host CPU (sequential software)".into(),
                n.to_string(),
                format!("{w}x{h}"),
                format!("{:.1}", host.fps),
            ]);
            t.row_owned(vec![
                "ours".into(),
                "simulated FPGA @221 MHz (m=1)".into(),
                n.to_string(),
                format!("{w}x{h}"),
                format!("{:.1}", model.fps(w, h, n)),
            ]);
            t.row_owned(vec![
                "ours".into(),
                "simulated FPGA @221 MHz (m=3)".into(),
                n.to_string(),
                format!("{w}x{h}"),
                format!("{:.1}", model.fps_with_loop_decomposition(w, h, n, 3)),
            ]);
        }
    }
    println!("{}", t.render());

    // E3: speedup summary at 512x512.
    banner("Speedup summary at 512x512 (Section VI)");
    let mut s = TextTable::new(&[
        "iterations",
        "best GPU fps",
        "sim fps (m=1)",
        "sim fps (m=3)",
        "speedup (m=1)",
        "speedup (m=3)",
    ]);
    for &n in &[50u32, 100, 200] {
        if let Some(best) = best_baseline(512, 512, n) {
            let f1 = model.fps(512, 512, n);
            let f3 = model.fps_with_loop_decomposition(512, 512, n, 3);
            s.row_owned(vec![
                n.to_string(),
                format!("{:.1} ({})", best.fps_hi, best.device),
                format!("{f1:.1}"),
                format!("{f3:.1}"),
                format!("{:.1}x", f1 / best.fps_hi),
                format!("{:.1}x", f3 / best.fps_hi),
            ]);
        }
    }
    println!("{}", s.render());
    let worst_512 = TABLE2_BASELINES
        .iter()
        .filter(|r| r.width == 512)
        .map(|r| r.fps_lo)
        .fold(f64::INFINITY, f64::min);
    let best_512 = TABLE2_BASELINES
        .iter()
        .filter(|r| r.width == 512)
        .map(|r| r.fps_hi)
        .fold(0.0, f64::max);
    let f3_200 = model.fps_with_loop_decomposition(512, 512, 200, 3);
    let f3_100 = model.fps_with_loop_decomposition(512, 512, 100, 3);
    println!(
        "Paper speedup range: {:.1}x - {:.1}x; ours (m=3): {:.1}x - {:.1}x",
        PAPER_SPEEDUP_RANGE.0,
        PAPER_SPEEDUP_RANGE.1,
        f3_100 / best_512,
        f3_200 / worst_512,
    );
}

/// E4 — Figure 1: dependency cones of merged iterations.
fn fig1() {
    banner("Figure 1: data dependencies across merged iterations");
    let mut t = TextTable::new(&[
        "output group",
        "merged iters",
        "inputs at n",
        "overhead",
        "inputs/output",
    ]);
    for &(gw, gh, it) in &[
        (1usize, 1usize, 1u32), // Fig. 1.a: 7 inputs
        (2, 2, 1),              // Fig. 1.b: 14 inputs (3.5 per output)
        (1, 1, 2),              // Fig. 1.c: n+2 from n
        (2, 2, 2),
        (4, 4, 1),
        (4, 4, 2),
        (8, 8, 2),
        (16, 1, 1), // line vs square comparison
    ] {
        let s = cone_stats(gw, gh, it);
        t.row_owned(vec![
            format!("{gw}x{gh}"),
            it.to_string(),
            s.inputs.to_string(),
            s.overhead.to_string(),
            format!("{:.2}", s.inputs_per_output),
        ]);
    }
    println!("{}", t.render());
    println!("Paper: 7 inputs for one element (Fig. 1.a), 14 for a 2x2 group");
    println!("(3.5 per element, Fig. 1.b), and squared groups minimize overhead:");
    for area in [16usize, 64] {
        let best = best_group_shape(area, 1);
        println!(
            "  best shape of area {area}: {}x{} ({:.2} inputs/output)",
            best.group_w, best.group_h, best.inputs_per_output
        );
    }
}

/// E5 — sliding-window redundancy ("negligible redundant computation").
fn overhead() {
    banner("Sliding-window overhead vs merge factor (Sections III-B, VI)");
    let mut t = TextTable::new(&[
        "frame",
        "K",
        "windows/round",
        "redundant cells",
        "sim fps @221MHz, 200 iters",
    ]);
    for &(w, h) in &[(512usize, 512usize), (1024, 768)] {
        for k in [1u32, 2, 4, 8, 16] {
            let cfg = TileConfig::new(92, 88, k, 2).expect("valid config");
            let plan = TilePlan::new(w, h, cfg);
            let model = ThroughputModel::new(AccelConfig::paper(k).expect("valid config"));
            t.row_owned(vec![
                format!("{w}x{h}"),
                k.to_string(),
                plan.tiles().len().to_string(),
                format!("{:.1}%", 100.0 * plan.redundancy_fraction()),
                format!("{:.1}", model.fps(w, h, 200)),
            ]);
        }
    }
    println!("{}", t.render());
    println!("The overhead grows with K while the per-round fixed costs shrink;");
    println!("K=2 keeps the redundancy near 10% at negligible fps cost, matching");
    println!("the paper's \"negligible amount of redundant computation\".");
}

/// E6 — LUT square-root accuracy (Section V-C).
fn sqrt() {
    banner("LUT square root accuracy (Section V-C)");
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let lut = SqrtLut::new();
    let mut rng = StdRng::seed_from_u64(2011);
    // Uniform over the Q24.8 range: the magnitudes a PE-V actually sees.
    let uniform = sqrt_accuracy(&lut, (0..1_000_000).map(|_| rng.gen_range(1u32..1 << 24)));
    // Log-uniform: exercises small magnitudes, where the 8-bit block loses
    // precision — the regime behind the paper's "more than 90%" phrasing.
    let log_uniform = sqrt_accuracy(
        &lut,
        (0..1_000_000).map(|_| {
            let bits = rng.gen_range(1u32..=24);
            rng.gen_range(1u32 << (bits - 1)..1u32 << bits)
        }),
    );
    for (name, acc) in [("uniform", uniform), ("log-uniform", log_uniform)] {
        println!("{name} samples:        {}", acc.samples);
        println!(
            "  error < 1%:           {:.2}% of samples (paper: >90%)",
            100.0 * acc.fraction_below_1pct
        );
        println!(
            "  max relative error:   {:.2}%",
            100.0 * acc.max_relative_error
        );
        println!(
            "  mean relative error:  {:.3}%",
            100.0 * acc.mean_relative_error
        );
    }
    println!(
        "table: {} entries, ~{} FPGA LUTs per instance (paper: 256 entries, 70 LUTs)",
        SqrtLut::ENTRIES,
        SqrtLut::FPGA_LUTS
    );
}

/// E7 — TV-L1 runtime profile (Section I).
fn profile() {
    banner("TV-L1 profile: time spent in the Chambolle inner solver (Section I)");
    let frame = timing_frame(192, 144);
    let mut t = TextTable::new(&["inner iterations", "total", "in Chambolle", "fraction"]);
    for iters in [25u32, 50, 100, 200] {
        let params = TvL1Params::new(38.0, ChambolleParams::with_iterations(iters), 2, 3, 3)
            .expect("valid params");
        let solver = TvL1Solver::sequential(params);
        let (_, stats) = solver
            .flow(&frame, &frame)
            .expect("equal-size frames are valid");
        t.row_owned(vec![
            iters.to_string(),
            format!("{:.0} ms", stats.total_time.as_secs_f64() * 1e3),
            format!("{:.0} ms", stats.chambolle_time.as_secs_f64() * 1e3),
            format!("{:.0}%", 100.0 * stats.chambolle_fraction()),
        ]);
    }
    println!("{}", t.render());
    println!("Paper: \"approximately 90% of the execution time is spent on the");
    println!("Chambolle iterative technique\" at its (50-200) iteration counts.");
}

/// Design-choice ablations beyond the paper's tables (DESIGN.md).
fn ablate() {
    banner("Ablation A: square-root unit (Section V-C trade)");
    // Quality: fixed-point denoise vs the float solver, per sqrt unit.
    let v = timing_frame(96, 88);
    let iters = 60u32;
    let (u_float, _) = chambolle_denoise(&v, &ChambolleParams::with_iterations(iters));
    let mut t = TextTable::new(&[
        "sqrt unit",
        "max |u - float|",
        "latency",
        "sim fps 512x512@200",
        "LUTs",
        "FFs",
    ]);
    for kind in [SqrtKind::Lut, SqrtKind::NonRestoring] {
        let unit = kind.unit();
        let sol =
            fixed_chambolle_reference_with(&quantize_input(&v), &HwParams::standard(iters), &unit);
        let mut max_err = 0.0f32;
        for (x, y, &uf) in u_float.iter() {
            max_err = max_err.max((sol.u[(x, y)].to_f32() - uf).abs());
        }
        let config = AccelConfig {
            sqrt: kind,
            ..AccelConfig::default()
        };
        let model = ThroughputModel::new(config);
        let resources = match kind {
            SqrtKind::Lut => ResourceModel::paper(),
            SqrtKind::NonRestoring => ResourceModel::paper_with_non_restoring_sqrt(),
        }
        .usage();
        t.row_owned(vec![
            unit.name().into(),
            format!("{max_err:.4}"),
            format!("{} cycle(s)", unit.latency_cycles()),
            format!("{:.1}", model.fps(512, 512, 200)),
            resources.luts.to_string(),
            resources.flipflops.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Finding: the end-to-end error is dominated by the 9-bit dual");
    println!("quantization, so the exact iterative sqrt buys nothing — supporting");
    println!("the paper's claim that the LUT precision \"is still acceptable for");
    println!(
        "Chambolle\" while being 20x shallower and ~{} LUTs cheaper.",
        ResourceModel::paper_with_non_restoring_sqrt().usage().luts
            - ResourceModel::paper().usage().luts
    );

    banner("Ablation B: number of sliding windows (and the DSP remark)");
    let mut t = TextTable::new(&[
        "sliding windows",
        "multipliers",
        "sim fps 512x512@200",
        "DSPs",
        "LUTs",
        "fits XC5VLX110T?",
    ]);
    for n in [1usize, 2, 3] {
        for lut_mult in [false, true] {
            let config = AccelConfig {
                sliding_windows: n,
                ..AccelConfig::default()
            };
            let model = ThroughputModel::new(config);
            let mut res = if lut_mult {
                ResourceModel::paper_with_lut_multipliers()
            } else {
                ResourceModel::paper()
            };
            res.pe_arrays = 2 * n as u32;
            let usage = res.usage();
            let dev = DeviceCapacity::XC5VLX110T;
            let verdict = if usage.dsps > dev.dsps {
                "no (DSPs)"
            } else if usage.luts > dev.luts {
                "no (LUTs)"
            } else {
                "yes"
            };
            t.row_owned(vec![
                n.to_string(),
                if lut_mult {
                    "fabric".into()
                } else {
                    "DSP48E".to_string()
                },
                format!("{:.1}", model.fps(512, 512, 200)),
                usage.dsps.to_string(),
                usage.luts.to_string(),
                verdict.into(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Moving the PE-V multiplications into fabric (the paper's Section VI");
    println!("remark) frees the DSPs, but a third window then exhausts the LUTs:");
    println!("the binding constraint moves rather than disappears.");

    banner("Ablation D: PE-ladder depth (PE pairs per array)");
    let mut t = TextTable::new(&["ladder depth", "PEs total", "sim fps 512x512@200", "DSPs"]);
    for depth in [1usize, 2, 3, 5, 7] {
        let config = AccelConfig {
            array: ArrayConfig::paper_with_ladder(depth),
            ..AccelConfig::default()
        };
        let model = ThroughputModel::new(config);
        let mut res = ResourceModel::paper();
        res.pe_t_per_array = depth as u32;
        res.pe_v_per_array = depth as u32;
        t.row_owned(vec![
            depth.to_string(),
            res.pe_count().to_string(),
            format!("{:.1}", model.fps(512, 512, 200)),
            res.usage().dsps.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Depth 7 is the sweet spot the paper picked: the 8-BRAM interleave");
    println!("caps the ladder at 7 (the region also reads the row above), and");
    println!("throughput scales almost linearly up to that cap.");

    banner("Ablation C: off-chip transfer (the paper assumes pre-loaded frames)");
    let mut t = TextTable::new(&[
        "K",
        "fps (no transfer)",
        "fps @8 w/c serial",
        "fps @2 w/c serial",
        "fps @2 w/c dbl-buf",
    ]);
    for k in [2u32, 4, 8, 16] {
        let model = ThroughputModel::new(AccelConfig::paper(k).expect("valid config"));
        let fps = |cycles: u64| 221e6 / cycles as f64;
        t.row_owned(vec![
            k.to_string(),
            format!("{:.1}", fps(model.frame_cycles(512, 512, 200))),
            format!(
                "{:.1}",
                fps(model.frame_cycles_with_transfer(512, 512, 200, 8.0))
            ),
            format!(
                "{:.1}",
                fps(model.frame_cycles_with_transfer(512, 512, 200, 2.0))
            ),
            format!(
                "{:.1}",
                fps(model.sustained_frame_cycles_with_transfer(512, 512, 200, 2.0))
            ),
        ]);
    }
    println!("{}", t.render());
    println!("Per-round reloads make bandwidth significant at small K; larger K");
    println!("amortizes traffic, and double-buffered DMA hides whatever fits under");
    println!("the compute time — together they recover the pre-loaded frame rate.");
}

/// Duality-gap convergence: how many iterations the precision knob buys.
fn convergence() {
    banner("Convergence: duality gap vs iterations (the Niterations knob)");
    let v = timing_frame(128, 128).map(|&x| x as f64);
    let params = ChambolleParams::with_iterations(400);
    let report = chambolle_denoise_monitored(&v, &params, 50, 0.0);
    let mut t = TextTable::new(&["iterations", "primal energy", "duality gap", "gap/initial"]);
    let g0 = report.history.first().map(|p| p.gap).unwrap_or(1.0);
    for pt in &report.history {
        t.row_owned(vec![
            pt.iteration.to_string(),
            format!("{:.2}", pt.energy),
            format!("{:.3}", pt.gap),
            format!("{:.3}", pt.gap / g0),
        ]);
    }
    println!("{}", t.render());
    println!("The gap bounds the distance to optimality; Table II's 50/100/200");
    println!("iteration sweep corresponds to successive ~2x gap reductions.");
}

/// Flow accuracy on the synthetic suite (a dimension the paper leaves out).
fn accuracy() {
    use chambolle_core::{
        block_matching_flow, BlockMatchingParams, HornSchunck, HornSchunckParams, SequentialSolver,
        TvDenoiser,
    };
    use chambolle_hwsim::{AccelConfig, AccelDenoiser, ChambolleAccel};
    use chambolle_imaging::{average_angular_error, average_endpoint_error, FlowField};

    banner("Flow accuracy on the synthetic suite (AEE px / AAE deg)");
    let cases = standard_cases(96, 72);
    let params = TvL1Params::default();
    let tvl1_backends: Vec<(&str, Box<dyn TvDenoiser>)> = vec![
        ("TV-L1 (sequential f32)", Box::new(SequentialSolver::new())),
        (
            "TV-L1 (simulated FPGA)",
            Box::new(AccelDenoiser::new(ChambolleAccel::new(
                AccelConfig::default(),
            ))),
        ),
    ];
    let hs = HornSchunck::new(HornSchunckParams::default());
    let bm = BlockMatchingParams::new(8, 10).expect("valid params");

    let mut t = TextTable::new(&["case", "method", "AEE (px)", "AAE (deg)"]);
    let report = |case: &str, method: &str, flow: &FlowField, truth: &FlowField| {
        let aee = average_endpoint_error(flow, truth);
        let aae = average_angular_error(flow, truth).to_degrees();
        (
            case.to_string(),
            method.to_string(),
            format!("{aee:.3}"),
            format!("{aae:.2}"),
        )
    };
    for case in &cases {
        for (name, backend) in &tvl1_backends {
            let solver = TvL1Solver::with_backend(params, backend);
            let (flow, _) = solver
                .flow(&case.pair.i0, &case.pair.i1)
                .expect("suite frames are valid");
            let (a, b, c, d) = report(case.name, name, &flow, &case.pair.truth);
            t.row_owned(vec![a, b, c, d]);
        }
        let flow = hs
            .flow(&case.pair.i0, &case.pair.i1)
            .expect("suite frames are valid");
        let (a, b, c, d) = report(case.name, "Horn-Schunck [7]", &flow, &case.pair.truth);
        t.row_owned(vec![a, b, c, d]);
        let flow =
            block_matching_flow(&case.pair.i0, &case.pair.i1, &bm).expect("suite frames are valid");
        let (a, b, c, d) = report(case.name, "block matching 8x8", &flow, &case.pair.truth);
        t.row_owned(vec![a, b, c, d]);
    }
    println!("{}", t.render());
    println!("TV-L1 dominates the classical baselines (sub-pixel everywhere), and");
    println!("the fixed-point accelerator tracks the f32 solver to a fraction of");
    println!("a pixel — the 13/9-bit datapath does not limit flow quality.");
}

/// Loop decomposition in hardware: throughput vs. area of cascaded PEs
/// (the critical examination of the 99.1 fps headline).
fn decomposition() {
    use chambolle_core::{chambolle_iterate, compute_group_decomposed, DualField, GroupRect};
    use chambolle_imaging::{Grid, NoiseTexture, Scene};

    banner("Loop decomposition: measured merge cost and the cascade budget");

    // Measured evaluation counts of the direct n -> n+depth formula
    // (executable Fig. 1; see core::decomposition).
    let v: Grid<f32> = NoiseTexture::new(17).render(64, 64);
    let params = ChambolleParams::with_iterations(5);
    let mut p = DualField::zeros(64, 64);
    chambolle_iterate(&mut p, &v, &params, 3);
    let mut t = TextTable::new(&["depth m", "p-evals/output (7x7 group)", "term-evals/output"]);
    for depth in [1u32, 2, 3] {
        let group = GroupRect {
            x0: 28,
            y0: 28,
            w: 7,
            h: 7,
        };
        let (_, _, stats) = compute_group_decomposed(&p, &v, &params, depth, group);
        t.row_owned(vec![
            depth.to_string(),
            format!("{:.2}", stats.p_evals as f64 / 49.0),
            format!("{:.2}", stats.term_evals as f64 / 49.0),
        ]);
    }
    println!("{}", t.render());

    // Hardware realization: m cascaded (PE-T, PE-V) stages per ladder row
    // advance m iterations per pass at the same BRAM bandwidth.
    let mut t = TextTable::new(&[
        "cascade m",
        "PEs",
        "sim fps 512x512@200",
        "DSPs",
        "LUTs (fabric mults)",
        "fits XC5VLX110T?",
    ]);
    let model = ThroughputModel::new(AccelConfig::default());
    let dev = DeviceCapacity::XC5VLX110T;
    for m in [1u32, 2, 3] {
        let mut res = ResourceModel::paper_with_cascade(m);
        let dsp_usage = res.usage();
        res.lut_multipliers = true;
        let lut_usage = res.usage();
        let fits = if dsp_usage.dsps <= dev.dsps && dsp_usage.luts <= dev.luts {
            "yes (DSP mults)"
        } else if lut_usage.dsps <= dev.dsps && lut_usage.luts <= dev.luts {
            "yes (fabric mults)"
        } else {
            "no"
        };
        t.row_owned(vec![
            m.to_string(),
            res.pe_count().to_string(),
            format!("{:.1}", model.fps_with_loop_decomposition(512, 512, 200, m)),
            dsp_usage.dsps.to_string(),
            lut_usage.luts.to_string(),
            fits.into(),
        ]);
    }
    println!("{}", t.render());
    println!("Reproduction finding: matching the paper's 99.1 fps requires m = 3");
    println!("passes-per-iteration, but under this area model (calibrated to the");
    println!("paper's own Table I) a cascade of depth 2+ exceeds the XC5VLX110T —");
    println!("with DSP multipliers it runs out of DSP48Es, with fabric multipliers");
    println!("out of LUTs. The published Table I area is only consistent with the");
    println!("m = 1 structure (35.7 fps); the 99.1 fps headline and the 62-DSP");
    println!("area cannot both hold under our model. See EXPERIMENTS.md E2.");
}

/// E8 — architectural invariants (Sections IV, V-B).
fn arch() {
    banner("Architecture invariants (Sections IV and V-B)");
    let mut array = PeArray::new(ArrayConfig::paper());
    let v = timing_frame(92, 88);
    let run = array.process_window(&chambolle_hwsim::quantize_input(&v), &HwParams::standard(1));
    let s = run.stats;
    println!("window 92x88, 1 iteration + u-sweep:");
    println!("  cycles:               {}", s.cycles);
    println!(
        "  passes:               {} (13 regions + flush + 13 u-sweep)",
        s.passes
    );
    println!("  element latency:      18 cycles (1 control + 1 BRAM + 1 rotator + 15 PE)");
    println!(
        "  operand vectors/elem: {:.3} (15/7 = {:.3} with reuse; 4.0 without)",
        s.operand_vectors_per_element(),
        15.0 / 7.0
    );
    println!(
        "  data BRAM accesses:   {} reads, {} writes",
        s.data_reads, s.data_writes
    );
    println!(
        "  BRAM-Term accesses:   {} reads, {} writes",
        s.term_reads, s.term_writes
    );
    println!(
        "  BRAMs per accelerator: {} (4 arrays x (8 data + 1 Term)); paper: 36",
        ResourceModel::paper().usage().brams
    );
    println!(
        "  BRAM addresses used:  {} per data BRAM (88/8 rows x 92 cols); paper: 1012",
        ArrayConfig::paper().bram_capacity()
    );
}
