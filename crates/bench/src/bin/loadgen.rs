//! Load generator for the `chambolle-service` request layer.
//!
//! Drives the in-process service with open-loop arrivals (requests are
//! submitted on a fixed schedule, regardless of completions) and compares
//! the micro-batching dispatcher against a serialize-per-request baseline
//! at the same pool size, then writes a schema-stable `BENCH_pr4.json`
//! with throughput, p50/p99 latency, shed rate, and batch-size stats.
//!
//! ```text
//! cargo run --release -p chambolle-bench --bin loadgen              # full run
//! cargo run --release -p chambolle-bench --bin loadgen -- --smoke  # CI smoke
//! cargo run --release -p chambolle-bench --bin loadgen -- --out x.json
//! cargo run --release -p chambolle-bench --bin loadgen -- --chaos  # chaos soak
//! ```
//!
//! Default mode: three phases, all on 4 worker threads:
//!
//! 1. `baseline` — `max_batch = 1` (every request dispatched alone);
//! 2. `batched` — `max_batch = 8` (compatible requests coalesce); the run
//!    asserts this phase's throughput strictly exceeds the baseline's;
//! 3. `mixed_overload` — a small queue under the same arrival schedule with
//!    mixed priorities and a tight deadline on every 10th request, so
//!    admission control sheds load and deadlines fire.
//!
//! Every phase asserts the zero-lost-response invariant: each accepted
//! request resolves to exactly one response.
//!
//! `--chaos` switches to the resilience soak: a fault-injected TCP server
//! (seeded resets, payload corruption, and one scripted post-commit
//! server panic) driven by [`ResilientClient`]. The run asserts 100%
//! completion with zero exhausted retry budgets and writes a schema-stable
//! `BENCH_pr6.json` with retry, breaker, and chaos-fault counters.

use std::env;
use std::time::{Duration, Instant};

use chambolle_bench::workloads::timing_frame;
use chambolle_core::ChambolleParams;
use chambolle_imaging::Image;
use chambolle_service::{
    BreakerPolicy, ChaosConfig, Priority, RejectReason, Request, ResilientClient, ResilientConfig,
    RetryPolicy, Service, ServiceConfig, ServiceError, TcpServer, Ticket, Workload,
};
use chambolle_telemetry::json::JsonValue;
use chambolle_telemetry::{names, Telemetry};

/// Schema identifier checked by the smoke validation and downstream tools.
const SCHEMA: &str = "chambolle.bench.v1";
/// Benchmark identifier of the batching phases within the schema.
const BENCH: &str = "pr4";
/// Benchmark identifier of the chaos soak within the schema.
const CHAOS_BENCH: &str = "pr6";
/// Pool size for every phase.
const THREADS: usize = 4;
/// Fixed injector/jitter seed: the chaos soak rolls seeded dice, not a
/// fuzzer's — fault volume tracks traffic, and the scripted panic is exact.
const CHAOS_SEED: u64 = 0xC4A0_5BE7_7E12;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Args {
    smoke: bool,
    chaos: bool,
    connect_timeout: Duration,
    out: Option<String>,
}

impl Args {
    fn out_path(&self) -> String {
        self.out.clone().unwrap_or_else(|| {
            if self.chaos {
                "BENCH_pr6.json".to_string()
            } else {
                "BENCH_pr4.json".to_string()
            }
        })
    }
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        smoke: false,
        chaos: false,
        connect_timeout: chambolle_service::DEFAULT_CONNECT_TIMEOUT,
        out: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--chaos" => parsed.chaos = true,
            "--out" => {
                let value = iter.next().ok_or("--out requires a path")?;
                parsed.out = Some(value.clone());
            }
            "--connect-timeout-ms" => {
                let value = iter.next().ok_or("--connect-timeout-ms requires a value")?;
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("--connect-timeout-ms: not a number: {value:?}"))?;
                if ms == 0 {
                    return Err("--connect-timeout-ms must be positive".into());
                }
                parsed.connect_timeout = Duration::from_millis(ms);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(parsed)
}

struct PhaseSpec<'a> {
    name: &'a str,
    max_batch: usize,
    queue_capacity: usize,
    /// Every n-th request is interactive (0 = none).
    interactive_every: usize,
    /// Every n-th request carries `deadline` (0 = none).
    deadline_every: usize,
    deadline: Duration,
}

struct PhaseResult {
    name: String,
    requests: usize,
    accepted: u64,
    rejected_full: u64,
    completed: u64,
    deadline_exceeded: u64,
    cancelled: u64,
    failed: u64,
    wall_s: f64,
    throughput_rps: f64,
    shed_rate: f64,
    p50_us: u64,
    p99_us: u64,
    mean_batch_size: f64,
    max_batch_size: usize,
    batches: u64,
}

impl PhaseResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("name".into(), self.name.as_str().into()),
            ("requests".into(), (self.requests as u64).into()),
            ("accepted".into(), self.accepted.into()),
            ("rejected_full".into(), self.rejected_full.into()),
            ("completed".into(), self.completed.into()),
            ("deadline_exceeded".into(), self.deadline_exceeded.into()),
            ("cancelled".into(), self.cancelled.into()),
            ("failed".into(), self.failed.into()),
            ("wall_s".into(), self.wall_s.into()),
            ("throughput_rps".into(), self.throughput_rps.into()),
            ("shed_rate".into(), self.shed_rate.into()),
            ("p50_us".into(), self.p50_us.into()),
            ("p99_us".into(), self.p99_us.into()),
            ("mean_batch_size".into(), self.mean_batch_size.into()),
            ("max_batch_size".into(), (self.max_batch_size as u64).into()),
            ("batches".into(), self.batches.into()),
        ])
    }
}

/// Nearest-rank percentile of an unsorted sample set (`p` in 0..=100).
fn percentile_us(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn run_phase(
    spec: &PhaseSpec<'_>,
    n: usize,
    interval: Duration,
    input: &Image,
    params: &ChambolleParams,
) -> PhaseResult {
    let config = ServiceConfig::new(THREADS, spec.queue_capacity).with_max_batch(spec.max_batch);
    let service = Service::spawn(config);

    // Open loop: request i is submitted at start + i*interval, whether or
    // not earlier requests have finished. A full queue sheds the request;
    // the schedule keeps going.
    let start = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(n);
    for i in 0..n {
        let due = interval * i as u32;
        let now = start.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        let mut request = Request::new(Workload::Denoise {
            input: input.clone(),
            params: *params,
        });
        if spec.interactive_every > 0 && i % spec.interactive_every == 0 {
            request = request.with_priority(Priority::Interactive);
        }
        if spec.deadline_every > 0 && i % spec.deadline_every == 0 {
            request = request.with_deadline(spec.deadline);
        }
        match service.handle().submit(request) {
            Ok(ticket) => tickets.push(ticket),
            Err(RejectReason::QueueFull { .. }) => {} // counted by the service
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }

    // Drain: every accepted ticket must resolve.
    let mut latencies: Vec<u64> = Vec::with_capacity(tickets.len());
    let mut batch_sizes: Vec<usize> = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        match ticket.wait() {
            Ok(done) => {
                latencies.push(done.total_us);
                batch_sizes.push(done.batch_size);
            }
            Err(ServiceError::DeadlineExceeded | ServiceError::Cancelled) => {}
            Err(other) => panic!("request lost: {other}"),
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    let summary = service.shutdown();
    let stats = summary.stats;
    assert_eq!(
        stats.in_flight(),
        0,
        "phase {}: every accepted request must be responded to",
        spec.name
    );
    assert_eq!(
        stats.completed as usize,
        latencies.len(),
        "phase {}: completion count must match collected responses",
        spec.name
    );

    let mean_batch_size = if batch_sizes.is_empty() {
        0.0
    } else {
        batch_sizes.iter().sum::<usize>() as f64 / batch_sizes.len() as f64
    };
    let result = PhaseResult {
        name: spec.name.into(),
        requests: n,
        accepted: stats.accepted,
        rejected_full: stats.rejected_full,
        completed: stats.completed,
        deadline_exceeded: stats.deadline_exceeded,
        cancelled: stats.cancelled,
        failed: stats.failed,
        wall_s,
        throughput_rps: stats.completed as f64 / wall_s,
        shed_rate: stats.rejected_full as f64 / n as f64,
        p50_us: percentile_us(&mut latencies, 50.0),
        p99_us: percentile_us(&mut latencies, 99.0),
        mean_batch_size,
        max_batch_size: batch_sizes.iter().copied().max().unwrap_or(0),
        batches: stats.batches,
    };
    eprintln!(
        "  {:<16} {:>4} reqs: {:>7.1} req/s, p50 {:>7} us, p99 {:>8} us, shed {:>4.1}%, mean batch {:.2} (max {})",
        result.name,
        result.requests,
        result.throughput_rps,
        result.p50_us,
        result.p99_us,
        100.0 * result.shed_rate,
        result.mean_batch_size,
        result.max_batch_size,
    );
    result
}

fn main() {
    let raw: Vec<String> = env::args().skip(1).collect();
    let args = parse_args(&raw).unwrap_or_else(|e| {
        eprintln!("loadgen: {e}");
        eprintln!("usage: loadgen [--smoke] [--chaos] [--connect-timeout-ms <ms>] [--out <path>]");
        std::process::exit(2);
    });
    let out_path = args.out_path();

    type Validator = fn(&str) -> Result<(), String>;
    let (text, check): (String, Validator) = if args.chaos {
        (run_chaos_bench(&args).to_string_pretty(), validate_chaos)
    } else {
        (run_batching_bench(args.smoke).to_string_pretty(), validate)
    };
    check(&text).unwrap_or_else(|e| {
        eprintln!("emitted report failed schema validation: {e}");
        std::process::exit(1);
    });
    std::fs::write(&out_path, format!("{text}\n")).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
    println!("{text}");
}

/// The chaos soak: a fault-injected TCP front-end driven by the resilient
/// client. Asserts 100% completion with zero exhausted budgets and returns
/// the `pr6` report.
fn run_chaos_bench(args: &Args) -> JsonValue {
    let (n, size, iters) = if args.smoke {
        (60usize, 24usize, 12u32)
    } else {
        (200, 48, 30)
    };
    eprintln!(
        "loadgen: chaos soak, {n} denoise requests of {size}x{size} @{iters} iters ({} mode)",
        mode(args.smoke)
    );

    let input: Image = timing_frame(size, size);
    let params = ChambolleParams::with_iterations(iters);
    let server_telemetry = Telemetry::null();
    let client_telemetry = Telemetry::null();
    let service =
        Service::spawn_with_telemetry(ServiceConfig::new(2, 32), server_telemetry.clone());
    let chaos = ChaosConfig::quiet(CHAOS_SEED)
        .with_resets(0.03)
        .with_corruption(0.03)
        .with_panic_on_request(5);
    let server = TcpServer::bind_with_chaos(service.handle().clone(), "127.0.0.1:0", chaos)
        .expect("bind chaos server");

    let config = ResilientConfig {
        connect_timeout: args.connect_timeout,
        io_timeout: Duration::from_secs(10),
        retry: RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
        },
        breaker: BreakerPolicy {
            failure_threshold: 1,
            cooldown: Duration::from_millis(10),
        },
        jitter_seed: CHAOS_SEED,
    };
    let mut client = ResilientClient::connect_with(server.local_addr(), config)
        .expect("connect resilient client")
        .with_telemetry(client_telemetry.clone());

    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = Instant::now();
        let outcome = client
            .denoise(&input, &params, Priority::Batch, None)
            .expect("chaos soak: every request must complete");
        assert_eq!(outcome.output.len(), input.len());
        latencies.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    let wall_s = start.elapsed().as_secs_f64();
    let stats = client.stats();
    assert_eq!(stats.requests, n as u64, "100% completion under chaos");
    assert_eq!(stats.exhausted, 0, "no retry budget may exhaust");

    server.shutdown();
    let summary = service.shutdown();
    assert_eq!(summary.stats.in_flight(), 0);

    let client_snap = client_telemetry.snapshot();
    let server_snap = server_telemetry.snapshot();
    let counter = |snap: &chambolle_telemetry::metrics::Metrics, name: &str| -> u64 {
        snap.counter(name).unwrap_or(0)
    };
    let faults = [
        names::SERVICE_CHAOS_RESETS,
        names::SERVICE_CHAOS_CORRUPTIONS,
        names::SERVICE_CHAOS_STALLS,
        names::SERVICE_CHAOS_PARTIAL_WRITES,
        names::SERVICE_CHAOS_SERVER_PANICS,
    ]
    .iter()
    .map(|name| counter(&server_snap, name))
    .sum::<u64>();
    let retry_rate = if stats.attempts == 0 {
        0.0
    } else {
        stats.retries as f64 / stats.attempts as f64
    };
    eprintln!(
        "  {n} reqs in {wall_s:.2}s: {} attempts ({} retries, {:.1}% retry rate), \
         {} recovered, {} breaker opens, {faults} injected faults",
        stats.attempts,
        stats.retries,
        100.0 * retry_rate,
        stats.recovered,
        stats.breaker_opened,
    );

    JsonValue::Object(vec![
        ("schema".into(), SCHEMA.into()),
        ("bench".into(), CHAOS_BENCH.into()),
        ("mode".into(), mode(args.smoke).into()),
        ("seed".into(), CHAOS_SEED.into()),
        ("requests".into(), (n as u64).into()),
        ("completed".into(), stats.requests.into()),
        ("attempts".into(), stats.attempts.into()),
        ("retries".into(), stats.retries.into()),
        ("retry_rate".into(), retry_rate.into()),
        ("recovered".into(), stats.recovered.into()),
        ("exhausted".into(), stats.exhausted.into()),
        ("wall_s".into(), wall_s.into()),
        (
            "p50_us".into(),
            percentile_us(&mut latencies.clone(), 50.0).into(),
        ),
        ("p99_us".into(), percentile_us(&mut latencies, 99.0).into()),
        (
            "breaker".into(),
            JsonValue::Object(vec![
                (
                    "opened".into(),
                    counter(&client_snap, names::SERVICE_BREAKER_OPENED).into(),
                ),
                (
                    "half_open".into(),
                    counter(&client_snap, names::SERVICE_BREAKER_HALF_OPEN).into(),
                ),
                (
                    "closed".into(),
                    counter(&client_snap, names::SERVICE_BREAKER_CLOSED).into(),
                ),
            ]),
        ),
        (
            "chaos".into(),
            JsonValue::Object(vec![
                (
                    "resets".into(),
                    counter(&server_snap, names::SERVICE_CHAOS_RESETS).into(),
                ),
                (
                    "corruptions".into(),
                    counter(&server_snap, names::SERVICE_CHAOS_CORRUPTIONS).into(),
                ),
                (
                    "stalls".into(),
                    counter(&server_snap, names::SERVICE_CHAOS_STALLS).into(),
                ),
                (
                    "partial_writes".into(),
                    counter(&server_snap, names::SERVICE_CHAOS_PARTIAL_WRITES).into(),
                ),
                (
                    "server_panics".into(),
                    counter(&server_snap, names::SERVICE_CHAOS_SERVER_PANICS).into(),
                ),
                ("faults_total".into(), faults.into()),
            ]),
        ),
        (
            "idempotent_hits".into(),
            counter(&server_snap, names::SERVICE_IDEMPOTENT_HITS).into(),
        ),
    ])
}

/// The original three-phase batching benchmark (`pr4` report).
fn run_batching_bench(smoke: bool) -> JsonValue {
    // Smoke keeps CI fast (200 mixed-priority requests); the full run uses
    // a heavier frame so solve time dominates dispatch overhead.
    let (n, size, iters, interval) = if smoke {
        (200usize, 48usize, 30u32, Duration::from_micros(300))
    } else {
        (400, 96, 60, Duration::from_millis(1))
    };
    let input: Image = timing_frame(size, size);
    let params = ChambolleParams::with_iterations(iters);
    eprintln!(
        "loadgen: {n} denoise requests of {size}x{size} @{iters} iters, {THREADS} threads ({} mode)",
        mode(smoke)
    );

    // Best-of-2 on the timed phases damps scheduler noise (the margin on a
    // core-starved machine comes from dispatch amortization alone).
    let best_of = |spec: &PhaseSpec<'_>| -> PhaseResult {
        let first = run_phase(spec, n, interval, &input, &params);
        let second = run_phase(spec, n, interval, &input, &params);
        if second.throughput_rps > first.throughput_rps {
            second
        } else {
            first
        }
    };
    let baseline = best_of(&PhaseSpec {
        name: "baseline",
        max_batch: 1,
        queue_capacity: n + 8,
        interactive_every: 4,
        deadline_every: 0,
        deadline: Duration::ZERO,
    });
    let batched = best_of(&PhaseSpec {
        name: "batched",
        max_batch: 8,
        queue_capacity: n + 8,
        interactive_every: 4,
        deadline_every: 0,
        deadline: Duration::ZERO,
    });
    let overload = run_phase(
        &PhaseSpec {
            name: "mixed_overload",
            max_batch: 8,
            queue_capacity: 16,
            interactive_every: 4,
            deadline_every: 10,
            deadline: Duration::from_millis(25),
        },
        n,
        interval,
        &input,
        &params,
    );

    let speedup = batched.throughput_rps / baseline.throughput_rps;
    eprintln!(
        "  batching speedup: {speedup:.2}x ({:.1} -> {:.1} req/s)",
        baseline.throughput_rps, batched.throughput_rps
    );
    // The strictly-higher-throughput criterion needs actual parallelism: on
    // a single-CPU host a 4-thread batch cannot beat serial execution, so
    // the comparison is recorded but not enforced there.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores > 1 {
        assert!(
            batched.throughput_rps > baseline.throughput_rps,
            "batching must sustain strictly higher throughput than serialize-per-request \
             ({:.1} vs {:.1} req/s on {cores} cores)",
            batched.throughput_rps,
            baseline.throughput_rps
        );
    } else {
        eprintln!("  (single-CPU host: throughput comparison recorded, not enforced)");
    }
    assert!(
        batched.max_batch_size > 1,
        "the batched phase must actually coalesce requests"
    );

    JsonValue::Object(vec![
        ("schema".into(), SCHEMA.into()),
        ("bench".into(), BENCH.into()),
        ("mode".into(), mode(smoke).into()),
        ("threads".into(), (THREADS as u64).into()),
        (
            "phases".into(),
            JsonValue::Array(vec![
                baseline.to_json(),
                batched.to_json(),
                overload.to_json(),
            ]),
        ),
        (
            "comparison".into(),
            JsonValue::Object(vec![
                ("baseline_rps".into(), baseline.throughput_rps.into()),
                ("batched_rps".into(), batched.throughput_rps.into()),
                ("speedup".into(), speedup.into()),
                ("baseline_p99_us".into(), baseline.p99_us.into()),
                ("batched_p99_us".into(), batched.p99_us.into()),
            ]),
        ),
    ])
}

fn mode(smoke: bool) -> &'static str {
    if smoke {
        "smoke"
    } else {
        "full"
    }
}

/// Checks the emitted document against the stable shape downstream tooling
/// relies on: schema/bench identifiers, all three phases with every field,
/// and the comparison block.
fn validate(text: &str) -> Result<(), String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
        return Err(format!("schema must be {SCHEMA:?}"));
    }
    if doc.get("bench").and_then(JsonValue::as_str) != Some(BENCH) {
        return Err(format!("bench must be {BENCH:?}"));
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("full") | Some("smoke") => {}
        other => return Err(format!("mode must be full|smoke, got {other:?}")),
    }
    let phases = doc
        .get("phases")
        .and_then(JsonValue::as_array)
        .ok_or("phases must be an array")?;
    if phases.len() != 3 {
        return Err(format!("expected 3 phases, got {}", phases.len()));
    }
    for phase in phases {
        for field in [
            "name",
            "requests",
            "accepted",
            "rejected_full",
            "completed",
            "deadline_exceeded",
            "wall_s",
            "throughput_rps",
            "shed_rate",
            "p50_us",
            "p99_us",
            "mean_batch_size",
            "max_batch_size",
            "batches",
        ] {
            if phase.get(field).is_none() {
                return Err(format!("phase entry missing {field:?}"));
            }
        }
    }
    for field in [
        "baseline_rps",
        "batched_rps",
        "speedup",
        "baseline_p99_us",
        "batched_p99_us",
    ] {
        if doc
            .get_path(&format!("comparison.{field}"))
            .and_then(JsonValue::as_f64)
            .is_none()
        {
            return Err(format!("comparison block missing {field:?}"));
        }
    }
    Ok(())
}

/// Checks the chaos-soak document: schema/bench identifiers, every counter
/// field, and the hard resilience invariants (100% completion, zero
/// exhausted retry budgets).
fn validate_chaos(text: &str) -> Result<(), String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
        return Err(format!("schema must be {SCHEMA:?}"));
    }
    if doc.get("bench").and_then(JsonValue::as_str) != Some(CHAOS_BENCH) {
        return Err(format!("bench must be {CHAOS_BENCH:?}"));
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("full") | Some("smoke") => {}
        other => return Err(format!("mode must be full|smoke, got {other:?}")),
    }
    for field in [
        "seed",
        "requests",
        "completed",
        "attempts",
        "retries",
        "retry_rate",
        "recovered",
        "exhausted",
        "wall_s",
        "p50_us",
        "p99_us",
        "idempotent_hits",
    ] {
        if doc.get(field).is_none() {
            return Err(format!("chaos report missing {field:?}"));
        }
    }
    for field in ["breaker.opened", "breaker.half_open", "breaker.closed"] {
        if doc.get_path(field).is_none() {
            return Err(format!("chaos report missing {field:?}"));
        }
    }
    for field in [
        "chaos.resets",
        "chaos.corruptions",
        "chaos.stalls",
        "chaos.partial_writes",
        "chaos.server_panics",
        "chaos.faults_total",
    ] {
        if doc.get_path(field).is_none() {
            return Err(format!("chaos report missing {field:?}"));
        }
    }
    let requests = doc.get("requests").and_then(JsonValue::as_f64);
    let completed = doc.get("completed").and_then(JsonValue::as_f64);
    if requests.is_none() || requests != completed {
        return Err("chaos soak must complete 100% of requests".into());
    }
    if doc.get("exhausted").and_then(JsonValue::as_f64) != Some(0.0) {
        return Err("chaos soak must not exhaust any retry budget".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn defaults_are_full_batching_mode() {
        let args = parse_args(&[]).unwrap();
        assert!(!args.smoke);
        assert!(!args.chaos);
        assert_eq!(
            args.connect_timeout,
            chambolle_service::DEFAULT_CONNECT_TIMEOUT
        );
        assert_eq!(args.out_path(), "BENCH_pr4.json");
    }

    #[test]
    fn chaos_flag_switches_bench_and_default_output() {
        let args = parse_args(&strings(&["--chaos", "--smoke"])).unwrap();
        assert!(args.chaos);
        assert!(args.smoke);
        assert_eq!(args.out_path(), "BENCH_pr6.json");
    }

    #[test]
    fn connect_timeout_flag_parses_milliseconds() {
        let args = parse_args(&strings(&["--connect-timeout-ms", "250"])).unwrap();
        assert_eq!(args.connect_timeout, Duration::from_millis(250));
        assert!(parse_args(&strings(&["--connect-timeout-ms"])).is_err());
        assert!(parse_args(&strings(&["--connect-timeout-ms", "soon"])).is_err());
        assert!(parse_args(&strings(&["--connect-timeout-ms", "0"])).is_err());
    }

    #[test]
    fn out_flag_overrides_the_default_path() {
        let args = parse_args(&strings(&["--chaos", "--out", "custom.json"])).unwrap();
        assert_eq!(args.out_path(), "custom.json");
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse_args(&strings(&["--frobnicate"])).is_err());
    }
}
