//! Load generator for the `chambolle-service` request layer.
//!
//! Drives the in-process service with open-loop arrivals (requests are
//! submitted on a fixed schedule, regardless of completions) and compares
//! the micro-batching dispatcher against a serialize-per-request baseline
//! at the same pool size, then writes a schema-stable `BENCH_pr4.json`
//! with throughput, p50/p99 latency, shed rate, and batch-size stats.
//!
//! ```text
//! cargo run --release -p chambolle-bench --bin loadgen              # full run
//! cargo run --release -p chambolle-bench --bin loadgen -- --smoke  # CI smoke
//! cargo run --release -p chambolle-bench --bin loadgen -- --out x.json
//! cargo run --release -p chambolle-bench --bin loadgen -- --chaos  # chaos soak
//! cargo run --release -p chambolle-bench --bin loadgen -- --chaos --scrape-interval-ms 100
//! cargo run --release -p chambolle-bench --bin loadgen -- --profile chambolle.profile.json
//! ```
//!
//! Default mode: three phases, all on 4 worker threads:
//!
//! 1. `baseline` — `max_batch = 1` (every request dispatched alone);
//! 2. `batched` — `max_batch = 8` (compatible requests coalesce); the run
//!    asserts this phase's throughput strictly exceeds the baseline's;
//! 3. `mixed_overload` — a small queue under the same arrival schedule with
//!    mixed priorities and a tight deadline on every 10th request, so
//!    admission control sheds load and deadlines fire.
//!
//! Every phase asserts the zero-lost-response invariant: each accepted
//! request resolves to exactly one response.
//!
//! `--chaos` switches to the resilience soak: a fault-injected TCP server
//! (seeded resets, payload corruption, and one scripted post-commit
//! server panic) driven by [`ResilientClient`]. While the soak runs, a
//! scraper thread polls the live `MetricsSnapshot` wire request at
//! `--scrape-interval-ms` cadence through a clean ops listener on the same
//! service, and the resulting time series (queue depth, rolling p50/p99,
//! SLO burn, brownout state) is embedded in the report. The run asserts
//! 100% completion with zero exhausted retry budgets and writes a
//! schema-stable `BENCH_pr7.json` with retry, breaker, chaos-fault, and
//! scrape data.

use std::env;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chambolle_bench::loadreport::{
    parse_args, validate_batching, validate_chaos, validate_metrics_snapshot, Args, BENCH_BATCHING,
    BENCH_CHAOS, SCHEMA,
};
use chambolle_bench::workloads::timing_frame;
use chambolle_core::ChambolleParams;
use chambolle_imaging::Image;
use chambolle_service::{
    BreakerPolicy, ChaosConfig, Priority, RejectReason, Request, ResilientClient, ResilientConfig,
    RetryPolicy, Service, ServiceClient, ServiceConfig, ServiceError, SloObjective, TcpServer,
    Ticket, Workload,
};
use chambolle_telemetry::json::JsonValue;
use chambolle_telemetry::{names, Telemetry};

/// Pool size for every phase.
const THREADS: usize = 4;
/// Fixed injector/jitter seed: the chaos soak rolls seeded dice, not a
/// fuzzer's — fault volume tracks traffic, and the scripted panic is exact.
const CHAOS_SEED: u64 = 0xC4A0_5BE7_7E12;

struct PhaseSpec<'a> {
    name: &'a str,
    max_batch: usize,
    queue_capacity: usize,
    /// Every n-th request is interactive (0 = none).
    interactive_every: usize,
    /// Every n-th request carries `deadline` (0 = none).
    deadline_every: usize,
    deadline: Duration,
}

struct PhaseResult {
    name: String,
    requests: usize,
    accepted: u64,
    rejected_full: u64,
    completed: u64,
    deadline_exceeded: u64,
    cancelled: u64,
    failed: u64,
    wall_s: f64,
    throughput_rps: f64,
    shed_rate: f64,
    p50_us: u64,
    p99_us: u64,
    mean_batch_size: f64,
    max_batch_size: usize,
    batches: u64,
}

impl PhaseResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("name".into(), self.name.as_str().into()),
            ("requests".into(), (self.requests as u64).into()),
            ("accepted".into(), self.accepted.into()),
            ("rejected_full".into(), self.rejected_full.into()),
            ("completed".into(), self.completed.into()),
            ("deadline_exceeded".into(), self.deadline_exceeded.into()),
            ("cancelled".into(), self.cancelled.into()),
            ("failed".into(), self.failed.into()),
            ("wall_s".into(), self.wall_s.into()),
            ("throughput_rps".into(), self.throughput_rps.into()),
            ("shed_rate".into(), self.shed_rate.into()),
            ("p50_us".into(), self.p50_us.into()),
            ("p99_us".into(), self.p99_us.into()),
            ("mean_batch_size".into(), self.mean_batch_size.into()),
            ("max_batch_size".into(), (self.max_batch_size as u64).into()),
            ("batches".into(), self.batches.into()),
        ])
    }
}

/// Nearest-rank percentile of an unsorted sample set (`p` in 0..=100).
fn percentile_us(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn run_phase(
    spec: &PhaseSpec<'_>,
    n: usize,
    interval: Duration,
    input: &Image,
    params: &ChambolleParams,
) -> PhaseResult {
    let config = ServiceConfig::new(THREADS, spec.queue_capacity).with_max_batch(spec.max_batch);
    let service = Service::spawn(config);

    // Open loop: request i is submitted at start + i*interval, whether or
    // not earlier requests have finished. A full queue sheds the request;
    // the schedule keeps going.
    let start = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(n);
    for i in 0..n {
        let due = interval * i as u32;
        let now = start.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        let mut request = Request::new(Workload::Denoise {
            input: input.clone(),
            params: *params,
        });
        if spec.interactive_every > 0 && i % spec.interactive_every == 0 {
            request = request.with_priority(Priority::Interactive);
        }
        if spec.deadline_every > 0 && i % spec.deadline_every == 0 {
            request = request.with_deadline(spec.deadline);
        }
        match service.handle().submit(request) {
            Ok(ticket) => tickets.push(ticket),
            Err(RejectReason::QueueFull { .. }) => {} // counted by the service
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }

    // Drain: every accepted ticket must resolve.
    let mut latencies: Vec<u64> = Vec::with_capacity(tickets.len());
    let mut batch_sizes: Vec<usize> = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        match ticket.wait() {
            Ok(done) => {
                latencies.push(done.total_us);
                batch_sizes.push(done.batch_size);
            }
            Err(ServiceError::DeadlineExceeded | ServiceError::Cancelled) => {}
            Err(other) => panic!("request lost: {other}"),
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    let summary = service.shutdown();
    let stats = summary.stats;
    assert_eq!(
        stats.in_flight(),
        0,
        "phase {}: every accepted request must be responded to",
        spec.name
    );
    assert_eq!(
        stats.completed as usize,
        latencies.len(),
        "phase {}: completion count must match collected responses",
        spec.name
    );

    let mean_batch_size = if batch_sizes.is_empty() {
        0.0
    } else {
        batch_sizes.iter().sum::<usize>() as f64 / batch_sizes.len() as f64
    };
    let result = PhaseResult {
        name: spec.name.into(),
        requests: n,
        accepted: stats.accepted,
        rejected_full: stats.rejected_full,
        completed: stats.completed,
        deadline_exceeded: stats.deadline_exceeded,
        cancelled: stats.cancelled,
        failed: stats.failed,
        wall_s,
        throughput_rps: stats.completed as f64 / wall_s,
        shed_rate: stats.rejected_full as f64 / n as f64,
        p50_us: percentile_us(&mut latencies, 50.0),
        p99_us: percentile_us(&mut latencies, 99.0),
        mean_batch_size,
        max_batch_size: batch_sizes.iter().copied().max().unwrap_or(0),
        batches: stats.batches,
    };
    eprintln!(
        "  {:<16} {:>4} reqs: {:>7.1} req/s, p50 {:>7} us, p99 {:>8} us, shed {:>4.1}%, mean batch {:.2} (max {})",
        result.name,
        result.requests,
        result.throughput_rps,
        result.p50_us,
        result.p99_us,
        100.0 * result.shed_rate,
        result.mean_batch_size,
        result.max_batch_size,
    );
    result
}

fn main() {
    let raw: Vec<String> = env::args().skip(1).collect();
    let args = parse_args(&raw).unwrap_or_else(|e| {
        eprintln!("loadgen: {e}");
        eprintln!(
            "usage: loadgen [--smoke] [--chaos] [--connect-timeout-ms <ms>] \
             [--scrape-interval-ms <ms>] [--out <path>] [--profile <path>]"
        );
        eprintln!(
            "  --profile <path> loads a chambolle.tuning_profile.v2 (written by the tune \
             bin) before the phases run; takes precedence over CHAMBOLLE_PROFILE, and an \
             invalid profile falls back to defaults with a warning"
        );
        std::process::exit(2);
    });
    if let Some(path) = &args.profile {
        let (tunables, err) = chambolle_tune::load_with_fallback(Some(path), &Telemetry::null());
        if let Some(err) = err {
            eprintln!("loadgen: warning: tuning profile {path:?} ignored: {err}");
        }
        let _ = chambolle_tune::install(tunables);
    }
    let out_path = args.out_path();

    type Validator = fn(&str) -> Result<(), String>;
    let (text, check): (String, Validator) = if args.chaos {
        (run_chaos_bench(&args).to_string_pretty(), validate_chaos)
    } else {
        (
            run_batching_bench(args.smoke).to_string_pretty(),
            validate_batching,
        )
    };
    check(&text).unwrap_or_else(|e| {
        eprintln!("emitted report failed schema validation: {e}");
        std::process::exit(1);
    });
    std::fs::write(&out_path, format!("{text}\n")).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
    println!("{text}");
}

/// The chaos soak: a fault-injected TCP front-end driven by the resilient
/// client while a scraper thread polls the live metrics plane. Asserts 100%
/// completion with zero exhausted budgets and returns the `pr7` report with
/// the embedded `MetricsSnapshot` time series.
fn run_chaos_bench(args: &Args) -> JsonValue {
    let (n, size, iters) = if args.smoke {
        (60usize, 24usize, 12u32)
    } else {
        (200, 48, 30)
    };
    eprintln!(
        "loadgen: chaos soak, {n} denoise requests of {size}x{size} @{iters} iters ({} mode)",
        mode(args.smoke)
    );

    let input: Image = timing_frame(size, size);
    let params = ChambolleParams::with_iterations(iters);
    let server_telemetry = Telemetry::null();
    let client_telemetry = Telemetry::null();
    // A demonstration SLO on the batch lane so the scraped snapshots carry
    // live burn-rate data: 99% of soak responses within 2 s.
    let config = ServiceConfig::new(2, 32).with_slo(
        Priority::Batch,
        SloObjective::new(Duration::from_secs(2), 0.99),
    );
    let service = Service::spawn_with_telemetry(config, server_telemetry.clone());
    let chaos = ChaosConfig::quiet(CHAOS_SEED)
        .with_resets(0.03)
        .with_corruption(0.03)
        .with_panic_on_request(5);
    let server = TcpServer::bind_with_chaos(service.handle().clone(), "127.0.0.1:0", chaos)
        .expect("bind chaos server");

    let config = ResilientConfig {
        connect_timeout: args.connect_timeout,
        io_timeout: Duration::from_secs(10),
        retry: RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
        },
        breaker: BreakerPolicy {
            failure_threshold: 1,
            cooldown: Duration::from_millis(10),
        },
        jitter_seed: CHAOS_SEED,
        tracing: true,
    };
    let mut client = ResilientClient::connect_with(server.local_addr(), config)
        .expect("connect resilient client")
        .with_telemetry(client_telemetry.clone());

    // The metrics plane: a clean ops listener on the same service handle,
    // scraped at a fixed cadence while the chaos soak runs. Same v3 wire
    // protocol (`MetricsSnapshot` request), no fault injection — in a real
    // deployment the ops plane is a separate bind.
    let ops = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").expect("bind ops listener");
    let scrape_stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&scrape_stop);
        let addr = ops.local_addr();
        let interval = args.scrape_interval;
        std::thread::spawn(move || scrape_metrics(addr, interval, &stop))
    };

    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = Instant::now();
        let outcome = client
            .denoise(&input, &params, Priority::Batch, None)
            .expect("chaos soak: every request must complete");
        assert_eq!(outcome.output.len(), input.len());
        latencies.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    let wall_s = start.elapsed().as_secs_f64();
    let stats = client.stats();
    assert_eq!(stats.requests, n as u64, "100% completion under chaos");
    assert_eq!(stats.exhausted, 0, "no retry budget may exhaust");

    scrape_stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper thread must not panic");
    assert!(
        !scrapes.is_empty(),
        "the soak must capture at least one metrics scrape"
    );
    for (t_ms, snapshot) in &scrapes {
        validate_metrics_snapshot(snapshot)
            .unwrap_or_else(|e| panic!("scrape at t={t_ms}ms failed schema validation: {e}"));
    }
    eprintln!(
        "  scraped {} metrics snapshots at {}ms cadence",
        scrapes.len(),
        args.scrape_interval.as_millis()
    );

    ops.shutdown();
    server.shutdown();
    let summary = service.shutdown();
    assert_eq!(summary.stats.in_flight(), 0);

    let client_snap = client_telemetry.snapshot();
    let server_snap = server_telemetry.snapshot();
    let counter = |snap: &chambolle_telemetry::metrics::Metrics, name: &str| -> u64 {
        snap.counter(name).unwrap_or(0)
    };
    let faults = [
        names::SERVICE_CHAOS_RESETS,
        names::SERVICE_CHAOS_CORRUPTIONS,
        names::SERVICE_CHAOS_STALLS,
        names::SERVICE_CHAOS_PARTIAL_WRITES,
        names::SERVICE_CHAOS_SERVER_PANICS,
    ]
    .iter()
    .map(|name| counter(&server_snap, name))
    .sum::<u64>();
    let retry_rate = if stats.attempts == 0 {
        0.0
    } else {
        stats.retries as f64 / stats.attempts as f64
    };
    eprintln!(
        "  {n} reqs in {wall_s:.2}s: {} attempts ({} retries, {:.1}% retry rate), \
         {} recovered, {} breaker opens, {faults} injected faults",
        stats.attempts,
        stats.retries,
        100.0 * retry_rate,
        stats.recovered,
        stats.breaker_opened,
    );

    JsonValue::Object(vec![
        ("schema".into(), SCHEMA.into()),
        ("bench".into(), BENCH_CHAOS.into()),
        ("mode".into(), mode(args.smoke).into()),
        ("seed".into(), CHAOS_SEED.into()),
        ("requests".into(), (n as u64).into()),
        ("completed".into(), stats.requests.into()),
        ("attempts".into(), stats.attempts.into()),
        ("retries".into(), stats.retries.into()),
        ("retry_rate".into(), retry_rate.into()),
        ("recovered".into(), stats.recovered.into()),
        ("exhausted".into(), stats.exhausted.into()),
        ("wall_s".into(), wall_s.into()),
        (
            "p50_us".into(),
            percentile_us(&mut latencies.clone(), 50.0).into(),
        ),
        ("p99_us".into(), percentile_us(&mut latencies, 99.0).into()),
        (
            "breaker".into(),
            JsonValue::Object(vec![
                (
                    "opened".into(),
                    counter(&client_snap, names::SERVICE_BREAKER_OPENED).into(),
                ),
                (
                    "half_open".into(),
                    counter(&client_snap, names::SERVICE_BREAKER_HALF_OPEN).into(),
                ),
                (
                    "closed".into(),
                    counter(&client_snap, names::SERVICE_BREAKER_CLOSED).into(),
                ),
            ]),
        ),
        (
            "chaos".into(),
            JsonValue::Object(vec![
                (
                    "resets".into(),
                    counter(&server_snap, names::SERVICE_CHAOS_RESETS).into(),
                ),
                (
                    "corruptions".into(),
                    counter(&server_snap, names::SERVICE_CHAOS_CORRUPTIONS).into(),
                ),
                (
                    "stalls".into(),
                    counter(&server_snap, names::SERVICE_CHAOS_STALLS).into(),
                ),
                (
                    "partial_writes".into(),
                    counter(&server_snap, names::SERVICE_CHAOS_PARTIAL_WRITES).into(),
                ),
                (
                    "server_panics".into(),
                    counter(&server_snap, names::SERVICE_CHAOS_SERVER_PANICS).into(),
                ),
                ("faults_total".into(), faults.into()),
            ]),
        ),
        (
            "idempotent_hits".into(),
            counter(&server_snap, names::SERVICE_IDEMPOTENT_HITS).into(),
        ),
        (
            "scrape_interval_ms".into(),
            (args.scrape_interval.as_millis() as u64).into(),
        ),
        (
            "scrapes".into(),
            JsonValue::Array(
                scrapes
                    .into_iter()
                    .map(|(t_ms, snapshot)| {
                        JsonValue::Object(vec![
                            ("t_ms".into(), t_ms.into()),
                            ("snapshot".into(), snapshot),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Polls the `MetricsSnapshot` wire request against `addr` every `interval`
/// until `stop` is raised, then takes one final scrape so even the fastest
/// smoke soak embeds a sample. Each scrape is timestamped relative to the
/// scraper's start.
fn scrape_metrics(
    addr: std::net::SocketAddr,
    interval: Duration,
    stop: &AtomicBool,
) -> Vec<(u64, JsonValue)> {
    let started = Instant::now();
    let mut scrapes = Vec::new();
    let mut client = None;
    loop {
        let done = stop.load(Ordering::Relaxed);
        if client.is_none() {
            client = ServiceClient::connect(addr).ok();
        }
        if let Some(c) = client.as_mut() {
            let t_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            match c
                .metrics()
                .map_err(|e| e.to_string())
                .and_then(|text| JsonValue::parse(&text).map_err(|e| e.to_string()))
            {
                Ok(snapshot) => scrapes.push((t_ms, snapshot)),
                // A scrape may race server shutdown; drop the connection and
                // let the next tick redial.
                Err(_) => client = None,
            }
        }
        if done {
            return scrapes;
        }
        std::thread::sleep(interval);
    }
}

/// The original three-phase batching benchmark (`pr4` report).
fn run_batching_bench(smoke: bool) -> JsonValue {
    // Smoke keeps CI fast (200 mixed-priority requests); the full run uses
    // a heavier frame so solve time dominates dispatch overhead.
    let (n, size, iters, interval) = if smoke {
        (200usize, 48usize, 30u32, Duration::from_micros(300))
    } else {
        (400, 96, 60, Duration::from_millis(1))
    };
    let input: Image = timing_frame(size, size);
    let params = ChambolleParams::with_iterations(iters);
    eprintln!(
        "loadgen: {n} denoise requests of {size}x{size} @{iters} iters, {THREADS} threads ({} mode)",
        mode(smoke)
    );

    // Best-of-2 on the timed phases damps scheduler noise (the margin on a
    // core-starved machine comes from dispatch amortization alone).
    let best_of = |spec: &PhaseSpec<'_>| -> PhaseResult {
        let first = run_phase(spec, n, interval, &input, &params);
        let second = run_phase(spec, n, interval, &input, &params);
        if second.throughput_rps > first.throughput_rps {
            second
        } else {
            first
        }
    };
    let baseline = best_of(&PhaseSpec {
        name: "baseline",
        max_batch: 1,
        queue_capacity: n + 8,
        interactive_every: 4,
        deadline_every: 0,
        deadline: Duration::ZERO,
    });
    let batched = best_of(&PhaseSpec {
        name: "batched",
        max_batch: 8,
        queue_capacity: n + 8,
        interactive_every: 4,
        deadline_every: 0,
        deadline: Duration::ZERO,
    });
    let overload = run_phase(
        &PhaseSpec {
            name: "mixed_overload",
            max_batch: 8,
            queue_capacity: 16,
            interactive_every: 4,
            deadline_every: 10,
            deadline: Duration::from_millis(25),
        },
        n,
        interval,
        &input,
        &params,
    );

    let speedup = batched.throughput_rps / baseline.throughput_rps;
    eprintln!(
        "  batching speedup: {speedup:.2}x ({:.1} -> {:.1} req/s)",
        baseline.throughput_rps, batched.throughput_rps
    );
    // The strictly-higher-throughput criterion needs actual parallelism: on
    // a single-CPU host a 4-thread batch cannot beat serial execution, so
    // the comparison is recorded but not enforced there.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores > 1 {
        assert!(
            batched.throughput_rps > baseline.throughput_rps,
            "batching must sustain strictly higher throughput than serialize-per-request \
             ({:.1} vs {:.1} req/s on {cores} cores)",
            batched.throughput_rps,
            baseline.throughput_rps
        );
    } else {
        eprintln!("  (single-CPU host: throughput comparison recorded, not enforced)");
    }
    assert!(
        batched.max_batch_size > 1,
        "the batched phase must actually coalesce requests"
    );

    JsonValue::Object(vec![
        ("schema".into(), SCHEMA.into()),
        ("bench".into(), BENCH_BATCHING.into()),
        ("mode".into(), mode(smoke).into()),
        ("threads".into(), (THREADS as u64).into()),
        (
            "phases".into(),
            JsonValue::Array(vec![
                baseline.to_json(),
                batched.to_json(),
                overload.to_json(),
            ]),
        ),
        (
            "comparison".into(),
            JsonValue::Object(vec![
                ("baseline_rps".into(), baseline.throughput_rps.into()),
                ("batched_rps".into(), batched.throughput_rps.into()),
                ("speedup".into(), speedup.into()),
                ("baseline_p99_us".into(), baseline.p99_us.into()),
                ("batched_p99_us".into(), batched.p99_us.into()),
            ]),
        ),
    ])
}

fn mode(smoke: bool) -> &'static str {
    if smoke {
        "smoke"
    } else {
        "full"
    }
}
