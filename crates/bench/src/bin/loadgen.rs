//! Load generator for the `chambolle-service` request layer.
//!
//! Drives the in-process service with open-loop arrivals (requests are
//! submitted on a fixed schedule, regardless of completions) and compares
//! the micro-batching dispatcher against a serialize-per-request baseline
//! at the same pool size, then writes a schema-stable `BENCH_pr4.json`
//! with throughput, p50/p99 latency, shed rate, and batch-size stats.
//!
//! ```text
//! cargo run --release -p chambolle-bench --bin loadgen              # full run
//! cargo run --release -p chambolle-bench --bin loadgen -- --smoke  # CI smoke
//! cargo run --release -p chambolle-bench --bin loadgen -- --out x.json
//! ```
//!
//! Three phases, all on 4 worker threads:
//!
//! 1. `baseline` — `max_batch = 1` (every request dispatched alone);
//! 2. `batched` — `max_batch = 8` (compatible requests coalesce); the run
//!    asserts this phase's throughput strictly exceeds the baseline's;
//! 3. `mixed_overload` — a small queue under the same arrival schedule with
//!    mixed priorities and a tight deadline on every 10th request, so
//!    admission control sheds load and deadlines fire.
//!
//! Every phase asserts the zero-lost-response invariant: each accepted
//! request resolves to exactly one response.

use std::env;
use std::time::{Duration, Instant};

use chambolle_bench::workloads::timing_frame;
use chambolle_core::ChambolleParams;
use chambolle_imaging::Image;
use chambolle_service::{
    Priority, RejectReason, Request, Service, ServiceConfig, ServiceError, Ticket, Workload,
};
use chambolle_telemetry::json::JsonValue;

/// Schema identifier checked by the smoke validation and downstream tools.
const SCHEMA: &str = "chambolle.bench.v1";
/// Benchmark identifier within the schema.
const BENCH: &str = "pr4";
/// Pool size for every phase.
const THREADS: usize = 4;

struct PhaseSpec<'a> {
    name: &'a str,
    max_batch: usize,
    queue_capacity: usize,
    /// Every n-th request is interactive (0 = none).
    interactive_every: usize,
    /// Every n-th request carries `deadline` (0 = none).
    deadline_every: usize,
    deadline: Duration,
}

struct PhaseResult {
    name: String,
    requests: usize,
    accepted: u64,
    rejected_full: u64,
    completed: u64,
    deadline_exceeded: u64,
    cancelled: u64,
    failed: u64,
    wall_s: f64,
    throughput_rps: f64,
    shed_rate: f64,
    p50_us: u64,
    p99_us: u64,
    mean_batch_size: f64,
    max_batch_size: usize,
    batches: u64,
}

impl PhaseResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("name".into(), self.name.as_str().into()),
            ("requests".into(), (self.requests as u64).into()),
            ("accepted".into(), self.accepted.into()),
            ("rejected_full".into(), self.rejected_full.into()),
            ("completed".into(), self.completed.into()),
            ("deadline_exceeded".into(), self.deadline_exceeded.into()),
            ("cancelled".into(), self.cancelled.into()),
            ("failed".into(), self.failed.into()),
            ("wall_s".into(), self.wall_s.into()),
            ("throughput_rps".into(), self.throughput_rps.into()),
            ("shed_rate".into(), self.shed_rate.into()),
            ("p50_us".into(), self.p50_us.into()),
            ("p99_us".into(), self.p99_us.into()),
            ("mean_batch_size".into(), self.mean_batch_size.into()),
            ("max_batch_size".into(), (self.max_batch_size as u64).into()),
            ("batches".into(), self.batches.into()),
        ])
    }
}

/// Nearest-rank percentile of an unsorted sample set (`p` in 0..=100).
fn percentile_us(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn run_phase(
    spec: &PhaseSpec<'_>,
    n: usize,
    interval: Duration,
    input: &Image,
    params: &ChambolleParams,
) -> PhaseResult {
    let config = ServiceConfig::new(THREADS, spec.queue_capacity).with_max_batch(spec.max_batch);
    let service = Service::spawn(config);

    // Open loop: request i is submitted at start + i*interval, whether or
    // not earlier requests have finished. A full queue sheds the request;
    // the schedule keeps going.
    let start = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(n);
    for i in 0..n {
        let due = interval * i as u32;
        let now = start.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        let mut request = Request::new(Workload::Denoise {
            input: input.clone(),
            params: *params,
        });
        if spec.interactive_every > 0 && i % spec.interactive_every == 0 {
            request = request.with_priority(Priority::Interactive);
        }
        if spec.deadline_every > 0 && i % spec.deadline_every == 0 {
            request = request.with_deadline(spec.deadline);
        }
        match service.handle().submit(request) {
            Ok(ticket) => tickets.push(ticket),
            Err(RejectReason::QueueFull { .. }) => {} // counted by the service
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }

    // Drain: every accepted ticket must resolve.
    let mut latencies: Vec<u64> = Vec::with_capacity(tickets.len());
    let mut batch_sizes: Vec<usize> = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        match ticket.wait() {
            Ok(done) => {
                latencies.push(done.total_us);
                batch_sizes.push(done.batch_size);
            }
            Err(ServiceError::DeadlineExceeded | ServiceError::Cancelled) => {}
            Err(other) => panic!("request lost: {other}"),
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    let summary = service.shutdown();
    let stats = summary.stats;
    assert_eq!(
        stats.in_flight(),
        0,
        "phase {}: every accepted request must be responded to",
        spec.name
    );
    assert_eq!(
        stats.completed as usize,
        latencies.len(),
        "phase {}: completion count must match collected responses",
        spec.name
    );

    let mean_batch_size = if batch_sizes.is_empty() {
        0.0
    } else {
        batch_sizes.iter().sum::<usize>() as f64 / batch_sizes.len() as f64
    };
    let result = PhaseResult {
        name: spec.name.into(),
        requests: n,
        accepted: stats.accepted,
        rejected_full: stats.rejected_full,
        completed: stats.completed,
        deadline_exceeded: stats.deadline_exceeded,
        cancelled: stats.cancelled,
        failed: stats.failed,
        wall_s,
        throughput_rps: stats.completed as f64 / wall_s,
        shed_rate: stats.rejected_full as f64 / n as f64,
        p50_us: percentile_us(&mut latencies, 50.0),
        p99_us: percentile_us(&mut latencies, 99.0),
        mean_batch_size,
        max_batch_size: batch_sizes.iter().copied().max().unwrap_or(0),
        batches: stats.batches,
    };
    eprintln!(
        "  {:<16} {:>4} reqs: {:>7.1} req/s, p50 {:>7} us, p99 {:>8} us, shed {:>4.1}%, mean batch {:.2} (max {})",
        result.name,
        result.requests,
        result.throughput_rps,
        result.p50_us,
        result.p99_us,
        100.0 * result.shed_rate,
        result.mean_batch_size,
        result.max_batch_size,
    );
    result
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr4.json".to_string());

    // Smoke keeps CI fast (200 mixed-priority requests); the full run uses
    // a heavier frame so solve time dominates dispatch overhead.
    let (n, size, iters, interval) = if smoke {
        (200usize, 48usize, 30u32, Duration::from_micros(300))
    } else {
        (400, 96, 60, Duration::from_millis(1))
    };
    let input: Image = timing_frame(size, size);
    let params = ChambolleParams::with_iterations(iters);
    eprintln!(
        "loadgen: {n} denoise requests of {size}x{size} @{iters} iters, {THREADS} threads ({} mode)",
        mode(smoke)
    );

    // Best-of-2 on the timed phases damps scheduler noise (the margin on a
    // core-starved machine comes from dispatch amortization alone).
    let best_of = |spec: &PhaseSpec<'_>| -> PhaseResult {
        let first = run_phase(spec, n, interval, &input, &params);
        let second = run_phase(spec, n, interval, &input, &params);
        if second.throughput_rps > first.throughput_rps {
            second
        } else {
            first
        }
    };
    let baseline = best_of(&PhaseSpec {
        name: "baseline",
        max_batch: 1,
        queue_capacity: n + 8,
        interactive_every: 4,
        deadline_every: 0,
        deadline: Duration::ZERO,
    });
    let batched = best_of(&PhaseSpec {
        name: "batched",
        max_batch: 8,
        queue_capacity: n + 8,
        interactive_every: 4,
        deadline_every: 0,
        deadline: Duration::ZERO,
    });
    let overload = run_phase(
        &PhaseSpec {
            name: "mixed_overload",
            max_batch: 8,
            queue_capacity: 16,
            interactive_every: 4,
            deadline_every: 10,
            deadline: Duration::from_millis(25),
        },
        n,
        interval,
        &input,
        &params,
    );

    let speedup = batched.throughput_rps / baseline.throughput_rps;
    eprintln!(
        "  batching speedup: {speedup:.2}x ({:.1} -> {:.1} req/s)",
        baseline.throughput_rps, batched.throughput_rps
    );
    // The strictly-higher-throughput criterion needs actual parallelism: on
    // a single-CPU host a 4-thread batch cannot beat serial execution, so
    // the comparison is recorded but not enforced there.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores > 1 {
        assert!(
            batched.throughput_rps > baseline.throughput_rps,
            "batching must sustain strictly higher throughput than serialize-per-request \
             ({:.1} vs {:.1} req/s on {cores} cores)",
            batched.throughput_rps,
            baseline.throughput_rps
        );
    } else {
        eprintln!("  (single-CPU host: throughput comparison recorded, not enforced)");
    }
    assert!(
        batched.max_batch_size > 1,
        "the batched phase must actually coalesce requests"
    );

    let report = JsonValue::Object(vec![
        ("schema".into(), SCHEMA.into()),
        ("bench".into(), BENCH.into()),
        ("mode".into(), mode(smoke).into()),
        ("threads".into(), (THREADS as u64).into()),
        (
            "phases".into(),
            JsonValue::Array(vec![
                baseline.to_json(),
                batched.to_json(),
                overload.to_json(),
            ]),
        ),
        (
            "comparison".into(),
            JsonValue::Object(vec![
                ("baseline_rps".into(), baseline.throughput_rps.into()),
                ("batched_rps".into(), batched.throughput_rps.into()),
                ("speedup".into(), speedup.into()),
                ("baseline_p99_us".into(), baseline.p99_us.into()),
                ("batched_p99_us".into(), batched.p99_us.into()),
            ]),
        ),
    ]);
    let text = report.to_string_pretty();
    validate(&text).unwrap_or_else(|e| {
        eprintln!("emitted report failed schema validation: {e}");
        std::process::exit(1);
    });
    std::fs::write(&out_path, format!("{text}\n")).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
    println!("{text}");
}

fn mode(smoke: bool) -> &'static str {
    if smoke {
        "smoke"
    } else {
        "full"
    }
}

/// Checks the emitted document against the stable shape downstream tooling
/// relies on: schema/bench identifiers, all three phases with every field,
/// and the comparison block.
fn validate(text: &str) -> Result<(), String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
        return Err(format!("schema must be {SCHEMA:?}"));
    }
    if doc.get("bench").and_then(JsonValue::as_str) != Some(BENCH) {
        return Err(format!("bench must be {BENCH:?}"));
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("full") | Some("smoke") => {}
        other => return Err(format!("mode must be full|smoke, got {other:?}")),
    }
    let phases = doc
        .get("phases")
        .and_then(JsonValue::as_array)
        .ok_or("phases must be an array")?;
    if phases.len() != 3 {
        return Err(format!("expected 3 phases, got {}", phases.len()));
    }
    for phase in phases {
        for field in [
            "name",
            "requests",
            "accepted",
            "rejected_full",
            "completed",
            "deadline_exceeded",
            "wall_s",
            "throughput_rps",
            "shed_rate",
            "p50_us",
            "p99_us",
            "mean_batch_size",
            "max_batch_size",
            "batches",
        ] {
            if phase.get(field).is_none() {
                return Err(format!("phase entry missing {field:?}"));
            }
        }
    }
    for field in [
        "baseline_rps",
        "batched_rps",
        "speedup",
        "baseline_p99_us",
        "batched_p99_us",
    ] {
        if doc
            .get_path(&format!("comparison.{field}"))
            .and_then(JsonValue::as_f64)
            .is_none()
        {
            return Err(format!("comparison block missing {field:?}"));
        }
    }
    Ok(())
}
