//! Plain-text table rendering for the reproduction harness.

/// A simple left-padded text table with a header row.
///
/// # Examples
///
/// ```
/// use chambolle_bench::tables::TextTable;
///
/// let mut t = TextTable::new(&["name", "value"]);
/// t.row(&["cycles", "1234"]);
/// let s = t.render();
/// assert!(s.contains("cycles"));
/// assert!(s.contains("1234"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are dropped.
    pub fn row(&mut self, cells: &[&str]) {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, cell) in r.iter().take(cols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an fps value the way Table II prints them (one decimal, or a
/// range for interval sources).
pub fn fps_cell(lo: f64, hi: f64) -> String {
    if (lo - hi).abs() < 1e-9 {
        format!("{lo:.1}")
    } else {
        format!("{lo:.0}-{hi:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["a", "long-header"]);
        t.row(&["xxxxx", "1"]);
        t.row(&["y", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a      "));
        assert!(lines[1].starts_with("---"));
        // Columns align: "long-header" starts at the same offset everywhere.
        let col = lines[0].find("long-header").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn missing_and_extra_cells() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3"]);
        let s = t.render();
        assert!(s.contains('1'));
        assert!(!s.contains('3'), "extra cells are dropped");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn fps_cells() {
        assert_eq!(fps_cell(5.0, 5.0), "5.0");
        assert_eq!(fps_cell(1.0, 2.0), "1-2");
    }
}
