//! Published state-of-the-art results quoted by the paper (Table II).
//!
//! The GPU baselines come from the paper's references \[13\] (Zach et al.,
//! GeForce 7800 GS and GeForce Go 7900 GTX) and \[14\] (Weishaupt et al., ATI
//! Mobility Radeon HD3650 and NVIDIA GTX285). They cannot be re-measured on
//! 2006-era hardware, so — like the paper itself — we reprint the published
//! numbers and compare our measured/simulated rows against them.

/// One published row of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedResult {
    /// Reference tag in the paper (`[13]`, `[14]`).
    pub reference: &'static str,
    /// Device (and API where the source distinguishes it).
    pub device: &'static str,
    /// Chambolle iterations.
    pub iterations: u32,
    /// Frame width.
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Frames per second, lower bound (sources sometimes report a range).
    pub fps_lo: f64,
    /// Frames per second, upper bound (equal to `fps_lo` for point values).
    pub fps_hi: f64,
}

impl PublishedResult {
    /// Midpoint of the published range.
    pub fn fps_mid(&self) -> f64 {
        0.5 * (self.fps_lo + self.fps_hi)
    }
}

/// Every state-of-the-art row of Table II, in the paper's order.
pub const TABLE2_BASELINES: &[PublishedResult] = &[
    row("[13]", "GeForce 7800 GS", 50, 128, 128, 56.0),
    row("[13]", "GeForce 7800 GS", 100, 128, 128, 32.1),
    row("[13]", "GeForce 7800 GS", 200, 128, 128, 17.5),
    row("[13]", "GeForce 7800 GS", 50, 256, 256, 18.0),
    row("[13]", "GeForce 7800 GS", 100, 256, 256, 9.6),
    row("[13]", "GeForce 7800 GS", 200, 256, 256, 5.0),
    row("[13]", "GeForce 7800 GS", 50, 512, 512, 5.0),
    row("[13]", "GeForce 7800 GS", 100, 512, 512, 2.6),
    row("[13]", "GeForce 7800 GS", 200, 512, 512, 1.3),
    row("[13]", "GeForce Go 7900 GTX", 50, 128, 128, 95.0),
    row("[13]", "GeForce Go 7900 GTX", 100, 128, 128, 57.0),
    row("[13]", "GeForce Go 7900 GTX", 200, 128, 128, 30.9),
    row("[13]", "GeForce Go 7900 GTX", 50, 256, 256, 34.1),
    row("[13]", "GeForce Go 7900 GTX", 100, 256, 256, 17.5),
    row("[13]", "GeForce Go 7900 GTX", 200, 256, 256, 8.9),
    row("[13]", "GeForce Go 7900 GTX", 50, 512, 512, 9.3),
    row("[13]", "GeForce Go 7900 GTX", 100, 512, 512, 4.7),
    row("[13]", "GeForce Go 7900 GTX", 200, 512, 512, 2.3),
    range_row(
        "[14]",
        "Radeon HD3650 (OpenCV+OpenGL)",
        100,
        512,
        512,
        1.0,
        2.0,
    ),
    range_row(
        "[14]",
        "Radeon HD3650 (OpenGL only)",
        100,
        512,
        512,
        3.0,
        4.0,
    ),
    range_row(
        "[14]",
        "NVIDIA GTX285 (OpenGL only)",
        100,
        512,
        512,
        5.0,
        6.0,
    ),
];

/// The paper's own rows: the proposed FPGA at 221 MHz.
pub const TABLE2_PROPOSED: &[PublishedResult] = &[
    row(
        "paper",
        "Virtex-5 XC5VLX110T (proposed)",
        200,
        512,
        512,
        99.1,
    ),
    row(
        "paper",
        "Virtex-5 XC5VLX110T (proposed)",
        200,
        1024,
        768,
        38.1,
    ),
];

/// Speedup range the paper derives at 512×512 (Section VI).
pub const PAPER_SPEEDUP_RANGE: (f64, f64) = (16.5, 76.0);

const fn row(
    reference: &'static str,
    device: &'static str,
    iterations: u32,
    width: usize,
    height: usize,
    fps: f64,
) -> PublishedResult {
    PublishedResult {
        reference,
        device,
        iterations,
        width,
        height,
        fps_lo: fps,
        fps_hi: fps,
    }
}

const fn range_row(
    reference: &'static str,
    device: &'static str,
    iterations: u32,
    width: usize,
    height: usize,
    fps_lo: f64,
    fps_hi: f64,
) -> PublishedResult {
    PublishedResult {
        reference,
        device,
        iterations,
        width,
        height,
        fps_lo,
        fps_hi,
    }
}

/// The best published fps at the given shape/iterations (competitor to beat).
pub fn best_baseline(width: usize, height: usize, iterations: u32) -> Option<PublishedResult> {
    TABLE2_BASELINES
        .iter()
        .filter(|r| r.width == width && r.height == height && r.iterations == iterations)
        .max_by(|a, b| a.fps_hi.total_cmp(&b.fps_hi))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_published_rows() {
        assert_eq!(TABLE2_BASELINES.len(), 21);
        assert_eq!(TABLE2_PROPOSED.len(), 2);
    }

    #[test]
    fn best_baseline_at_512_200_is_7900gtx() {
        let best = best_baseline(512, 512, 200).unwrap();
        assert_eq!(best.device, "GeForce Go 7900 GTX");
        assert_eq!(best.fps_hi, 2.3);
    }

    #[test]
    fn paper_speedup_range_consistent_with_rows() {
        // 99.1 / 1.3 ≈ 76x (slowest baseline), 99.1 / 6 ≈ 16.5x (fastest).
        let proposed = TABLE2_PROPOSED[0].fps_lo;
        // The paper's 76x compares its 200-iteration rate to the slowest
        // 200-iteration baseline (the 16.5x end mixes iteration counts).
        let slowest = TABLE2_BASELINES
            .iter()
            .filter(|r| r.width == 512 && r.iterations == 200)
            .map(|r| r.fps_lo)
            .fold(f64::INFINITY, f64::min);
        // ...and the 16.5x end against the fastest baseline at a comparable
        // iteration count (>= 100): the GTX285's 6 fps.
        let fastest = TABLE2_BASELINES
            .iter()
            .filter(|r| r.width == 512 && r.iterations >= 100)
            .map(|r| r.fps_hi)
            .fold(0.0, f64::max);
        assert!((proposed / slowest - PAPER_SPEEDUP_RANGE.1).abs() < 0.5);
        assert!((proposed / fastest - PAPER_SPEEDUP_RANGE.0).abs() < 0.5);
    }

    #[test]
    fn fps_mid_of_ranges() {
        let r = best_baseline(512, 512, 100).unwrap();
        assert_eq!(r.device, "NVIDIA GTX285 (OpenGL only)");
        assert_eq!(r.fps_mid(), 5.5);
    }
}
