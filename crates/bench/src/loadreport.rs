//! Command-line surface and schema validation for the `loadgen` binary.
//!
//! Lives in the library (rather than the binary) so the integration tests
//! under `crates/bench/tests` can parse-test every flag and validate the
//! emitted reports against the stable schemas without spawning the binary.
//!
//! Three documents are covered:
//!
//! - the `pr4` batching report ([`validate_batching`]);
//! - the `pr7` chaos-soak report with the embedded metrics time series
//!   ([`validate_chaos`]);
//! - the live [`MetricsSnapshot`] documents scraped off the wire and
//!   embedded in the soak report ([`validate_metrics_snapshot`]).
//!
//! [`MetricsSnapshot`]: chambolle_service::METRICS_SNAPSHOT_SCHEMA

use std::time::Duration;

use chambolle_service::METRICS_SNAPSHOT_SCHEMA;
use chambolle_telemetry::json::JsonValue;

/// Schema identifier checked by the smoke validation and downstream tools.
pub const SCHEMA: &str = "chambolle.bench.v1";
/// Benchmark identifier of the batching phases within the schema.
pub const BENCH_BATCHING: &str = "pr4";
/// Benchmark identifier of the chaos soak (with metrics scrapes) within the
/// schema.
pub const BENCH_CHAOS: &str = "pr7";
/// Default cadence at which the chaos soak scrapes `MetricsSnapshot`.
pub const DEFAULT_SCRAPE_INTERVAL: Duration = Duration::from_millis(250);

/// Parsed `loadgen` command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// Shrink the run for CI (`--smoke`).
    pub smoke: bool,
    /// Run the chaos soak instead of the batching phases (`--chaos`).
    pub chaos: bool,
    /// TCP connect timeout of the resilient client
    /// (`--connect-timeout-ms`).
    pub connect_timeout: Duration,
    /// Cadence of the `MetricsSnapshot` scraper during the chaos soak
    /// (`--scrape-interval-ms`; ignored by the batching phases, which run
    /// in-process without a wire front-end).
    pub scrape_interval: Duration,
    /// Output path override (`--out`).
    pub out: Option<String>,
    /// Tuning profile to install before the phases run (`--profile`);
    /// takes precedence over `CHAMBOLLE_PROFILE`. Invalid profiles fall
    /// back to defaults with a warning, never an abort.
    pub profile: Option<String>,
}

impl Args {
    /// The report path: `--out` if given, else the per-bench default.
    pub fn out_path(&self) -> String {
        self.out.clone().unwrap_or_else(|| {
            if self.chaos {
                "BENCH_pr7.json".to_string()
            } else {
                "BENCH_pr4.json".to_string()
            }
        })
    }
}

/// Parses `loadgen` flags (`args` excludes the program name).
pub fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        smoke: false,
        chaos: false,
        connect_timeout: chambolle_service::DEFAULT_CONNECT_TIMEOUT,
        scrape_interval: DEFAULT_SCRAPE_INTERVAL,
        out: None,
        profile: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--chaos" => parsed.chaos = true,
            "--out" => {
                let value = iter.next().ok_or("--out requires a path")?;
                parsed.out = Some(value.clone());
            }
            "--profile" => {
                let value = iter.next().ok_or("--profile requires a path")?;
                parsed.profile = Some(value.clone());
            }
            "--connect-timeout-ms" => {
                parsed.connect_timeout = positive_ms(&mut iter, "--connect-timeout-ms")?;
            }
            "--scrape-interval-ms" => {
                parsed.scrape_interval = positive_ms(&mut iter, "--scrape-interval-ms")?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(parsed)
}

/// Parses the next argument as a positive millisecond count.
fn positive_ms<'a>(
    iter: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<Duration, String> {
    let value = iter.next().ok_or(format!("{flag} requires a value"))?;
    let ms: u64 = value
        .parse()
        .map_err(|_| format!("{flag}: not a number: {value:?}"))?;
    if ms == 0 {
        return Err(format!("{flag} must be positive"));
    }
    Ok(Duration::from_millis(ms))
}

/// Checks the batching document against the stable shape downstream tooling
/// relies on: schema/bench identifiers, all three phases with every field,
/// and the comparison block.
pub fn validate_batching(text: &str) -> Result<(), String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
        return Err(format!("schema must be {SCHEMA:?}"));
    }
    if doc.get("bench").and_then(JsonValue::as_str) != Some(BENCH_BATCHING) {
        return Err(format!("bench must be {BENCH_BATCHING:?}"));
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("full") | Some("smoke") => {}
        other => return Err(format!("mode must be full|smoke, got {other:?}")),
    }
    let phases = doc
        .get("phases")
        .and_then(JsonValue::as_array)
        .ok_or("phases must be an array")?;
    if phases.len() != 3 {
        return Err(format!("expected 3 phases, got {}", phases.len()));
    }
    for phase in phases {
        for field in [
            "name",
            "requests",
            "accepted",
            "rejected_full",
            "completed",
            "deadline_exceeded",
            "wall_s",
            "throughput_rps",
            "shed_rate",
            "p50_us",
            "p99_us",
            "mean_batch_size",
            "max_batch_size",
            "batches",
        ] {
            if phase.get(field).is_none() {
                return Err(format!("phase entry missing {field:?}"));
            }
        }
    }
    for field in [
        "baseline_rps",
        "batched_rps",
        "speedup",
        "baseline_p99_us",
        "batched_p99_us",
    ] {
        if doc
            .get_path(&format!("comparison.{field}"))
            .and_then(JsonValue::as_f64)
            .is_none()
        {
            return Err(format!("comparison block missing {field:?}"));
        }
    }
    Ok(())
}

/// Checks the chaos-soak document: schema/bench identifiers, every counter
/// field, the hard resilience invariants (100% completion, zero exhausted
/// retry budgets), and the embedded `MetricsSnapshot` time series.
pub fn validate_chaos(text: &str) -> Result<(), String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
        return Err(format!("schema must be {SCHEMA:?}"));
    }
    if doc.get("bench").and_then(JsonValue::as_str) != Some(BENCH_CHAOS) {
        return Err(format!("bench must be {BENCH_CHAOS:?}"));
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("full") | Some("smoke") => {}
        other => return Err(format!("mode must be full|smoke, got {other:?}")),
    }
    for field in [
        "seed",
        "requests",
        "completed",
        "attempts",
        "retries",
        "retry_rate",
        "recovered",
        "exhausted",
        "wall_s",
        "p50_us",
        "p99_us",
        "idempotent_hits",
        "scrape_interval_ms",
    ] {
        if doc.get(field).is_none() {
            return Err(format!("chaos report missing {field:?}"));
        }
    }
    for field in ["breaker.opened", "breaker.half_open", "breaker.closed"] {
        if doc.get_path(field).is_none() {
            return Err(format!("chaos report missing {field:?}"));
        }
    }
    for field in [
        "chaos.resets",
        "chaos.corruptions",
        "chaos.stalls",
        "chaos.partial_writes",
        "chaos.server_panics",
        "chaos.faults_total",
    ] {
        if doc.get_path(field).is_none() {
            return Err(format!("chaos report missing {field:?}"));
        }
    }
    let requests = doc.get("requests").and_then(JsonValue::as_f64);
    let completed = doc.get("completed").and_then(JsonValue::as_f64);
    if requests.is_none() || requests != completed {
        return Err("chaos soak must complete 100% of requests".into());
    }
    if doc.get("exhausted").and_then(JsonValue::as_f64) != Some(0.0) {
        return Err("chaos soak must not exhaust any retry budget".into());
    }
    let scrapes = doc
        .get("scrapes")
        .and_then(JsonValue::as_array)
        .ok_or("scrapes must be an array")?;
    if scrapes.is_empty() {
        return Err("chaos soak must embed at least one metrics scrape".into());
    }
    for (i, scrape) in scrapes.iter().enumerate() {
        if scrape.get("t_ms").and_then(JsonValue::as_f64).is_none() {
            return Err(format!("scrape {i} missing \"t_ms\""));
        }
        let snapshot = scrape
            .get("snapshot")
            .ok_or(format!("scrape {i} missing \"snapshot\""))?;
        validate_metrics_snapshot(snapshot).map_err(|e| format!("scrape {i}: {e}"))?;
    }
    Ok(())
}

/// Checks a parsed `MetricsSnapshot` document against the schema the serving
/// stack promises to keep stable (`chambolle.metrics_snapshot.v1`): queue
/// gauges, the rolling window block, SLO lanes, and the trace digest.
pub fn validate_metrics_snapshot(doc: &JsonValue) -> Result<(), String> {
    if doc.get("schema").and_then(JsonValue::as_str) != Some(METRICS_SNAPSHOT_SCHEMA) {
        return Err(format!(
            "snapshot schema must be {METRICS_SNAPSHOT_SCHEMA:?}"
        ));
    }
    for field in [
        "uptime_us",
        "window.bucket_width_us",
        "window.buckets",
        "queue.depth",
        "queue.capacity",
        "queue.interactive_depth",
        "queue.batch_depth",
        "slo.max_burn_rate",
        "traces.finished",
    ] {
        if doc.get_path(field).and_then(JsonValue::as_f64).is_none() {
            return Err(format!("snapshot missing numeric {field:?}"));
        }
    }
    if doc.get_path("queue.congested").is_none() {
        return Err("snapshot missing \"queue.congested\"".into());
    }
    if doc.get_path("slo.burning").is_none() {
        return Err("snapshot missing \"slo.burning\"".into());
    }
    if doc.get("brownout").is_none() {
        return Err("snapshot missing \"brownout\"".into());
    }
    if doc.get("window_metrics").is_none() {
        return Err("snapshot missing \"window_metrics\"".into());
    }
    for field in ["slo.lanes", "traces.slowest"] {
        if doc.get_path(field).and_then(JsonValue::as_array).is_none() {
            return Err(format!("snapshot missing array {field:?}"));
        }
    }
    for field in ["stats", "counters"] {
        if doc.get(field).is_none() {
            return Err(format!("snapshot missing {field:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn defaults_are_full_batching_mode() {
        let args = parse_args(&[]).unwrap();
        assert!(!args.smoke);
        assert!(!args.chaos);
        assert_eq!(
            args.connect_timeout,
            chambolle_service::DEFAULT_CONNECT_TIMEOUT
        );
        assert_eq!(args.scrape_interval, DEFAULT_SCRAPE_INTERVAL);
        assert_eq!(args.out_path(), "BENCH_pr4.json");
    }

    #[test]
    fn chaos_flag_switches_bench_and_default_output() {
        let args = parse_args(&strings(&["--chaos", "--smoke"])).unwrap();
        assert!(args.chaos);
        assert!(args.smoke);
        assert_eq!(args.out_path(), "BENCH_pr7.json");
    }

    #[test]
    fn connect_timeout_flag_parses_milliseconds() {
        let args = parse_args(&strings(&["--connect-timeout-ms", "250"])).unwrap();
        assert_eq!(args.connect_timeout, Duration::from_millis(250));
        assert!(parse_args(&strings(&["--connect-timeout-ms"])).is_err());
        assert!(parse_args(&strings(&["--connect-timeout-ms", "soon"])).is_err());
        assert!(parse_args(&strings(&["--connect-timeout-ms", "0"])).is_err());
    }

    #[test]
    fn scrape_interval_flag_parses_milliseconds() {
        let args = parse_args(&strings(&["--chaos", "--scrape-interval-ms", "100"])).unwrap();
        assert_eq!(args.scrape_interval, Duration::from_millis(100));
        assert!(parse_args(&strings(&["--scrape-interval-ms"])).is_err());
        assert!(parse_args(&strings(&["--scrape-interval-ms", "often"])).is_err());
        assert!(parse_args(&strings(&["--scrape-interval-ms", "0"])).is_err());
    }

    #[test]
    fn out_flag_overrides_the_default_path() {
        let args = parse_args(&strings(&["--chaos", "--out", "custom.json"])).unwrap();
        assert_eq!(args.out_path(), "custom.json");
    }

    #[test]
    fn profile_flag_parses_a_path() {
        assert_eq!(parse_args(&[]).unwrap().profile, None);
        let args = parse_args(&strings(&["--profile", "p.json"])).unwrap();
        assert_eq!(args.profile.as_deref(), Some("p.json"));
        assert!(parse_args(&strings(&["--profile"])).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse_args(&strings(&["--frobnicate"])).is_err());
    }
}
