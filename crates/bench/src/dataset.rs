//! A small synthetic flow-accuracy suite (the paper evaluates only speed;
//! this adds the accuracy dimension with analytic ground truth).

use chambolle_imaging::{render_pair, FramePair, Motion, NoiseTexture};

/// One named test sequence with ground-truth flow.
#[derive(Debug, Clone)]
pub struct FlowCase {
    /// Short case name for tables.
    pub name: &'static str,
    /// The rendered frame pair and its analytic ground truth.
    pub pair: FramePair,
}

/// The standard suite at the given frame size: translations of increasing
/// magnitude, a diagonal move, a rotation, a zoom, and a combined
/// similarity — each on an independently seeded texture.
pub fn standard_cases(width: usize, height: usize) -> Vec<FlowCase> {
    let cx = width as f32 / 2.0;
    let cy = height as f32 / 2.0;
    let cases: [(&'static str, u64, Motion); 6] = [
        (
            "translate-small",
            11,
            Motion::Translation { du: 0.6, dv: -0.3 },
        ),
        (
            "translate-medium",
            12,
            Motion::Translation { du: 2.5, dv: 1.0 },
        ),
        (
            "translate-large",
            13,
            Motion::Translation { du: 5.0, dv: -2.0 },
        ),
        (
            "rotate",
            14,
            Motion::Similarity {
                cx,
                cy,
                angle: 0.05,
                scale: 1.0,
            },
        ),
        (
            "zoom",
            15,
            Motion::Similarity {
                cx,
                cy,
                angle: 0.0,
                scale: 1.04,
            },
        ),
        (
            "rotate-zoom",
            16,
            Motion::Similarity {
                cx,
                cy,
                angle: 0.03,
                scale: 1.02,
            },
        ),
    ];
    cases
        .into_iter()
        .map(|(name, seed, motion)| FlowCase {
            name,
            pair: render_pair(&NoiseTexture::new(seed), width, height, motion),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chambolle_imaging::{average_endpoint_error, FlowField};

    #[test]
    fn suite_has_six_distinct_cases() {
        let cases = standard_cases(64, 48);
        assert_eq!(cases.len(), 6);
        let names: std::collections::HashSet<_> = cases.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), 6);
        for c in &cases {
            assert_eq!(c.pair.i0.dims(), (64, 48));
            // Every case has real motion to recover.
            let zero = FlowField::zeros(64, 48);
            assert!(
                average_endpoint_error(&zero, &c.pair.truth) > 0.2,
                "{} has negligible motion",
                c.name
            );
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = standard_cases(32, 32);
        let b = standard_cases(32, 32);
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(ca.pair.i0, cb.pair.i0);
            assert_eq!(ca.pair.truth, cb.pair.truth);
        }
    }

    #[test]
    fn accuracy_ladder_holds_on_translations() {
        // TV-L1 beats Horn-Schunck beats block matching — the qualitative
        // result of `repro -- accuracy`, pinned as a regression test on the
        // medium-translation case.
        use chambolle_core::{
            block_matching_flow, BlockMatchingParams, ChambolleParams, HornSchunck,
            HornSchunckParams, TvL1Params, TvL1Solver,
        };
        let case = standard_cases(96, 72)
            .into_iter()
            .find(|c| c.name == "translate-medium")
            .expect("suite contains the case");
        let tvl1_params =
            TvL1Params::new(38.0, ChambolleParams::with_iterations(25), 3, 4, 4).expect("params");
        let (tv, _) = TvL1Solver::sequential(tvl1_params)
            .flow(&case.pair.i0, &case.pair.i1)
            .expect("valid frames");
        let hs = HornSchunck::new(HornSchunckParams::default())
            .flow(&case.pair.i0, &case.pair.i1)
            .expect("valid frames");
        let bm = block_matching_flow(
            &case.pair.i0,
            &case.pair.i1,
            &BlockMatchingParams::new(8, 10).expect("params"),
        )
        .expect("valid frames");
        let e_tv = average_endpoint_error(&tv, &case.pair.truth);
        let e_hs = average_endpoint_error(&hs, &case.pair.truth);
        let e_bm = average_endpoint_error(&bm, &case.pair.truth);
        assert!(
            e_tv < e_hs,
            "TV-L1 ({e_tv}) should beat Horn-Schunck ({e_hs})"
        );
        assert!(
            e_hs < e_bm,
            "Horn-Schunck ({e_hs}) should beat block matching ({e_bm})"
        );
        assert!(e_tv < 0.1, "TV-L1 should be deeply sub-pixel, got {e_tv}");
    }
}
