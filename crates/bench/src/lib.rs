//! Reproduction harness for *"A High-Performance Parallel Implementation of
//! the Chambolle Algorithm"* (Akin et al., DATE 2011).
//!
//! - [`baselines`] — the published Table II rows (GPU state of the art);
//! - [`loadreport`] — `loadgen` CLI parsing and report-schema validation;
//! - [`robustness`] — fault-injection sweeps over the guarded accelerator;
//! - [`tables`] — text-table rendering;
//! - [`tunereport`] — `tune` CLI parsing and report-schema validation;
//! - [`workloads`] — deterministic frames and host timing helpers;
//! - the `repro` binary regenerates every table and figure (see
//!   `EXPERIMENTS.md` at the workspace root).

#![warn(missing_docs)]

pub mod baselines;
pub mod dataset;
pub mod loadreport;
pub mod robustness;
pub mod tables;
pub mod tunereport;
pub mod workloads;
