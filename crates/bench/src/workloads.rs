//! Workload generation and host measurement helpers shared by the harness
//! binaries and the Criterion benches.

use std::time::Instant;

use chambolle_core::{chambolle_iterate, recover_u, ChambolleParams, DualField};
use chambolle_imaging::{Grid, Image, NoiseTexture, Scene};

/// The deterministic frame used for timing runs: a multi-octave noise
/// texture (the content is irrelevant to the cycle counts; the texture keeps
/// the datapath busy with realistic values).
pub fn timing_frame(width: usize, height: usize) -> Image {
    NoiseTexture::new(2011).render(width, height)
}

/// Measured software Chambolle performance on the host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostMeasurement {
    /// Frame width.
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Iterations run.
    pub iterations: u32,
    /// Wall seconds for the full solve (both flow components).
    pub seconds: f64,
    /// Frames per second.
    pub fps: f64,
}

/// Times the sequential software Chambolle solver on the host for one frame
/// of `width × height` at `iterations` iterations, processing **two**
/// components (as one TV-L1 inner solve does — the same work the hardware
/// rows of Table II represent).
pub fn measure_host_chambolle(width: usize, height: usize, iterations: u32) -> HostMeasurement {
    let v = timing_frame(width, height);
    let params = ChambolleParams::with_iterations(iterations);
    let start = Instant::now();
    for _component in 0..2 {
        let mut p = DualField::zeros(width, height);
        chambolle_iterate(&mut p, &v, &params, iterations);
        let u = recover_u(&v, &p, params.theta);
        std::hint::black_box(u);
    }
    let seconds = start.elapsed().as_secs_f64();
    HostMeasurement {
        width,
        height,
        iterations,
        seconds,
        fps: 1.0 / seconds,
    }
}

/// A small denoising input with structure (noisy step edge), for benches
/// that want a non-trivial convergence path.
pub fn noisy_step(width: usize, height: usize) -> Image {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    Grid::from_fn(width, height, |x, _| {
        let base = if x < width / 2 { 0.25f32 } else { 0.75 };
        base + rng.gen_range(-0.1..0.1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_frame_is_deterministic() {
        assert_eq!(timing_frame(16, 16), timing_frame(16, 16));
    }

    #[test]
    fn host_measurement_is_positive() {
        let m = measure_host_chambolle(32, 24, 3);
        assert!(m.seconds > 0.0);
        assert!(m.fps > 0.0);
        assert_eq!((m.width, m.height, m.iterations), (32, 24, 3));
    }

    #[test]
    fn noisy_step_has_an_edge() {
        let img = noisy_step(32, 8);
        let left = img[(4, 4)];
        let right = img[(28, 4)];
        assert!(right - left > 0.2);
    }
}
