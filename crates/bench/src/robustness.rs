//! Robustness workload: sweeps fault-injection rates through the guarded
//! accelerator and records detection and recovery statistics.
//!
//! The sweep answers the reliability question the DATE'11 paper leaves open:
//! an FPGA deployment of the Chambolle accelerator faces single-event
//! upsets, and the guarded frame scheduler
//! ([`ChambolleAccel::denoise_pair_guarded`]) claims to detect every upset
//! in a profitable region and repair it exactly. Each sweep point runs the
//! same deterministic frame with faults at one rate and checks the output
//! bit-for-bit against the fault-free reference.

use chambolle_core::ChambolleParams;
use chambolle_hwsim::{AccelConfig, AccelGuardConfig, ChambolleAccel, FaultConfig, FaultInjector};
use chambolle_imaging::Image;

use crate::workloads::timing_frame;

/// One sweep point: what happened at a single fault rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessPoint {
    /// The per-word-per-round BRAM upset probability used.
    pub bram_flip_rate: f64,
    /// Faults actually injected by the scheduler.
    pub injected: usize,
    /// Corruptions the guard detected (checksums, feasibility monitors,
    /// LUT scrubbing, DMR arbitration).
    pub detected: u32,
    /// Whether the output matched the fault-free run bit-for-bit.
    pub recovered_exactly: bool,
    /// Whether the run had to degrade to the sequential reference.
    pub degraded: bool,
    /// Window loads consumed (recovery work shows up here).
    pub window_loads: u64,
}

impl RobustnessPoint {
    /// Detections per injected fault (1.0 means nothing slipped through;
    /// can exceed 1.0 because one fault may trip several monitors).
    pub fn detection_ratio(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.detected as f64 / self.injected as f64
        }
    }
}

/// Runs the guarded accelerator once at each BRAM fault rate over the
/// deterministic `width × height` timing frame and compares every run with
/// the fault-free output of the same frame.
///
/// LUT and datapath rates ride along at `rate / 8` so the sweep exercises
/// all three fault classes without letting the (more expensive) recovery
/// paths dominate.
///
/// # Panics
///
/// Panics if the frame is too small for the accelerator configuration.
pub fn sweep_fault_rates(
    width: usize,
    height: usize,
    iterations: u32,
    seed: u64,
    rates: &[f64],
) -> Vec<RobustnessPoint> {
    let v = timing_frame(width, height);
    let params = ChambolleParams::with_iterations(iterations);
    let clean = run_guarded(&v, &params, seed, 0.0).0;
    rates
        .iter()
        .map(|&rate| {
            let (u, injected, report, loads) = run_guarded_full(&v, &params, seed, rate);
            RobustnessPoint {
                bram_flip_rate: rate,
                injected,
                detected: report.detections,
                recovered_exactly: u.as_slice() == clean.as_slice(),
                degraded: report.degraded,
                window_loads: loads,
            }
        })
        .collect()
}

fn run_guarded(v: &Image, params: &ChambolleParams, seed: u64, rate: f64) -> (Image, usize) {
    let (u, injected, _, _) = run_guarded_full(v, params, seed, rate);
    (u, injected)
}

fn run_guarded_full(
    v: &Image,
    params: &ChambolleParams,
    seed: u64,
    rate: f64,
) -> (Image, usize, chambolle_core::RecoveryReport, u64) {
    let mut accel = ChambolleAccel::new(AccelConfig::default());
    let mut injector = FaultInjector::new(FaultConfig {
        seed,
        bram_flip_rate: rate,
        lut_rate: rate / 8.0,
        datapath_rate: rate / 8.0,
    });
    let out = accel
        .denoise_pair_guarded(v, None, params, &mut injector, &AccelGuardConfig::default())
        .expect("guarded denoise failed");
    (
        out.u1,
        injector.injected(),
        out.report,
        out.stats.window_loads,
    )
}

/// Renders a sweep as a text table (one row per rate).
pub fn render_sweep(points: &[RobustnessPoint]) -> String {
    let mut out =
        String::from("rate        injected  detected  det/inj  exact  degraded  window loads\n");
    for p in points {
        out.push_str(&format!(
            "{:<10.1e}  {:>8}  {:>8}  {:>7.2}  {:>5}  {:>8}  {:>12}\n",
            p.bram_flip_rate,
            p.injected,
            p.detected,
            p.detection_ratio(),
            p.recovered_exactly,
            p.degraded,
            p.window_loads,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_point_is_clean_and_exact() {
        let pts = sweep_fault_rates(72, 60, 4, 11, &[0.0]);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].injected, 0);
        assert_eq!(pts[0].detected, 0);
        assert!(pts[0].recovered_exactly);
        assert!(!pts[0].degraded);
    }

    #[test]
    fn nonzero_rates_inject_detect_and_recover() {
        let pts = sweep_fault_rates(96, 80, 5, 23, &[2e-4, 1e-3]);
        let total_injected: usize = pts.iter().map(|p| p.injected).sum();
        assert!(total_injected > 0, "sweep rates too low to fire");
        for p in &pts {
            assert!(
                p.recovered_exactly,
                "rate {} failed to recover exactly: {p:?}",
                p.bram_flip_rate
            );
            if p.injected > 0 {
                assert!(p.detected > 0, "faults fired but none detected: {p:?}");
            }
        }
    }

    #[test]
    fn recovery_work_shows_up_in_window_loads() {
        let pts = sweep_fault_rates(96, 80, 5, 37, &[0.0, 2e-3]);
        assert!(pts[1].injected > 0);
        assert!(
            pts[1].window_loads > pts[0].window_loads,
            "recovery at rate 2e-3 should cost extra loads: {pts:?}"
        );
    }

    #[test]
    fn render_sweep_mentions_every_rate() {
        let pts = sweep_fault_rates(72, 60, 3, 5, &[0.0, 1e-3]);
        let table = render_sweep(&pts);
        assert!(table.contains("detected"));
        assert_eq!(table.lines().count(), 3);
    }
}
