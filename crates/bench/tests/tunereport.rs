//! Integration tests for the `tune` CLI surface and the `BENCH_pr9.json`
//! schema: flag parsing through the public library API, and validation of
//! a pr9 document assembled from a real search outcome — the same shape
//! the binary emits — plus rejection of every attestation the schema
//! demands.

use chambolle_bench::loadreport::SCHEMA;
use chambolle_bench::tunereport::{parse_args, validate_tuning, MIN_DIMENSIONS};
use chambolle_telemetry::json::JsonValue;
use chambolle_telemetry::Telemetry;
use chambolle_tune::{
    coordinate_descent, Fingerprint, SearchOptions, SearchOutcome, SearchSpace, Tunables,
};

fn strings(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| (*s).to_string()).collect()
}

#[test]
fn tune_flags_round_trip_through_the_public_parser() {
    let args = parse_args(&strings(&["--smoke", "--out", "r.json"])).expect("valid command line");
    assert!(args.smoke);
    assert_eq!(args.out_path(), "r.json");
    assert_eq!(args.profile_path(), chambolle_tune::DEFAULT_PROFILE_PATH);

    let defaulted = parse_args(&[]).expect("valid command line");
    assert_eq!(defaulted.out_path(), "BENCH_pr9.json");
    assert!(parse_args(&strings(&["--profile-out"])).is_err());
    assert!(parse_args(&strings(&["--bogus"])).is_err());
}

/// A real search over the smoke solver grid, driven by a synthetic cost so
/// the test is fast and deterministic.
fn searched_outcome() -> SearchOutcome {
    let cost = |t: &Tunables| {
        t.validate().ok()?;
        Some((t.tile_width as f64 - 128.0).abs() + t.halo_margin as f64 + 10.0)
    };
    coordinate_descent(
        &SearchSpace::smoke(4),
        Tunables::default(),
        &SearchOptions::default(),
        &Telemetry::disabled(),
        &mut cost.clone(),
        &mut cost.clone(),
    )
    .expect("measurable baseline")
}

/// Assembles the pr9 document the binary emits from a search outcome.
fn pr9_doc(outcome: &SearchOutcome) -> JsonValue {
    let workload = |name: &str, o: &SearchOutcome| {
        JsonValue::Object(vec![
            ("name".into(), name.into()),
            (
                "dimensions_searched".into(),
                (o.dimensions_searched as u64).into(),
            ),
            ("trials".into(), (o.trials.len() as u64).into()),
            ("pruned".into(), (o.pruned as u64).into()),
            ("baseline_proxy_ms".into(), o.baseline_proxy_ms.into()),
            ("best_proxy_ms".into(), o.best_proxy_ms.into()),
            ("baseline_full_ms".into(), o.baseline_full_ms.into()),
            ("best_full_ms".into(), o.best_full_ms.into()),
            ("speedup".into(), o.speedup().into()),
            ("best".into(), o.best.to_json()),
        ])
    };
    JsonValue::Object(vec![
        ("schema".into(), SCHEMA.into()),
        ("bench".into(), "pr9".into()),
        ("mode".into(), "smoke".into()),
        ("fingerprint".into(), Fingerprint::detect().to_json()),
        (
            "workloads".into(),
            JsonValue::Array(vec![workload("tiled_denoise", outcome)]),
        ),
        (
            "dimensions_searched_total".into(),
            (outcome.dimensions_searched as u64).into(),
        ),
        ("best".into(), outcome.best.to_json()),
        (
            "profile".into(),
            JsonValue::Object(vec![
                ("path".into(), "chambolle.profile.json".into()),
                ("reloaded".into(), JsonValue::Bool(true)),
                ("bit_identical".into(), JsonValue::Bool(true)),
                ("fast_within_tolerance".into(), JsonValue::Bool(true)),
                ("numerics".into(), "auto".into()),
            ]),
        ),
    ])
}

#[test]
fn a_document_from_a_real_search_outcome_validates() {
    let outcome = searched_outcome();
    assert!(
        outcome.dimensions_searched >= MIN_DIMENSIONS,
        "the smoke grid must satisfy the dimension floor"
    );
    let text = pr9_doc(&outcome).to_string_pretty();
    validate_tuning(&text).expect("pr9 document validates");
}

#[test]
fn the_validator_rejects_broken_attestations() {
    let outcome = searched_outcome();
    let good = pr9_doc(&outcome).to_string_pretty();

    // Wrong bench identifier.
    let wrong_bench = good.replace("\"pr9\"", "\"pr8\"");
    assert!(validate_tuning(&wrong_bench).is_err());

    // Too few searched dimensions.
    let dims = format!(
        "\"dimensions_searched_total\": {}",
        outcome.dimensions_searched
    );
    let shallow = good.replace(&dims, "\"dimensions_searched_total\": 2");
    assert!(
        validate_tuning(&shallow).is_err(),
        "fewer than {MIN_DIMENSIONS} dimensions must be rejected"
    );

    // A profile that did not reload, or changed pixels, is no profile.
    let unreloaded = good.replace("\"reloaded\": true", "\"reloaded\": false");
    assert!(validate_tuning(&unreloaded).is_err());
    let inexact = good.replace("\"bit_identical\": true", "\"bit_identical\": false");
    assert!(validate_tuning(&inexact).is_err());

    // A Fast winner outside the tolerance envelope, or a profile that does
    // not say which numerics tier it persisted, is rejected too.
    let breached = good.replace(
        "\"fast_within_tolerance\": true",
        "\"fast_within_tolerance\": false",
    );
    assert!(validate_tuning(&breached).is_err());
    let tierless = good.replace("\"numerics\": \"auto\"", "\"numerics\": \"quantum\"");
    assert!(validate_tuning(&tierless).is_err());

    // No workloads, no report.
    let doc = JsonValue::parse(&good).unwrap();
    let JsonValue::Object(mut fields) = doc else {
        panic!("document is an object")
    };
    for (key, value) in &mut fields {
        if key == "workloads" {
            *value = JsonValue::Array(vec![]);
        }
    }
    assert!(validate_tuning(&JsonValue::Object(fields).to_string()).is_err());
}
