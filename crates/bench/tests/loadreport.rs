//! Integration tests for the `loadgen` CLI surface and report schemas:
//! flag parsing through the public library API, and live `MetricsSnapshot`
//! scraping against a real TCP server validated against the schema the
//! chaos-soak report embeds.

use std::time::Duration;

use chambolle_bench::loadreport::{
    parse_args, validate_chaos, validate_metrics_snapshot, DEFAULT_SCRAPE_INTERVAL,
};
use chambolle_bench::workloads::timing_frame;
use chambolle_core::ChambolleParams;
use chambolle_service::{Priority, Service, ServiceClient, ServiceConfig, SloObjective, TcpServer};
use chambolle_telemetry::json::JsonValue;

fn strings(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| (*s).to_string()).collect()
}

#[test]
fn scrape_interval_flag_round_trips_through_the_public_parser() {
    let args = parse_args(&strings(&[
        "--chaos",
        "--smoke",
        "--scrape-interval-ms",
        "125",
    ]))
    .expect("valid command line");
    assert!(args.chaos && args.smoke);
    assert_eq!(args.scrape_interval, Duration::from_millis(125));
    assert_eq!(args.out_path(), "BENCH_pr7.json");

    let defaulted = parse_args(&strings(&["--chaos"])).expect("valid command line");
    assert_eq!(defaulted.scrape_interval, DEFAULT_SCRAPE_INTERVAL);

    assert!(parse_args(&strings(&["--scrape-interval-ms", "0"])).is_err());
    assert!(parse_args(&strings(&["--scrape-interval-ms", "never"])).is_err());
    assert!(parse_args(&strings(&["--scrape-interval-ms"])).is_err());
}

/// The scrape path the chaos soak uses, end to end: a live service behind a
/// TCP listener answers the `MetricsSnapshot` wire request with a document
/// that passes the exact validation the embedded report entries must pass.
#[test]
fn live_metrics_snapshot_scrape_passes_schema_validation() {
    let config = ServiceConfig::new(2, 16).with_slo(
        Priority::Interactive,
        SloObjective::new(Duration::from_secs(2), 0.99),
    );
    let service = Service::spawn(config);
    let server = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").expect("bind");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connect");

    // An empty snapshot must already be schema-complete.
    let idle = client.metrics().expect("metrics round-trip");
    let idle_doc = JsonValue::parse(&idle).expect("snapshot is valid JSON");
    validate_metrics_snapshot(&idle_doc).expect("idle snapshot validates");

    // After traffic, the same scrape must still validate and reflect it.
    let input = timing_frame(24, 24);
    let params = ChambolleParams::with_iterations(10);
    for _ in 0..3 {
        client
            .denoise(&input, &params, Priority::Interactive, None)
            .expect("denoise round-trip");
    }
    let busy = client.metrics().expect("metrics round-trip");
    let busy_doc = JsonValue::parse(&busy).expect("snapshot is valid JSON");
    validate_metrics_snapshot(&busy_doc).expect("post-traffic snapshot validates");
    let finished = busy_doc
        .get_path("traces.finished")
        .and_then(JsonValue::as_f64)
        .expect("traces.finished");
    assert!(
        finished >= 3.0,
        "three traced requests finished: {finished}"
    );
    let lanes = busy_doc
        .get_path("slo.lanes")
        .and_then(JsonValue::as_array)
        .expect("slo.lanes");
    assert!(!lanes.is_empty(), "the configured SLO lane is reported");

    drop(client);
    server.shutdown();
    service.shutdown();
}

#[test]
fn chaos_validator_requires_the_embedded_scrape_series() {
    // A structurally-complete pr7 document minus the scrapes array must be
    // rejected; with a valid scrape entry it must pass.
    let base = r#"{
        "schema": "chambolle.bench.v1", "bench": "pr7", "mode": "smoke",
        "seed": 1, "requests": 2, "completed": 2, "attempts": 2,
        "retries": 0, "retry_rate": 0.0, "recovered": 0, "exhausted": 0,
        "wall_s": 0.1, "p50_us": 10, "p99_us": 20, "idempotent_hits": 0,
        "scrape_interval_ms": 250,
        "breaker": {"opened": 0, "half_open": 0, "closed": 0},
        "chaos": {"resets": 0, "corruptions": 0, "stalls": 0,
                  "partial_writes": 0, "server_panics": 0, "faults_total": 0}"#;
    let without = format!("{base}}}");
    assert!(
        validate_chaos(&without).is_err(),
        "missing scrapes must fail"
    );
    let empty = format!("{base}, \"scrapes\": []}}");
    assert!(validate_chaos(&empty).is_err(), "empty scrapes must fail");

    // Pull a real snapshot off a live service for the happy path.
    let service = Service::spawn(ServiceConfig::new(1, 8));
    let server = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").expect("bind");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connect");
    let snapshot = client.metrics().expect("metrics round-trip");
    drop(client);
    server.shutdown();
    service.shutdown();

    let with = format!("{base}, \"scrapes\": [{{\"t_ms\": 0, \"snapshot\": {snapshot}}}]}}");
    validate_chaos(&with).expect("document with a live scrape validates");
}
