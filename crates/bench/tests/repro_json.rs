//! End-to-end check of `repro --json`: spawns the real binary, parses its
//! stdout with the telemetry JSON parser, and asserts the report carries
//! every field the run-report schema promises — solver iteration counts and
//! duality-gap trajectory, accelerator cycle totals, per-port BRAM access
//! counts, the halo-redundancy ratio, and the fault-recovery counters.

use std::process::Command;

use chambolle_telemetry::json::JsonValue;
use chambolle_telemetry::report::RunReport;

fn run_repro(args: &[&str]) -> JsonValue {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary must spawn");
    assert!(
        output.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("stdout must be UTF-8");
    assert!(!stdout.trim().is_empty(), "repro {args:?} printed nothing");
    JsonValue::parse(&stdout).expect("stdout must be valid JSON")
}

fn metric_value(doc: &JsonValue, name: &str) -> f64 {
    doc.get_path(&format!("metrics.{name}.value"))
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("metric {name} missing from report"))
}

#[test]
fn json_report_contains_every_promised_field() {
    let doc = run_repro(&["--json"]);
    RunReport::validate(&doc).expect("schema-valid run report");
    assert_eq!(doc.get("tool").and_then(JsonValue::as_str), Some("repro"));

    // Solver: iteration count (metric and section) and the gap trajectory.
    assert_eq!(metric_value(&doc, "solver.iterations"), 200.0);
    assert_eq!(
        doc.get_path("sections.solver.iterations")
            .and_then(JsonValue::as_f64),
        Some(200.0)
    );
    let trajectory = doc
        .get_path("sections.solver.trajectory")
        .and_then(JsonValue::as_array)
        .expect("trajectory array");
    assert!(!trajectory.is_empty(), "trajectory must have samples");
    let mut last_gap = f64::INFINITY;
    for point in trajectory {
        for field in ["iteration", "energy", "gap"] {
            assert!(
                point.get(field).and_then(JsonValue::as_f64).is_some(),
                "trajectory point missing {field}"
            );
        }
        let gap = point.get("gap").and_then(JsonValue::as_f64).unwrap();
        assert!(gap < last_gap, "duality gap must shrink monotonically");
        last_gap = gap;
    }

    // Tiling: halo-redundancy ratio in (0, 1).
    let redundancy = metric_value(&doc, "tiling.redundancy_ratio");
    assert!(
        redundancy > 0.0 && redundancy < 1.0,
        "redundancy ratio {redundancy} out of range"
    );

    // Worker pool: the pooled tiled run must account its scheduling. The
    // steal count is scheduling-dependent (possibly zero) but must be
    // reported; broadcasts only happen when the pool has >1 worker.
    assert!(metric_value(&doc, "par.tasks") > 0.0);
    assert!(metric_value(&doc, "par.broadcasts") > 0.0);
    assert!(metric_value(&doc, "par.steal_count") >= 0.0);

    // Accelerator: cycle totals and per-port BRAM access counts.
    assert!(metric_value(&doc, "hwsim.cycles") > 0.0);
    assert!(metric_value(&doc, "hwsim.frames") >= 2.0);
    for name in [
        "hwsim.bram.port1.reads",
        "hwsim.bram.port2.reads",
        "hwsim.bram.port1.writes",
        "hwsim.bram.port2.writes",
        "hwsim.bram.port1.idle_cycles",
        "hwsim.bram.port2.idle_cycles",
    ] {
        let _ = metric_value(&doc, name);
    }
    // Figure 3's port discipline: reads on port 1, state writes on port 2.
    assert!(metric_value(&doc, "hwsim.bram.port1.reads") > 0.0);
    assert!(metric_value(&doc, "hwsim.bram.port2.writes") > 0.0);
    assert!(metric_value(&doc, "hwsim.sqrt.lut_lookups") > 0.0);

    // Fault-recovery counters from the guarded run (the deterministic seed
    // fires at least one upset).
    assert!(metric_value(&doc, "guard.detections") > 0.0);
    assert!(metric_value(&doc, "guard.recoveries") > 0.0);
    assert_eq!(metric_value(&doc, "guard.fallbacks"), 0.0);

    // Throughput-model gauges.
    assert!(metric_value(&doc, "timing.model.fps") > 0.0);
    assert!(metric_value(&doc, "timing.model.frame_cycles") > 0.0);

    // Embedded Table I / Table II records.
    assert_eq!(
        doc.get_path("sections.table1.resources.used.dsps")
            .and_then(JsonValue::as_f64),
        Some(62.0)
    );
    let rows = doc
        .get_path("sections.table2.rows")
        .and_then(JsonValue::as_array)
        .expect("table2 rows");
    assert!(rows.len() > 10, "table2 must include baselines + our rows");
}

#[test]
fn json_single_table_reports_are_schema_valid() {
    let t1 = run_repro(&["--json", "table1"]);
    RunReport::validate(&t1).expect("table1 report");
    assert!(t1.get_path("sections.table1.breakdown").is_some());
    assert!(
        t1.get_path("sections.solver").is_none(),
        "table1 report must not run the solver suite"
    );

    let t2 = run_repro(&["--json", "table2"]);
    RunReport::validate(&t2).expect("table2 report");
    let rows = t2
        .get_path("sections.table2.rows")
        .and_then(JsonValue::as_array)
        .expect("rows");
    for row in rows {
        for field in ["reference", "device", "iterations", "fps_hi"] {
            assert!(row.get(field).is_some(), "table2 row missing {field}");
        }
    }
}

#[test]
fn json_mode_rejects_unknown_experiments() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--json", "fig1"])
        .output()
        .expect("repro binary must spawn");
    assert!(
        !output.status.success(),
        "unsupported --json mode must fail"
    );
}
