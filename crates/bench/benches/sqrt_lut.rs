//! Throughput of the 256-entry LUT square root against `f64::sqrt` — the
//! Section V-C trade (the LUT exists because exact square roots are the
//! PE-V's critical path).

use chambolle_fixed::SqrtLut;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_sqrt(c: &mut Criterion) {
    let lut = SqrtLut::new();
    let inputs: Vec<u32> = (0..4096)
        .map(|i| (i * 2654435761u64 as usize) as u32 & 0xFF_FFFF)
        .collect();

    let mut group = c.benchmark_group("sqrt");
    group.bench_function("lut_q24_8", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &x in &inputs {
                acc = acc.wrapping_add(lut.sqrt_q24_8(x) as u64);
            }
            acc
        })
    });
    group.bench_function("exact_f64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &x in &inputs {
                acc = acc.wrapping_add(SqrtLut::sqrt_exact_q24_8(x) as u64);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sqrt);
criterion_main!(benches);
