//! Cost of the guarded frame scheduler: the fault-free guard overhead
//! (checksums + feasibility monitors) and the price of recovery at
//! increasing upset rates.

use chambolle_bench::robustness::sweep_fault_rates;
use chambolle_bench::workloads::timing_frame;
use chambolle_core::ChambolleParams;
use chambolle_hwsim::{AccelConfig, AccelGuardConfig, ChambolleAccel, FaultConfig, FaultInjector};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_robustness(c: &mut Criterion) {
    let mut group = c.benchmark_group("robustness");
    group.sample_size(10);
    let v = timing_frame(96, 80);
    let params = ChambolleParams::with_iterations(5);

    group.bench_function("unguarded_96x80_5iter", |b| {
        b.iter(|| {
            let mut accel = ChambolleAccel::new(AccelConfig::default());
            accel.denoise_pair(&v, None, &params).unwrap()
        })
    });

    for (label, rate) in [("guarded_clean", 0.0), ("guarded_faulty_1e-3", 1e-3)] {
        group.bench_function(format!("{label}_96x80_5iter"), |b| {
            b.iter(|| {
                let mut accel = ChambolleAccel::new(AccelConfig::default());
                let mut injector = FaultInjector::new(FaultConfig {
                    seed: 2011,
                    bram_flip_rate: rate,
                    lut_rate: rate / 8.0,
                    datapath_rate: rate / 8.0,
                });
                accel
                    .denoise_pair_guarded(
                        &v,
                        None,
                        &params,
                        &mut injector,
                        &AccelGuardConfig::default(),
                    )
                    .unwrap()
            })
        });
    }

    group.bench_function("sweep_3_rates_72x60", |b| {
        b.iter(|| sweep_fault_rates(72, 60, 3, 2011, &[0.0, 5e-4, 2e-3]))
    });
    group.finish();
}

criterion_group!(benches, bench_robustness);
criterion_main!(benches);
