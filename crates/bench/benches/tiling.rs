//! Ablation of the sliding-window design choices: merge factor K, tile size
//! and thread count (DESIGN.md "design choices to ablate").

use chambolle_bench::workloads::timing_frame;
use chambolle_core::{chambolle_iterate_tiled, ChambolleParams, DualField, TileConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiling");
    group.sample_size(10);
    let (w, h) = (256usize, 192usize);
    let v = timing_frame(w, h);
    let params = ChambolleParams::with_iterations(8);

    for k in [1u32, 2, 4] {
        let cfg = TileConfig::new(92, 88, k, 2).expect("valid config");
        group.bench_with_input(BenchmarkId::new("merge_factor", k), &v, |b, v| {
            b.iter(|| {
                let mut p = DualField::zeros(w, h);
                chambolle_iterate_tiled(&mut p, v, &params, 8, &cfg);
                p
            })
        });
    }
    for (tw, th) in [(46usize, 44usize), (92, 88), (184, 176)] {
        let cfg = TileConfig::new(tw, th, 2, 2).expect("valid config");
        group.bench_with_input(
            BenchmarkId::new("tile_size", format!("{tw}x{th}")),
            &v,
            |b, v| {
                b.iter(|| {
                    let mut p = DualField::zeros(w, h);
                    chambolle_iterate_tiled(&mut p, v, &params, 8, &cfg);
                    p
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tiling);
criterion_main!(benches);
