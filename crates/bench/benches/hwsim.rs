//! Simulation speed of the cycle-level array model (host seconds per
//! simulated window) plus the analytic cycle model — how long Table II rows
//! take to *evaluate*, not hardware performance itself.

use chambolle_bench::workloads::timing_frame;
use chambolle_hwsim::{
    quantize_input, AccelConfig, ArrayConfig, HwParams, PeArray, ThroughputModel,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_hwsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("hwsim");
    group.sample_size(10);
    let words = quantize_input(&timing_frame(92, 88));
    let params = HwParams::standard(1);
    group.bench_function("window_92x88_1iter", |b| {
        b.iter(|| {
            let mut array = PeArray::new(ArrayConfig::paper());
            array.process_window(&words, &params)
        })
    });
    let model = ThroughputModel::new(AccelConfig::default());
    group.bench_function("analytic_frame_model_1024x768", |b| {
        b.iter(|| model.frame_cycles(1024, 768, 200))
    });
    group.finish();
}

criterion_group!(benches, bench_hwsim);
criterion_main!(benches);
