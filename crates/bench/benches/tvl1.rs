//! Wall-time of a full TV-L1 optical-flow estimation (the application the
//! paper profiles in its introduction).

use chambolle_core::{ChambolleParams, TvL1Params, TvL1Solver};
use chambolle_imaging::{render_pair, Motion, NoiseTexture};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tvl1(c: &mut Criterion) {
    let mut group = c.benchmark_group("tvl1");
    group.sample_size(10);
    let scene = NoiseTexture::new(3);
    for &(w, h) in &[(64usize, 48usize), (96, 72)] {
        let pair = render_pair(&scene, w, h, Motion::Translation { du: 1.5, dv: 0.5 });
        let params = TvL1Params::new(38.0, ChambolleParams::with_iterations(20), 2, 3, 3)
            .expect("valid params");
        group.bench_with_input(
            BenchmarkId::new("flow", format!("{w}x{h}")),
            &pair,
            |b, p| {
                let solver = TvL1Solver::sequential(params);
                b.iter(|| solver.flow(&p.i0, &p.i1).expect("valid frames"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tvl1);
criterion_main!(benches);
