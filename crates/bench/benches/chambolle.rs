//! Wall-time of the Chambolle inner solver: sequential vs tiled-parallel.
//!
//! The counterpart to Table II's software baselines — the shapes here are
//! kept small so a full `cargo bench` stays fast; the `repro` binary measures
//! the Table II sizes directly.

use chambolle_bench::workloads::timing_frame;
use chambolle_core::{
    chambolle_iterate, chambolle_iterate_tiled, ChambolleParams, DualField, TileConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_chambolle(c: &mut Criterion) {
    let mut group = c.benchmark_group("chambolle");
    group.sample_size(10);
    let params = ChambolleParams::with_iterations(10);

    for &(w, h) in &[(128usize, 128usize), (256, 256)] {
        let v = timing_frame(w, h);
        group.bench_with_input(
            BenchmarkId::new("sequential", format!("{w}x{h}x10")),
            &v,
            |b, v| {
                b.iter(|| {
                    let mut p = DualField::zeros(w, h);
                    chambolle_iterate(&mut p, v, &params, 10);
                    p
                })
            },
        );
        for threads in [1usize, 2] {
            let cfg = TileConfig::new(92, 88, 2, threads).expect("valid config");
            group.bench_with_input(
                BenchmarkId::new(format!("tiled-{threads}t"), format!("{w}x{h}x10")),
                &v,
                |b, v| {
                    b.iter(|| {
                        let mut p = DualField::zeros(w, h);
                        chambolle_iterate_tiled(&mut p, v, &params, 10, &cfg);
                        p
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chambolle);
criterion_main!(benches);
