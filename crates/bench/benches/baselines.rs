//! Wall-time of the baseline estimators vs. TV-L1 (context for the accuracy
//! ladder in `repro -- accuracy`).

use chambolle_core::{
    block_matching_flow, BlockMatchingParams, ChambolleParams, HornSchunck, HornSchunckParams,
    TvL1Params, TvL1Solver,
};
use chambolle_imaging::{render_pair, Motion, NoiseTexture};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_methods");
    group.sample_size(10);
    let pair = render_pair(
        &NoiseTexture::new(8),
        96,
        72,
        Motion::Translation { du: 2.0, dv: 1.0 },
    );

    let tvl1 = TvL1Solver::sequential(
        TvL1Params::new(38.0, ChambolleParams::with_iterations(20), 3, 3, 4).expect("params"),
    );
    group.bench_function("tvl1_96x72", |b| {
        b.iter(|| tvl1.flow(&pair.i0, &pair.i1).expect("valid frames"))
    });

    let hs = HornSchunck::new(HornSchunckParams::new(0.05, 60, 3, 4).expect("params"));
    group.bench_function("horn_schunck_96x72", |b| {
        b.iter(|| hs.flow(&pair.i0, &pair.i1).expect("valid frames"))
    });

    let bm = BlockMatchingParams::default();
    group.bench_function("block_matching_96x72", |b| {
        b.iter(|| block_matching_flow(&pair.i0, &pair.i1, &bm).expect("valid frames"))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
