//! The packed 32-bit BRAM word of the accelerator.
//!
//! Section V-B: *"32 bit blocks of data are stored in each address. The 32
//! bits encode `v`, which requires 13 bits, followed by `c_px` and `c_py`,
//! which require 9 bits each."* That totals 31 bits; the remaining LSB is a
//! spare and always stored as zero.
//!
//! Bit layout (MSB first): `[31:19] v`, `[18:10] px`, `[9:1] py`, `[0]`
//! spare. All three fields are two's-complement fixed-point values with 8
//! fractional bits:
//!
//! - `v`: Q4.8 signed, 13 bits → range `[-16, 16)`;
//! - `px`, `py`: Q0.8 signed, 9 bits → range `[-1, 1)` — the Chambolle dual
//!   variable is constrained to the unit ball, so 9 bits suffice.

use std::fmt;

use crate::q::Fixed;

/// Fraction bits shared by every field of the word.
pub const WORD_FRAC: u32 = 8;
/// Width of the `v` field in bits.
pub const V_BITS: u32 = 13;
/// Width of the `px`/`py` fields in bits.
pub const P_BITS: u32 = 9;

/// The Q-format used inside the packed word (8 fraction bits).
pub type WordFixed = Fixed<WORD_FRAC>;

/// A decoded BRAM word: the denoising target `v` and the dual vector
/// `(px, py)` of one matrix element.
///
/// # Examples
///
/// ```
/// use chambolle_fixed::{PackedWord, WordFixed};
///
/// let w = PackedWord::new(
///     WordFixed::from_f32(2.5),
///     WordFixed::from_f32(-0.25),
///     WordFixed::from_f32(0.75),
/// )?;
/// let bits = w.to_bits();
/// assert_eq!(PackedWord::from_bits(bits), w);
/// # Ok::<(), chambolle_fixed::PackWordError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PackedWord {
    v: WordFixed,
    px: WordFixed,
    py: WordFixed,
}

impl PackedWord {
    /// Builds a word from field values.
    ///
    /// # Errors
    ///
    /// Returns [`PackWordError`] if a field does not fit its bit width
    /// (`v` in 13 bits, `px`/`py` in 9 bits).
    pub fn new(v: WordFixed, px: WordFixed, py: WordFixed) -> Result<Self, PackWordError> {
        if !v.fits_in(V_BITS) {
            return Err(PackWordError {
                field: "v",
                value: v,
            });
        }
        if !px.fits_in(P_BITS) {
            return Err(PackWordError {
                field: "px",
                value: px,
            });
        }
        if !py.fits_in(P_BITS) {
            return Err(PackWordError {
                field: "py",
                value: py,
            });
        }
        Ok(PackedWord { v, px, py })
    }

    /// Builds a word, saturating each field into its bit width instead of
    /// failing — the behaviour of the RTL write path.
    pub fn new_saturating(v: WordFixed, px: WordFixed, py: WordFixed) -> Self {
        PackedWord {
            v: v.saturate_to(V_BITS),
            px: px.saturate_to(P_BITS),
            py: py.saturate_to(P_BITS),
        }
    }

    /// Decodes a raw 32-bit memory word.
    pub fn from_bits(bits: u32) -> Self {
        let v = sign_extend(bits >> 19, V_BITS);
        let px = sign_extend((bits >> 10) & 0x1FF, P_BITS);
        let py = sign_extend((bits >> 1) & 0x1FF, P_BITS);
        PackedWord {
            v: WordFixed::from_bits(v),
            px: WordFixed::from_bits(px),
            py: WordFixed::from_bits(py),
        }
    }

    /// Encodes to the raw 32-bit memory word.
    pub fn to_bits(self) -> u32 {
        let v = (self.v.to_bits() as u32) & mask(V_BITS);
        let px = (self.px.to_bits() as u32) & mask(P_BITS);
        let py = (self.py.to_bits() as u32) & mask(P_BITS);
        (v << 19) | (px << 10) | (py << 1)
    }

    /// The `v` field (denoising target, Q4.8).
    pub fn v(&self) -> WordFixed {
        self.v
    }

    /// The `px` field (dual x-component, Q0.8).
    pub fn px(&self) -> WordFixed {
        self.px
    }

    /// The `py` field (dual y-component, Q0.8).
    pub fn py(&self) -> WordFixed {
        self.py
    }

    /// Copy of the word with the dual vector replaced (the PE-V writeback:
    /// `v` is read-only during Chambolle iterations, only `px`/`py` change).
    pub fn with_p(self, px: WordFixed, py: WordFixed) -> Self {
        PackedWord {
            v: self.v,
            px: px.saturate_to(P_BITS),
            py: py.saturate_to(P_BITS),
        }
    }
}

fn mask(bits: u32) -> u32 {
    (1u32 << bits) - 1
}

fn sign_extend(raw: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((raw << shift) as i32) >> shift
}

/// Error returned when a field value exceeds its packed bit width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackWordError {
    field: &'static str,
    value: WordFixed,
}

impl fmt::Display for PackWordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "field {} value {} does not fit its packed bit width",
            self.field, self.value
        )
    }
}

impl std::error::Error for PackWordError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(v: f32) -> WordFixed {
        WordFixed::from_f32(v)
    }

    #[test]
    fn roundtrip_simple() {
        let w = PackedWord::new(q(2.5), q(-0.25), q(0.75)).unwrap();
        let back = PackedWord::from_bits(w.to_bits());
        assert_eq!(back, w);
        assert_eq!(back.v().to_f32(), 2.5);
        assert_eq!(back.px().to_f32(), -0.25);
        assert_eq!(back.py().to_f32(), 0.75);
    }

    #[test]
    fn roundtrip_extremes() {
        // v: 13-bit signed -> [-4096, 4095] raw; px/py: [-256, 255].
        let w = PackedWord::new(
            WordFixed::from_bits(-4096),
            WordFixed::from_bits(255),
            WordFixed::from_bits(-256),
        )
        .unwrap();
        assert_eq!(PackedWord::from_bits(w.to_bits()), w);
    }

    #[test]
    fn roundtrip_exhaustive_px() {
        for raw in -256..=255 {
            let w = PackedWord::new(q(0.0), WordFixed::from_bits(raw), q(0.0)).unwrap();
            assert_eq!(PackedWord::from_bits(w.to_bits()).px().to_bits(), raw);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(PackedWord::new(q(16.0), q(0.0), q(0.0)).is_err()); // v >= 16
        assert!(PackedWord::new(q(0.0), q(1.0), q(0.0)).is_err()); // px >= 1
        assert!(PackedWord::new(q(0.0), q(0.0), q(-1.5)).is_err());
        assert!(PackedWord::new(q(15.99), q(0.996), q(-1.0)).is_ok());
    }

    #[test]
    fn saturating_constructor_clamps() {
        let w = PackedWord::new_saturating(q(100.0), q(3.0), q(-3.0));
        assert_eq!(w.v().to_bits(), 4095);
        assert_eq!(w.px().to_bits(), 255);
        assert_eq!(w.py().to_bits(), -256);
    }

    #[test]
    fn spare_bit_is_zero() {
        let w = PackedWord::new(q(-1.0), q(0.5), q(-0.5)).unwrap();
        assert_eq!(w.to_bits() & 1, 0);
    }

    #[test]
    fn with_p_keeps_v() {
        let w = PackedWord::new(q(3.0), q(0.1), q(0.1)).unwrap();
        let w2 = w.with_p(q(-0.5), q(0.25));
        assert_eq!(w2.v(), w.v());
        assert_eq!(w2.px().to_f32(), -0.5);
        assert_eq!(w2.py().to_f32(), 0.25);
    }

    #[test]
    fn field_packing_is_disjoint() {
        // Flipping one field must not disturb the others.
        let base = PackedWord::new(q(1.0), q(0.5), q(-0.5)).unwrap();
        let only_v = PackedWord::new(q(2.0), q(0.5), q(-0.5)).unwrap();
        let xor = base.to_bits() ^ only_v.to_bits();
        assert_eq!(xor & ((1 << 19) - 1), 0, "v change leaked below bit 19");
    }
}
