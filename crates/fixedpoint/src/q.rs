//! Signed Q-format fixed-point arithmetic on `i32`, modeling the FPGA
//! datapath of the accelerator.
//!
//! The paper's BRAM word stores `v` as a 13-bit and `px`/`py` as 9-bit
//! fixed-point values; the PE datapath widens to 32 bits (24 integer + 8
//! fractional for the square-root input). All of those share an 8-bit
//! fractional part, so a single const-generic [`Fixed`] type with `FRAC`
//! fraction bits covers every signal in the design.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A signed fixed-point number with `FRAC` fractional bits stored in an
/// `i32`.
///
/// Arithmetic saturates on overflow (the hardware's guard bits prevent
/// overflow in practice; saturation makes out-of-range behaviour explicit
/// instead of wrapping silently). Multiplication and division truncate
/// toward negative infinity, matching two's-complement arithmetic right
/// shifts in the RTL.
///
/// # Examples
///
/// ```
/// use chambolle_fixed::Fixed;
///
/// type Q8 = Fixed<8>;
/// let a = Q8::from_f32(1.5);
/// let b = Q8::from_f32(0.25);
/// assert_eq!((a * b).to_f32(), 0.375);
/// assert_eq!((a + b).to_f32(), 1.75);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Fixed<const FRAC: u32>(i32);

/// Q24.8: the wide datapath format (square-root input, accumulators).
pub type Q24_8 = Fixed<8>;

impl<const FRAC: u32> Fixed<FRAC> {
    /// The value `0`.
    pub const ZERO: Self = Fixed(0);
    /// The value `1`.
    pub const ONE: Self = Fixed(1 << FRAC);
    /// Smallest positive representable increment (`2^-FRAC`).
    pub const EPSILON: Self = Fixed(1);
    /// Largest representable value.
    pub const MAX: Self = Fixed(i32::MAX);
    /// Smallest (most negative) representable value.
    pub const MIN: Self = Fixed(i32::MIN);

    /// Creates a value from its raw two's-complement bit pattern.
    pub const fn from_bits(bits: i32) -> Self {
        Fixed(bits)
    }

    /// The raw two's-complement bit pattern.
    pub const fn to_bits(self) -> i32 {
        self.0
    }

    /// Converts from `f32`, rounding to the nearest representable value and
    /// saturating out-of-range inputs (NaN maps to zero).
    pub fn from_f32(v: f32) -> Self {
        if v.is_nan() {
            return Self::ZERO;
        }
        let scaled = (v as f64 * (1i64 << FRAC) as f64).round();
        Fixed(scaled.clamp(i32::MIN as f64, i32::MAX as f64) as i32)
    }

    /// Converts from an integer, saturating on overflow.
    pub fn from_int(v: i32) -> Self {
        let wide = (v as i64) << FRAC;
        Fixed(wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// The exact `f32` value (always exact for `FRAC <= 8` magnitudes in
    /// range).
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / (1i64 << FRAC) as f32
    }

    /// The exact `f64` value.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1i64 << FRAC) as f64
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Self) -> Self {
        Fixed(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Fixed(self.0.saturating_sub(rhs.0))
    }

    /// Fixed-point multiplication: 64-bit product, arithmetic shift right by
    /// `FRAC` (truncation toward −∞), then saturation to 32 bits.
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = (self.0 as i64 * rhs.0 as i64) >> FRAC;
        Fixed(wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Fixed-point division: `(self << FRAC) / rhs` with 64-bit numerator,
    /// truncating toward zero (the behaviour of a restoring divider).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn saturating_div(self, rhs: Self) -> Self {
        assert!(rhs.0 != 0, "fixed-point division by zero");
        let wide = ((self.0 as i64) << FRAC) / rhs.0 as i64;
        Fixed(wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Absolute value (saturates `MIN` to `MAX`).
    pub fn abs(self) -> Self {
        if self.0 == i32::MIN {
            Self::MAX
        } else {
            Fixed(self.0.abs())
        }
    }

    /// `true` if the value fits in a `bits`-wide two's-complement field.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 32.
    pub fn fits_in(self, bits: u32) -> bool {
        assert!((1..=32).contains(&bits), "field width must be 1..=32 bits");
        if bits == 32 {
            return true;
        }
        let lo = -(1i32 << (bits - 1));
        let hi = (1i32 << (bits - 1)) - 1;
        (lo..=hi).contains(&self.0)
    }

    /// Clamps into a `bits`-wide two's-complement field, like a saturating
    /// width reduction in the RTL.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 32.
    pub fn saturate_to(self, bits: u32) -> Self {
        assert!((1..=32).contains(&bits), "field width must be 1..=32 bits");
        if bits == 32 {
            return self;
        }
        let lo = -(1i32 << (bits - 1));
        let hi = (1i32 << (bits - 1)) - 1;
        Fixed(self.0.clamp(lo, hi))
    }
}

impl<const FRAC: u32> Add for Fixed<FRAC> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl<const FRAC: u32> AddAssign for Fixed<FRAC> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const FRAC: u32> Sub for Fixed<FRAC> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl<const FRAC: u32> SubAssign for Fixed<FRAC> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const FRAC: u32> Mul for Fixed<FRAC> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl<const FRAC: u32> Div for Fixed<FRAC> {
    type Output = Self;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Self) -> Self {
        self.saturating_div(rhs)
    }
}

impl<const FRAC: u32> Neg for Fixed<FRAC> {
    type Output = Self;
    fn neg(self) -> Self {
        Fixed(0i32.saturating_sub(self.0))
    }
}

impl<const FRAC: u32> fmt::Debug for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed<{}>({} = {})", FRAC, self.0, self.to_f64())
    }
}

impl<const FRAC: u32> fmt::Display for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl<const FRAC: u32> From<i16> for Fixed<FRAC> {
    fn from(v: i16) -> Self {
        Self::from_int(v as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Q8 = Fixed<8>;

    #[test]
    fn constants() {
        assert_eq!(Q8::ZERO.to_f32(), 0.0);
        assert_eq!(Q8::ONE.to_f32(), 1.0);
        assert_eq!(Q8::EPSILON.to_f32(), 1.0 / 256.0);
    }

    #[test]
    fn f32_roundtrip_on_grid_values() {
        for i in -1000..1000 {
            let v = i as f32 / 256.0;
            assert_eq!(Q8::from_f32(v).to_f32(), v);
        }
    }

    #[test]
    fn from_f32_rounds_to_nearest() {
        assert_eq!(Q8::from_f32(0.0019), Q8::from_bits(0)); // 0.486 LSB
        assert_eq!(Q8::from_f32(0.0021), Q8::from_bits(1)); // 0.54 LSB
        assert_eq!(Q8::from_f32(f32::NAN), Q8::ZERO);
    }

    #[test]
    fn from_f32_saturates() {
        assert_eq!(Q8::from_f32(1e12), Q8::MAX);
        assert_eq!(Q8::from_f32(-1e12), Q8::MIN);
    }

    #[test]
    fn mul_truncates_toward_neg_infinity() {
        let a = Q8::from_bits(3); // 3/256
        let b = Q8::from_bits(-1); // -1/256
                                   // exact product = -3/65536 = -0.01171875/256; >> 8 floors to -1 bit
        assert_eq!((a * b).to_bits(), -1);
        let c = Q8::from_bits(1);
        assert_eq!((a * c).to_bits(), 0);
    }

    #[test]
    fn div_matches_float_within_one_lsb() {
        let a = Q8::from_f32(3.0);
        let b = Q8::from_f32(1.5);
        assert_eq!((a / b).to_f32(), 2.0);
        let c = Q8::from_f32(1.0) / Q8::from_f32(3.0);
        assert!((c.to_f32() - 1.0 / 3.0).abs() <= 1.0 / 256.0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Q8::ONE / Q8::ZERO;
    }

    #[test]
    fn saturation_on_add() {
        assert_eq!(Q8::MAX + Q8::ONE, Q8::MAX);
        assert_eq!(Q8::MIN - Q8::ONE, Q8::MIN);
    }

    #[test]
    fn neg_and_abs() {
        let v = Q8::from_f32(-2.5);
        assert_eq!((-v).to_f32(), 2.5);
        assert_eq!(v.abs().to_f32(), 2.5);
        assert_eq!(Q8::MIN.abs(), Q8::MAX);
        assert_eq!(-Q8::MIN, Q8::MAX);
    }

    #[test]
    fn field_width_checks() {
        let v = Q8::from_bits(255);
        assert!(v.fits_in(9));
        let w = Q8::from_bits(256);
        assert!(!w.fits_in(9));
        assert!(w.fits_in(10));
        assert_eq!(w.saturate_to(9).to_bits(), 255);
        assert_eq!(Q8::from_bits(-257).saturate_to(9).to_bits(), -256);
        assert!(Q8::from_bits(-256).fits_in(9));
    }

    #[test]
    fn from_int_and_i16() {
        assert_eq!(Q8::from_int(3).to_f32(), 3.0);
        assert_eq!(Q8::from(-2i16).to_f32(), -2.0);
        // i32::MAX << 8 must saturate rather than wrap.
        assert_eq!(Q8::from_int(i32::MAX), Q8::MAX);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let v = Q8::from_f32(1.25);
        assert_eq!(format!("{v}"), "1.25");
        assert!(format!("{v:?}").contains("Fixed<8>"));
    }

    #[test]
    fn ordering_follows_value() {
        assert!(Q8::from_f32(-1.0) < Q8::ZERO);
        assert!(Q8::from_f32(0.5) < Q8::ONE);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Exact rational value of a Q8 number: bits / 256.
        fn exact(v: Q8) -> i64 {
            v.to_bits() as i64
        }

        proptest! {
            /// Addition is exact whenever it does not saturate.
            #[test]
            fn add_is_exact_without_saturation(a in -1_000_000i32..1_000_000, b in -1_000_000i32..1_000_000) {
                let fa = Q8::from_bits(a);
                let fb = Q8::from_bits(b);
                prop_assert_eq!(exact(fa + fb), a as i64 + b as i64);
            }

            /// Multiplication truncates toward negative infinity by at most
            /// one LSB: floor(a*b/256) exactly.
            #[test]
            fn mul_is_floor_of_exact_product(a in -60_000i32..60_000, b in -60_000i32..60_000) {
                let fa = Q8::from_bits(a);
                let fb = Q8::from_bits(b);
                let exact_bits = (a as i64 * b as i64) >> 8; // arithmetic shift = floor
                prop_assert_eq!(exact(fa * fb), exact_bits);
            }

            /// Division truncates toward zero: trunc((a<<8)/b).
            #[test]
            fn div_is_trunc_of_exact_quotient(a in -1_000_000i32..1_000_000, b in 1i32..100_000) {
                let fa = Q8::from_bits(a);
                let fb = Q8::from_bits(b);
                prop_assert_eq!(exact(fa / fb), ((a as i64) << 8) / b as i64);
            }

            /// Negation is an involution away from the saturation rail.
            #[test]
            fn neg_involution(a in (i32::MIN + 1)..i32::MAX) {
                let f = Q8::from_bits(a);
                prop_assert_eq!(-(-f), f);
            }

            /// abs is non-negative and |x|^2 == x^2 in the fixed arithmetic.
            #[test]
            fn abs_square_identity(a in -40_000i32..40_000) {
                let f = Q8::from_bits(a);
                prop_assert!(f.abs() >= Q8::ZERO);
                prop_assert_eq!(f * f, f.abs() * f.abs());
            }

            /// Saturating width reduction is idempotent and order-preserving.
            #[test]
            fn saturate_to_is_monotone(a in any::<i32>(), b in any::<i32>()) {
                let fa = Q8::from_bits(a).saturate_to(9);
                let fb = Q8::from_bits(b).saturate_to(9);
                prop_assert_eq!(fa.saturate_to(9), fa);
                if a <= b {
                    prop_assert!(fa <= fb);
                }
                prop_assert!(fa.fits_in(9));
            }

            /// Round-trip through f64 is exact for in-range values.
            #[test]
            fn f64_roundtrip(a in -1_000_000i32..1_000_000) {
                let f = Q8::from_bits(a);
                prop_assert_eq!(Q8::from_f32(f.to_f64() as f32), f);
            }
        }
    }
}
