//! Fixed-point datapath substrate of the DATE'11 Chambolle accelerator.
//!
//! The FPGA design stores its working set as packed 32-bit BRAM words
//! (`v`: 13 bits, `px`/`py`: 9 bits each — Section V-B) and computes with a
//! Q24.8 datapath whose square root is a single 256-entry look-up table
//! (Section V-C). This crate reproduces those pieces exactly so that the
//! cycle simulator in `chambolle-hwsim` is bit-faithful:
//!
//! - [`Fixed`] — const-generic signed Q-format arithmetic with saturating
//!   adds and truncating multiplies/divides;
//! - [`PackedWord`] — the 32-bit `{v, px, py}` memory word;
//! - [`SqrtLut`] — the LUT square root with the odd-position alignment trick,
//!   plus [`sqrt_accuracy`] to reproduce the paper's "<1% error in >90% of
//!   samples" claim;
//! - [`solver`] — a planar (SoA) software solver over the same datapath:
//!   the packed fields laid out as separate `i32` planes with an AVX2 Term
//!   pass, bit-identical to the hwsim full-frame reference model.
//!
//! # Examples
//!
//! ```
//! use chambolle_fixed::{Fixed, SqrtLut};
//!
//! type Q8 = Fixed<8>;
//! let t1 = Q8::from_f32(0.3);
//! let t2 = Q8::from_f32(0.4);
//! let mag_sq = t1 * t1 + t2 * t2;
//! let lut = SqrtLut::new();
//! let mag = Q8::from_bits(lut.sqrt_q24_8(mag_sq.to_bits() as u32) as i32);
//! assert!((mag.to_f32() - 0.5).abs() < 0.01);
//! ```

#![warn(missing_docs)]

mod q;
pub mod solver;
mod sqrt;
mod word;

pub use q::{Fixed, Q24_8};
pub use solver::{fixed_denoise, FixedFrame, FixedSolverParams};
pub use sqrt::{isqrt_u64, sqrt_accuracy, SqrtAccuracy, SqrtLut, SqrtUnit};
pub use word::{PackWordError, PackedWord, WordFixed, P_BITS, V_BITS, WORD_FRAC};
