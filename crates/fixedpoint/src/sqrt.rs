//! The 256-entry look-up-table square root of Section V-C.
//!
//! The PE-V needs `|∇u| = sqrt(Term1² + Term2²)`. The paper trades precision
//! for speed with a single 256-entry table (≈70 FPGA LUTs) plus an alignment
//! trick: the 8 most significant bits of the Q24.8 input are extracted so
//! that the block *starts at an odd bit position* (counting from the left,
//! 1-based) and therefore *ends at an even position*. The discarded low bits
//! then amount to an even power of two, `x ≈ m · 2^(2k)`, so
//! `sqrt(x) = sqrt(m) · 2^k` — one table access and one shift.
//!
//! Table entries hold `sqrt(m)` in Q4.4 (`round(16·√m)` fits 8 bits since
//! `16·√255 ≈ 255.5`), which makes the final Q24.8 result exactly
//! `table[m] << k` (or `>> −k` for small inputs).

/// LUT-based integer square root over Q24.8 fixed-point inputs.
///
/// # Examples
///
/// ```
/// use chambolle_fixed::SqrtLut;
///
/// let lut = SqrtLut::new();
/// // sqrt(4.0) = 2.0: input 4.0 in Q24.8 is 1024, output 2.0 is 512.
/// assert_eq!(lut.sqrt_q24_8(1024), 512);
/// ```
#[derive(Debug, Clone)]
pub struct SqrtLut {
    table: [u8; 256],
    /// Table accesses served so far ([`SqrtLut::lookups`]). Interior
    /// mutability keeps [`SqrtLut::sqrt_q24_8`] a `&self` method — the
    /// counter is observability state, not datapath state (`Cell` stays
    /// `Send`, which the tiled solver's worker threads rely on).
    lookups: std::cell::Cell<u64>,
}

impl SqrtLut {
    /// Number of entries in the table (8-bit index).
    pub const ENTRIES: usize = 256;
    /// Approximate FPGA LUT cost reported by the paper for one instance.
    pub const FPGA_LUTS: usize = 70;

    /// Builds the table: `table[m] = round(16 · sqrt(m))`.
    pub fn new() -> Self {
        let mut table = [0u8; 256];
        for (m, slot) in table.iter_mut().enumerate() {
            let v = (16.0 * (m as f64).sqrt()).round();
            debug_assert!(v <= 255.0);
            *slot = v as u8;
        }
        SqrtLut {
            table,
            lookups: std::cell::Cell::new(0),
        }
    }

    /// Number of table accesses [`SqrtLut::sqrt_q24_8`] has served (the
    /// `x == 0` early-out never reads the table and is not counted).
    pub fn lookups(&self) -> u64 {
        self.lookups.get()
    }

    /// Resets the access counter (e.g. between measured frames).
    pub fn reset_lookups(&self) {
        self.lookups.set(0);
    }

    /// Raw table entry `round(16·sqrt(m))` for an 8-bit index.
    pub fn entry(&self, m: u8) -> u8 {
        self.table[m as usize]
    }

    /// Approximate square root of a Q24.8 value, returned in Q24.8.
    ///
    /// Implements the alignment scheme of Section V-C: take the 8-bit block
    /// whose first bit is at an odd position from the left; if the input's
    /// leading one is at an even position, the block starts one bit earlier
    /// (at a zero bit). Inputs smaller than 8 significant bits are used
    /// exactly (shifted *into* the table index).
    pub fn sqrt_q24_8(&self, x: u32) -> u32 {
        if x == 0 {
            return 0;
        }
        // 1-based position of the leading one, counted from the left (MSB=1).
        let msb_pos = x.leading_zeros() + 1;
        // Start of the 8-bit block: odd position (== msb_pos or one earlier).
        let start = if msb_pos % 2 == 1 {
            msb_pos
        } else {
            msb_pos - 1
        };
        // Right-shift that brings the block into bits [7:0]. The block ends
        // at left-position start+7, i.e. at LSB index 32-(start+7) = 25-start.
        let shift = 25i32 - start as i32;
        debug_assert!(shift % 2 == 0, "block must end at an even LSB index");
        let k = shift / 2;
        self.lookups.set(self.lookups.get() + 1);
        if shift >= 0 {
            let m = (x >> shift) as usize & 0xFF;
            (self.table[m] as u32) << k
        } else {
            // Fewer than 8 significant bits: scale up into the table, then
            // scale the result back down.
            let m = (x << (-shift)) as usize & 0xFF;
            (self.table[m] as u32) >> (-k)
        }
    }

    /// Exact reference: `round(sqrt(x))` over Q24.8 (i.e. the Q24.8 encoding
    /// of `sqrt(x / 256)`).
    pub fn sqrt_exact_q24_8(x: u32) -> u32 {
        // sqrt(x/256) in Q24.8 = sqrt(x/256)*256 = sqrt(x)*16.
        ((x as f64).sqrt() * 16.0).round() as u32
    }

    /// Relative error of the LUT result against the exact square root, for a
    /// nonzero input.
    pub fn relative_error(&self, x: u32) -> f64 {
        if x == 0 {
            return 0.0;
        }
        let exact = (x as f64).sqrt() * 16.0;
        let got = self.sqrt_q24_8(x) as f64;
        (got - exact).abs() / exact
    }

    /// FNV-1a checksum of the table contents — the integrity word a
    /// BRAM-scrubbing controller would keep beside the ROM.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.table {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Checksum of a pristine table. The table contents are fixed by the
    /// generator, so this is a compile-independent golden reference.
    pub fn golden_checksum() -> u64 {
        SqrtLut::new().checksum()
    }

    /// True when the table matches the golden checksum.
    pub fn is_intact(&self) -> bool {
        self.checksum() == Self::golden_checksum()
    }

    /// Fault-injection backdoor: XORs `xor` into entry `index`, modelling an
    /// upset in the ROM's backing BRAM. A zero `xor` is a no-op.
    pub fn corrupt_entry(&mut self, index: u8, xor: u8) {
        self.table[index as usize] ^= xor;
    }

    /// Rebuilds the table from the generator, returning `true` when any
    /// entry actually changed (i.e. the table had been corrupted).
    pub fn repair(&mut self) -> bool {
        let fresh = SqrtLut::new();
        let changed = self.table != fresh.table;
        self.table = fresh.table;
        changed
    }
}

impl Default for SqrtLut {
    fn default() -> Self {
        SqrtLut::new()
    }
}

/// Floor integer square root of a `u64`, computed with the classic
/// bit-pair (non-restoring style) method — the hardware-friendly iterative
/// alternative of the paper's reference \[17\] (Sajid et al., "Pipelined
/// implementation of fixed point square root in FPGA using modified
/// non-restoring algorithm").
///
/// One result bit is resolved per iteration; a Q24.8 datapath needs 20
/// stages (40-bit radicand), which is why the paper prefers the 1-cycle LUT.
///
/// # Examples
///
/// ```
/// use chambolle_fixed::isqrt_u64;
/// assert_eq!(isqrt_u64(0), 0);
/// assert_eq!(isqrt_u64(15), 3);
/// assert_eq!(isqrt_u64(16), 4);
/// assert_eq!(isqrt_u64(u64::MAX), (1 << 32) - 1);
/// ```
pub fn isqrt_u64(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut rem = v;
    let mut root = 0u64;
    // Highest power of four <= v.
    let mut bit = 1u64 << ((63 - v.leading_zeros()) & !1);
    while bit != 0 {
        if rem >= root + bit {
            rem -= root + bit;
            root = (root >> 1) + bit;
        } else {
            root >>= 1;
        }
        bit >>= 2;
    }
    root
}

/// A pluggable square-root implementation for the PE-V datapath: the paper's
/// LUT design or the iterative non-restoring alternative it weighs against
/// it in Section V-C ("iterative techniques, which achieve better
/// precisions, and look-up tables, which are faster").
#[derive(Debug, Clone)]
pub enum SqrtUnit {
    /// The 256-entry LUT with odd-position alignment (1-cycle, ≈70 LUTs,
    /// <1% error in >90% of samples).
    Lut(Box<SqrtLut>),
    /// Bit-pair non-restoring square root (exact to the LSB, but 20
    /// pipeline stages for a Q24.8 radicand and substantially more fabric).
    NonRestoring,
}

impl SqrtUnit {
    /// The paper's LUT unit.
    pub fn lut() -> Self {
        SqrtUnit::Lut(Box::default())
    }

    /// The iterative non-restoring unit.
    pub fn non_restoring() -> Self {
        SqrtUnit::NonRestoring
    }

    /// Square root of a Q24.8 value, in Q24.8.
    pub fn sqrt_q24_8(&self, x: u32) -> u32 {
        match self {
            SqrtUnit::Lut(lut) => lut.sqrt_q24_8(x),
            // sqrt(x / 256) in Q24.8 is floor(sqrt(x << 8)).
            SqrtUnit::NonRestoring => isqrt_u64((x as u64) << 8) as u32,
        }
    }

    /// Pipeline latency of the unit in clock cycles (one result bit per
    /// stage for the iterative unit).
    pub fn latency_cycles(&self) -> u32 {
        match self {
            SqrtUnit::Lut(_) => 1,
            SqrtUnit::NonRestoring => 20,
        }
    }

    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SqrtUnit::Lut(_) => "lut",
            SqrtUnit::NonRestoring => "non-restoring",
        }
    }

    /// Fault-injection backdoor: corrupts one LUT entry. Returns `true` when
    /// the unit has a table to corrupt (the non-restoring unit is pure
    /// combinational logic and has no state to upset).
    pub fn corrupt_lut_entry(&mut self, index: u8, xor: u8) -> bool {
        match self {
            SqrtUnit::Lut(lut) => {
                lut.corrupt_entry(index, xor);
                true
            }
            SqrtUnit::NonRestoring => false,
        }
    }

    /// True when the unit's state matches its golden reference (trivially
    /// true for the stateless non-restoring unit).
    pub fn lut_intact(&self) -> bool {
        match self {
            SqrtUnit::Lut(lut) => lut.is_intact(),
            SqrtUnit::NonRestoring => true,
        }
    }

    /// Restores the unit's state from the golden generator; returns `true`
    /// when a repair actually changed anything.
    pub fn repair_lut(&mut self) -> bool {
        match self {
            SqrtUnit::Lut(lut) => lut.repair(),
            SqrtUnit::NonRestoring => false,
        }
    }

    /// Table accesses the unit has served ([`SqrtLut::lookups`]); always 0
    /// for the table-free non-restoring unit.
    pub fn lut_lookups(&self) -> u64 {
        match self {
            SqrtUnit::Lut(lut) => lut.lookups(),
            SqrtUnit::NonRestoring => 0,
        }
    }
}

impl Default for SqrtUnit {
    fn default() -> Self {
        SqrtUnit::lut()
    }
}

/// Accuracy statistics of the LUT square root over a set of samples — the
/// paper claims an error "below 1% in more than 90% of the samples".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqrtAccuracy {
    /// Number of (nonzero) samples evaluated.
    pub samples: usize,
    /// Fraction of samples with relative error below 1%.
    pub fraction_below_1pct: f64,
    /// Largest observed relative error.
    pub max_relative_error: f64,
    /// Mean relative error.
    pub mean_relative_error: f64,
}

/// Evaluates [`SqrtAccuracy`] over an iterator of Q24.8 samples (zeros are
/// skipped, as the paper's percentage is over meaningful magnitudes).
pub fn sqrt_accuracy(lut: &SqrtLut, samples: impl IntoIterator<Item = u32>) -> SqrtAccuracy {
    let mut n = 0usize;
    let mut below = 0usize;
    let mut max_err = 0.0f64;
    let mut sum_err = 0.0f64;
    for x in samples {
        if x == 0 {
            continue;
        }
        let e = lut.relative_error(x);
        n += 1;
        if e < 0.01 {
            below += 1;
        }
        max_err = max_err.max(e);
        sum_err += e;
    }
    SqrtAccuracy {
        samples: n,
        fraction_below_1pct: if n == 0 { 1.0 } else { below as f64 / n as f64 },
        max_relative_error: max_err,
        mean_relative_error: if n == 0 { 0.0 } else { sum_err / n as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_maps_to_zero() {
        assert_eq!(SqrtLut::new().sqrt_q24_8(0), 0);
    }

    #[test]
    fn lookup_counter_tracks_table_accesses() {
        let lut = SqrtLut::new();
        assert_eq!(lut.lookups(), 0);
        lut.sqrt_q24_8(0); // early-out, no table access
        assert_eq!(lut.lookups(), 0);
        lut.sqrt_q24_8(1024);
        lut.sqrt_q24_8(7);
        assert_eq!(lut.lookups(), 2);
        lut.reset_lookups();
        assert_eq!(lut.lookups(), 0);

        let unit = SqrtUnit::lut();
        unit.sqrt_q24_8(1024);
        assert_eq!(unit.lut_lookups(), 1);
        let nr = SqrtUnit::non_restoring();
        nr.sqrt_q24_8(1024);
        assert_eq!(nr.lut_lookups(), 0, "no table behind the iterative unit");
    }

    #[test]
    fn exact_on_even_powers_of_two() {
        let lut = SqrtLut::new();
        for k in 0..12 {
            let x = 1u32 << (2 * k);
            let expect = 16u32 << k; // sqrt(2^2k)*16
            assert_eq!(lut.sqrt_q24_8(x), expect, "x = 2^{}", 2 * k);
        }
    }

    #[test]
    fn exact_on_small_inputs_times_even_powers() {
        let lut = SqrtLut::new();
        // For x = m * 2^(2k) with m < 256 and the leading-one alignment
        // matching, the result is exactly table[m] << k.
        assert_eq!(lut.sqrt_q24_8(1024), 512); // 4.0 -> 2.0
        assert_eq!(lut.sqrt_q24_8(256 * 256), 256 * 16); // 256.0 -> 16.0
        assert_eq!(lut.sqrt_q24_8(9 << 8), 768); // 9.0 -> 3.0 (raw 768)
    }

    #[test]
    fn table_entries_are_q4_4_sqrt() {
        let lut = SqrtLut::new();
        assert_eq!(lut.entry(0), 0);
        assert_eq!(lut.entry(1), 16);
        assert_eq!(lut.entry(4), 32);
        assert_eq!(lut.entry(255), 255); // round(16*15.968) = 255
    }

    #[test]
    fn small_inputs_scale_up_into_table() {
        let lut = SqrtLut::new();
        // x = 1 (Q24.8 value 1/256): sqrt = 1/16 -> Q24.8 raw 16.
        assert_eq!(lut.sqrt_q24_8(1), 16);
        // x = 4: sqrt(4/256) = 2/16 -> raw 32.
        assert_eq!(lut.sqrt_q24_8(4), 32);
    }

    #[test]
    fn error_bounded_everywhere_above_noise_floor() {
        let lut = SqrtLut::new();
        // Exhaustive sweep over 17 bits: relative error stays below 4%
        // (quantizing to >= 6 significant bits of mantissa).
        for x in 1u32..(1 << 17) {
            let e = lut.relative_error(x);
            assert!(e < 0.04, "x={x} err={e}");
        }
    }

    #[test]
    fn paper_accuracy_claim_holds_on_uniform_samples() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let lut = SqrtLut::new();
        let mut rng = StdRng::seed_from_u64(2011);
        let samples = (0..100_000).map(|_| rng.gen_range(1u32..1 << 24));
        let acc = sqrt_accuracy(&lut, samples);
        assert!(
            acc.fraction_below_1pct > 0.90,
            "paper claims >90% below 1%, got {}",
            acc.fraction_below_1pct
        );
        assert!(acc.max_relative_error < 0.05);
    }

    #[test]
    fn monotone_on_coarse_scale() {
        let lut = SqrtLut::new();
        let mut prev = 0;
        for i in 0..1000 {
            let x = i * 4097;
            let s = lut.sqrt_q24_8(x);
            assert!(s + 2 >= prev, "sqrt should be (near-)monotone"); // allow 1-LSB ripple
            prev = s;
        }
    }

    #[test]
    fn accuracy_stats_fields_consistent() {
        let lut = SqrtLut::new();
        let acc = sqrt_accuracy(&lut, [0u32, 1024, 1 << 20]);
        assert_eq!(acc.samples, 2); // zero skipped
        assert!(acc.mean_relative_error <= acc.max_relative_error);
    }

    #[test]
    fn isqrt_matches_float_on_small_values() {
        for v in 0u64..10_000 {
            assert_eq!(isqrt_u64(v), (v as f64).sqrt().floor() as u64, "v={v}");
        }
    }

    #[test]
    fn isqrt_is_floor_sqrt_at_boundaries() {
        for r in [1u64, 255, 256, 65535, 1 << 20, (1 << 32) - 1] {
            assert_eq!(isqrt_u64(r * r), r);
            assert_eq!(isqrt_u64(r * r + 1), r);
            if r > 1 {
                assert_eq!(isqrt_u64(r * r - 1), r - 1);
            }
        }
        assert_eq!(isqrt_u64(u64::MAX), (1u64 << 32) - 1);
    }

    #[test]
    fn non_restoring_unit_is_exact_to_one_lsb() {
        let unit = SqrtUnit::non_restoring();
        for x in (1u32..1 << 20).step_by(97) {
            let exact = (x as f64 * 256.0).sqrt();
            let got = unit.sqrt_q24_8(x) as f64;
            assert!((got - exact).abs() <= 1.0, "x={x}: {got} vs {exact}");
        }
    }

    #[test]
    fn unit_dispatch_and_metadata() {
        let lut = SqrtUnit::lut();
        let nr = SqrtUnit::non_restoring();
        assert_eq!(lut.latency_cycles(), 1);
        assert_eq!(nr.latency_cycles(), 20);
        assert_eq!(lut.name(), "lut");
        assert_eq!(nr.name(), "non-restoring");
        assert_eq!(lut.sqrt_q24_8(1024), 512);
        assert_eq!(nr.sqrt_q24_8(1024), 512);
        assert_eq!(SqrtUnit::default().name(), "lut");
    }

    #[test]
    fn checksum_detects_any_single_entry_corruption() {
        let golden = SqrtLut::golden_checksum();
        assert!(SqrtLut::new().is_intact());
        for index in [0u8, 1, 77, 255] {
            for xor in [1u8, 0x80, 0xFF] {
                let mut lut = SqrtLut::new();
                lut.corrupt_entry(index, xor);
                assert_ne!(lut.checksum(), golden, "index={index} xor={xor}");
                assert!(!lut.is_intact());
                assert!(lut.repair());
                assert!(lut.is_intact());
                assert!(!lut.repair(), "second repair must be a no-op");
            }
        }
    }

    #[test]
    fn corrupted_lut_changes_results() {
        let mut lut = SqrtLut::new();
        // Input 1024 aligns to the 8-bit block 1024 >> 4 = 64, so entry 64
        // serves sqrt(4.0): table[64] << 2 = 128 << 2 = 512.
        lut.corrupt_entry(64, 0xFF);
        assert_ne!(lut.sqrt_q24_8(1024), 512);
    }

    #[test]
    fn unit_integrity_dispatch() {
        let mut lut = SqrtUnit::lut();
        assert!(lut.lut_intact());
        assert!(lut.corrupt_lut_entry(9, 0x10));
        assert!(!lut.lut_intact());
        assert!(lut.repair_lut());
        assert!(lut.lut_intact());

        let mut nr = SqrtUnit::non_restoring();
        assert!(!nr.corrupt_lut_entry(9, 0x10), "no table to corrupt");
        assert!(nr.lut_intact());
        assert!(!nr.repair_lut());
    }

    #[test]
    fn non_restoring_beats_lut_accuracy_everywhere() {
        let lut = SqrtUnit::lut();
        let nr = SqrtUnit::non_restoring();
        let mut lut_worse = 0u32;
        for x in (1u32..1 << 18).step_by(131) {
            let exact = (x as f64 * 256.0).sqrt();
            let e_lut = (lut.sqrt_q24_8(x) as f64 - exact).abs();
            let e_nr = (nr.sqrt_q24_8(x) as f64 - exact).abs();
            assert!(e_nr <= e_lut + 1.0, "x={x}");
            if e_lut > e_nr {
                lut_worse += 1;
            }
        }
        assert!(lut_worse > 100, "iterative should usually be more precise");
    }
}
