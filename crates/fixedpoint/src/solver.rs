//! Planar (SoA) fixed-point Chambolle solver over the packed-word datapath.
//!
//! The hardware model in `chambolle-hwsim` stores its state as AoS
//! [`PackedWord`](crate::PackedWord)s because that is what the BRAMs hold.
//! This module keeps the *same arithmetic* — the 13-bit `v` / 9-bit `px`,
//! `py` field widths, the saturating Q24.8 ops and the LUT square root —
//! but lays the three fields out as separate planes, so each pass streams
//! contiguous rows of `i32` lanes. That is the layout a SIMD datapath
//! wants, and the Term pass (the bandwidth-bound half of Algorithm 1) runs
//! 8 lanes wide under AVX2 when the host supports it.
//!
//! The vector path uses plain wrapping `i32` arithmetic instead of the
//! saturating [`Fixed`](crate::Fixed) ops. That is bit-identical, not
//! approximate: the packed field widths bound every intermediate — `px`,
//! `py` sign-extend from 9 bits, `v` from 13 — so no Term-pass value can
//! come near `i32` saturation (the dispatcher checks the one untrusted
//! input, `1/θ`, and falls back to the scalar ops otherwise). The p-update
//! pass stays scalar: its LUT square root is a data-dependent table walk.
//!
//! Bit-identity with the full-frame hwsim reference model is pinned by the
//! workspace test `tests/fixedpoint_solver.rs`.

use crate::word::{P_BITS, V_BITS};
use crate::{SqrtUnit, WordFixed};

/// Planar fixed-point solver state: one frame of `v`, `px`, `py` planes.
///
/// The planes hold full Q24.8 words, but every value respects the packed
/// field widths at rest: `v` fits in [`V_BITS`] bits (saturated once at
/// quantization), `px`/`py` in [`P_BITS`] bits (saturated by every update,
/// as the RTL write path does).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedFrame {
    width: usize,
    height: usize,
    v: Vec<WordFixed>,
    px: Vec<WordFixed>,
    py: Vec<WordFixed>,
}

impl FixedFrame {
    /// Quantizes an `f32` frame (row-major, `width * height` samples) into
    /// the packed-word value domain with `p = 0`, the iteration's initial
    /// state. Out-of-range intensities saturate into the 13-bit `v` field.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != width * height` or either dimension is
    /// zero.
    pub fn quantize(samples: &[f32], width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "frame must be non-empty");
        assert_eq!(samples.len(), width * height, "sample count mismatch");
        FixedFrame {
            width,
            height,
            v: samples
                .iter()
                .map(|&s| WordFixed::from_f32(s).saturate_to(V_BITS))
                .collect(),
            px: vec![WordFixed::ZERO; samples.len()],
            py: vec![WordFixed::ZERO; samples.len()],
        }
    }

    /// Frame width in elements.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in elements.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The quantized denoising target, row-major.
    pub fn v(&self) -> &[WordFixed] {
        &self.v
    }

    /// The `px` plane, row-major.
    pub fn px(&self) -> &[WordFixed] {
        &self.px
    }

    /// The `py` plane, row-major.
    pub fn py(&self) -> &[WordFixed] {
        &self.py
    }
}

/// The fixed-point solve constants, in the exact encoding the datapath
/// multiplies with (the hardware never divides by `θ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedSolverParams {
    /// `θ` in Q24.8.
    pub theta: WordFixed,
    /// Precomputed `1/θ` in Q24.8.
    pub inv_theta: WordFixed,
    /// `τ/θ` in Q24.8.
    pub step_ratio: WordFixed,
}

impl FixedSolverParams {
    /// The standard configuration used throughout the paper's evaluation:
    /// `θ = 1/4`, `τ/θ = 1/4`.
    pub fn standard() -> Self {
        FixedSolverParams {
            theta: WordFixed::from_f32(0.25),
            inv_theta: WordFixed::from_f32(4.0),
            step_ratio: WordFixed::from_f32(0.25),
        }
    }
}

/// Runs `iterations` Chambolle iterations in fixed point over the whole
/// frame, then recovers `u = v − θ·div p` with a final Term-style sweep —
/// the schedule the accelerator executes. Returns `u`, row-major.
pub fn fixed_denoise(
    frame: &mut FixedFrame,
    params: &FixedSolverParams,
    iterations: u32,
    sqrt: &SqrtUnit,
) -> Vec<WordFixed> {
    let n = frame.width * frame.height;
    let mut term = vec![WordFixed::ZERO; n];
    for _ in 0..iterations {
        term_pass(frame, params.inv_theta, &mut term);
        update_pass(frame, &term, params.step_ratio, sqrt);
    }
    recover_pass(frame, params.theta)
}

/// Pass 1 of one iteration: `Term = div p − v·(1/θ)` over the whole frame,
/// with Backward differences (left/upper neighbor, zero at the borders).
fn term_pass(frame: &FixedFrame, inv_theta: WordFixed, term: &mut [WordFixed]) {
    let (w, h) = (frame.width, frame.height);
    #[cfg(target_arch = "x86_64")]
    if vector_mul_is_exact(inv_theta) && std::is_x86_feature_detected!("avx2") {
        for y in 0..h {
            let row = y * w;
            let above = (y > 0).then(|| &frame.py[row - w..row]);
            // SAFETY: AVX2 support was just detected; slice lengths all
            // equal the row width by construction.
            unsafe {
                avx2::term_row(
                    &frame.px[row..row + w],
                    &frame.py[row..row + w],
                    above,
                    &frame.v[row..row + w],
                    inv_theta,
                    &mut term[row..row + w],
                );
            }
        }
        return;
    }
    term_pass_scalar(frame, inv_theta, term);
}

/// The scalar Term pass: the reference op order every other path replays.
fn term_pass_scalar(frame: &FixedFrame, inv_theta: WordFixed, term: &mut [WordFixed]) {
    let (w, h) = (frame.width, frame.height);
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let l_px = if x == 0 {
                WordFixed::ZERO
            } else {
                frame.px[i - 1]
            };
            let a_py = if y == 0 {
                WordFixed::ZERO
            } else {
                frame.py[i - w]
            };
            let div = (frame.px[i] - l_px) + (frame.py[i] - a_py);
            term[i] = div - frame.v[i] * inv_theta;
        }
    }
}

/// Pass 2 of one iteration: the normalized `p` update with Forward
/// differences and the selected square-root unit, each component saturated
/// back into the 9-bit packed field as the RTL write path does.
fn update_pass(frame: &mut FixedFrame, term: &[WordFixed], step_ratio: WordFixed, sqrt: &SqrtUnit) {
    let (w, h) = (frame.width, frame.height);
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let t1 = if x + 1 == w {
                WordFixed::ZERO
            } else {
                term[i + 1] - term[i]
            };
            let t2 = if y + 1 == h {
                WordFixed::ZERO
            } else {
                term[i + w] - term[i]
            };
            let mag_sq = t1 * t1 + t2 * t2;
            let grad = WordFixed::from_bits(sqrt.sqrt_q24_8(mag_sq.to_bits() as u32) as i32);
            let denom = WordFixed::ONE + step_ratio * grad;
            frame.px[i] = ((frame.px[i] + step_ratio * t1) / denom).saturate_to(P_BITS);
            frame.py[i] = ((frame.py[i] + step_ratio * t2) / denom).saturate_to(P_BITS);
        }
    }
}

/// The final sweep: `u = v − θ·div p` (a Term pass with the PE-Vs idle).
fn recover_pass(frame: &FixedFrame, theta: WordFixed) -> Vec<WordFixed> {
    let (w, h) = (frame.width, frame.height);
    let mut u = vec![WordFixed::ZERO; w * h];
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let l_px = if x == 0 {
                WordFixed::ZERO
            } else {
                frame.px[i - 1]
            };
            let a_py = if y == 0 {
                WordFixed::ZERO
            } else {
                frame.py[i - w]
            };
            let div = (frame.px[i] - l_px) + (frame.py[i] - a_py);
            u[i] = frame.v[i] - theta * div;
        }
    }
    u
}

/// Whether `v·(1/θ)` can be computed with wrapping 32-bit lane arithmetic
/// without diverging from the saturating reference: the product of a
/// 13-bit `v` and this `1/θ` (the one operand not bounded by a packed
/// field width) must fit in `i32` before the Q24.8 renormalizing shift.
fn vector_mul_is_exact(inv_theta: WordFixed) -> bool {
    // |v| < 2^12 lanes, so any |1/θ| < 2^18 keeps |v·(1/θ)| < 2^30.
    inv_theta.to_bits().unsigned_abs() < 1 << 18
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::WordFixed;
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_mullo_epi32, _mm256_set1_epi32,
        _mm256_setzero_si256, _mm256_srai_epi32, _mm256_storeu_si256, _mm256_sub_epi32,
    };

    /// Views a plane row as its raw Q24.8 bit pattern. Sound because
    /// [`Fixed`](crate::Fixed) is `#[repr(transparent)]` over `i32`.
    fn bits(row: &[WordFixed]) -> &[i32] {
        unsafe { std::slice::from_raw_parts(row.as_ptr().cast(), row.len()) }
    }

    fn bits_mut(row: &mut [WordFixed]) -> &mut [i32] {
        unsafe { std::slice::from_raw_parts_mut(row.as_mut_ptr().cast(), row.len()) }
    }

    /// One row of the Term pass, 8 Q24.8 lanes per step.
    ///
    /// Wrapping lane arithmetic replays the saturating scalar ops exactly
    /// because the 9/13-bit field invariants (checked by the caller for
    /// `1/θ`) keep every intermediate far from `i32` range — see the
    /// module docs.
    ///
    /// # Safety
    ///
    /// The caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn term_row(
        px: &[WordFixed],
        py: &[WordFixed],
        py_above: Option<&[WordFixed]>,
        v: &[WordFixed],
        inv_theta: WordFixed,
        out: &mut [WordFixed],
    ) {
        let w = out.len();
        // First column: no left neighbor; also covers rows too narrow for
        // a full vector.
        let a_py0 = py_above.map_or(WordFixed::ZERO, |a| a[0]);
        out[0] = (px[0] - WordFixed::ZERO) + (py[0] - a_py0) - v[0] * inv_theta;

        let px = bits(px);
        let py = bits(py);
        let above = py_above.map(bits);
        let v = bits(v);
        let it = _mm256_set1_epi32(inv_theta.to_bits());
        let out_bits = bits_mut(out);

        let mut x = 1usize;
        while x + 8 <= w {
            let cpx = _mm256_loadu_si256(px.as_ptr().add(x).cast::<__m256i>());
            let lpx = _mm256_loadu_si256(px.as_ptr().add(x - 1).cast::<__m256i>());
            let cpy = _mm256_loadu_si256(py.as_ptr().add(x).cast::<__m256i>());
            let apy = match above {
                Some(a) => _mm256_loadu_si256(a.as_ptr().add(x).cast::<__m256i>()),
                None => _mm256_setzero_si256(),
            };
            let vv = _mm256_loadu_si256(v.as_ptr().add(x).cast::<__m256i>());
            // Q24.8 multiply: full product fits i32 (caller-checked), so
            // the low-lane product + arithmetic shift is the truncating
            // reference multiply.
            let prod = _mm256_srai_epi32::<8>(_mm256_mullo_epi32(vv, it));
            let div = _mm256_add_epi32(_mm256_sub_epi32(cpx, lpx), _mm256_sub_epi32(cpy, apy));
            let term = _mm256_sub_epi32(div, prod);
            _mm256_storeu_si256(out_bits.as_mut_ptr().add(x).cast::<__m256i>(), term);
            x += 8;
        }
        for i in x..w {
            let l_px = WordFixed::from_bits(px[i - 1]);
            let a_py = above.map_or(WordFixed::ZERO, |a| WordFixed::from_bits(a[i]));
            let div = (WordFixed::from_bits(px[i]) - l_px) + (WordFixed::from_bits(py[i]) - a_py);
            out_bits[i] = (div - WordFixed::from_bits(v[i]) * inv_theta).to_bits();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_state(w: usize, h: usize, seed: u64) -> FixedFrame {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = w * h;
        // Raw bit patterns spanning the full packed field ranges, not just
        // values a solve would reach — the vector path must match anyway.
        let field = |rng: &mut StdRng, bits: u32| {
            let half = 1i32 << (bits - 1);
            WordFixed::from_bits(rng.gen_range(-half..half))
        };
        FixedFrame {
            width: w,
            height: h,
            v: (0..n).map(|_| field(&mut rng, V_BITS)).collect(),
            px: (0..n).map(|_| field(&mut rng, P_BITS)).collect(),
            py: (0..n).map(|_| field(&mut rng, P_BITS)).collect(),
        }
    }

    #[test]
    fn term_pass_matches_scalar_reference() {
        for (w, h) in [(1, 1), (7, 3), (8, 4), (9, 5), (33, 2), (64, 6)] {
            let frame = random_state(w, h, (w * 31 + h) as u64);
            let mut got = vec![WordFixed::ZERO; w * h];
            let mut want = vec![WordFixed::ZERO; w * h];
            term_pass(&frame, FixedSolverParams::standard().inv_theta, &mut got);
            term_pass_scalar(&frame, FixedSolverParams::standard().inv_theta, &mut want);
            assert_eq!(got, want, "{w}x{h}");
        }
    }

    #[test]
    fn huge_inv_theta_takes_the_saturating_path() {
        // A 1/θ large enough to overflow a 32-bit lane product must route
        // to the scalar saturating ops — and still produce their answer.
        let huge = WordFixed::from_bits(1 << 20);
        assert!(!vector_mul_is_exact(huge));
        let frame = random_state(17, 4, 9);
        let mut got = vec![WordFixed::ZERO; 17 * 4];
        let mut want = vec![WordFixed::ZERO; 17 * 4];
        term_pass(&frame, huge, &mut got);
        term_pass_scalar(&frame, huge, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn constant_image_is_a_fixed_point() {
        let mut frame = FixedFrame::quantize(&vec![0.5f32; 12 * 10], 12, 10);
        let u = fixed_denoise(
            &mut frame,
            &FixedSolverParams::standard(),
            30,
            &SqrtUnit::lut(),
        );
        for &s in &u {
            assert_eq!(s.to_f32(), 0.5);
        }
        for (&px, &py) in frame.px().iter().zip(frame.py()) {
            assert_eq!(px, WordFixed::ZERO);
            assert_eq!(py, WordFixed::ZERO);
        }
    }

    #[test]
    fn dual_planes_stay_in_nine_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f32> = (0..24 * 20).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut frame = FixedFrame::quantize(&samples, 24, 20);
        fixed_denoise(
            &mut frame,
            &FixedSolverParams::standard(),
            60,
            &SqrtUnit::lut(),
        );
        for (&px, &py) in frame.px().iter().zip(frame.py()) {
            assert!(px.fits_in(P_BITS) && py.fits_in(P_BITS));
        }
    }

    #[test]
    fn quantize_saturates_into_the_v_field() {
        let frame = FixedFrame::quantize(&[1.0e9, -1.0e9], 2, 1);
        assert!(frame.v()[0].fits_in(V_BITS));
        assert!(frame.v()[1].fits_in(V_BITS));
        assert_eq!(frame.v()[0], WordFixed::MAX.saturate_to(V_BITS));
    }
}
