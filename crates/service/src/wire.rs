//! Hand-rolled framed binary protocol of the TCP front-end.
//!
//! Every message is one frame: a `u32` little-endian payload length, a
//! `u64` little-endian FNV-1a checksum of the payload, then the payload
//! bytes. Frames larger than [`MAX_FRAME`] or empty are rejected before
//! allocation, so a corrupt or hostile length prefix cannot OOM the server,
//! and the checksum turns *any* in-flight byte corruption into a structured
//! transport error instead of silently wrong pixels — which is what lets
//! [`ResilientClient`](crate::ResilientClient) treat corruption as a
//! retryable fault while still guaranteeing bit-identical results.
//!
//! Request payload (versions 2 and 3):
//!
//! ```text
//! offset  size  field
//! 0       1     protocol version  (2 or 3)
//! 1       1     frame kind        (1 = denoise solve, 2 = health probe,
//!                                  3 = metrics snapshot; v3 only)
//! 2       8     client request id (u64 LE, echoed back verbatim)
//! --- version 3 only: trace block (25 bytes, all kinds) ---
//! 10      16    trace id          (u128 LE, 0 = tracing disabled)
//! 26      8     span id           (u64 LE, caller's span)
//! 34      1     trace flags       (bit 0 = sampled)
//! --- kind 1 (denoise); offsets shown for v2 / v3 ---
//! 10/35   8     idempotency key   (u64 LE, 0 = none; nonzero keys dedupe
//!                                  retries against the server-side cache)
//! 18/43   1     priority          (0 interactive, 1 batch)
//! 19/44   4     deadline_ms       (u32 LE, 0 = no deadline)
//! 23/48   4     theta             (f32 LE)
//! 27/52   4     tau               (f32 LE)
//! 31/56   4     iterations        (u32 LE)
//! 35/60   4     width             (u32 LE)
//! 39/64   4     height            (u32 LE)
//! 43/68   4*w*h pixels            (f32 LE, row-major)
//! --- kind 2 (health) / kind 3 (metrics) --- no further fields
//! ```
//!
//! Response payload (versions 2 and 3):
//!
//! ```text
//! 0       1     protocol version  (2 or 3; servers echo the requester's)
//! 1       1     status   (0 ok, 1 rejected, 2 failed, 3 health report,
//!                         4 metrics snapshot; v3 only)
//! 2       8     client request id (u64 LE)
//! --- version 3 only: trace block (25 bytes, all statuses), as above ---
//! -- status 0 (offsets v2 / v3) --
//! 10/35   1     fidelity tier     (0 full, 1 degraded/brownout)
//! 11/36   4     width; then 4 height; then 4*w*h f32 LE pixels
//! -- status 1 or 2 --
//! 10/35   1     error code        (see ErrorCode)
//! 11/36   2     message length    (u16 LE)
//! 13/38   n     UTF-8 message
//! -- status 3 --
//! 10/35   1     accepting         (0/1)
//! 11/36   1     dispatcher_live   (0/1)
//! 12/37   1     brownout_active   (0/1)
//! 13/38   4     queue_depth       (u32 LE)
//! 17/42   4     queue_capacity    (u32 LE)
//! 21/46   8     in_flight         (u64 LE)
//! 29/54   8     completed         (u64 LE)
//! 37/62   8     last_solve_age_ms (u64 LE, u64::MAX = no solve yet)
//! -- status 4 (v3 only) --
//! 35      rest  UTF-8 JSON        (schema `chambolle.metrics_snapshot.v1`)
//! ```
//!
//! Version 3 adds distributed-trace propagation (the fixed 25-byte trace
//! block after the id, in requests *and* responses) and the metrics
//! snapshot kind. Decoders here accept both versions — a v2 frame simply
//! decodes with [`TraceContext::NONE`] — and servers answer in the
//! requester's version, so v2 peers interoperate bit-identically with
//! tracing silently disabled.

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

use chambolle_core::ChambolleParams;
use chambolle_imaging::Grid;
use chambolle_telemetry::trace::TraceContext;

use crate::request::{Priority, RejectReason, Request, ResponseTier, ServiceError, Workload};
use crate::service::HealthSnapshot;

/// Current protocol version (adds the trace block and metrics kind).
pub const WIRE_VERSION: u8 = 3;

/// Previous protocol version, still accepted by every decoder here; v2
/// frames carry no trace block and cannot request metrics snapshots.
pub const WIRE_VERSION_V2: u8 = 2;

/// Hard ceiling on a frame's payload size (64 MiB) — large enough for a
/// 4096×4096 f32 image, small enough to bound a bad prefix's damage.
pub const MAX_FRAME: usize = 1 << 26;

/// Bytes of frame header preceding every payload: `u32` length plus `u64`
/// FNV-1a payload checksum.
pub const FRAME_HEADER: usize = 12;

const KIND_DENOISE: u8 = 1;
const KIND_HEALTH: u8 = 2;
const KIND_METRICS: u8 = 3;
const STATUS_OK: u8 = 0;
const STATUS_REJECTED: u8 = 1;
const STATUS_FAILED: u8 = 2;
const STATUS_HEALTH: u8 = 3;
const STATUS_METRICS: u8 = 4;
const TIER_FULL: u8 = 0;
const TIER_DEGRADED: u8 = 1;
const FLAG_SAMPLED: u8 = 1;

/// Accepts a version byte this build can decode.
fn check_version(version: u8) -> Result<u8, DecodeError> {
    if version == WIRE_VERSION || version == WIRE_VERSION_V2 {
        Ok(version)
    } else {
        Err(DecodeError::UnsupportedVersion(version))
    }
}

/// Appends the 25-byte trace block on v3 frames; v2 frames carry none.
fn put_trace(buf: &mut Vec<u8>, version: u8, trace: TraceContext) {
    if version >= WIRE_VERSION {
        buf.extend_from_slice(&trace.trace_id.to_le_bytes());
        buf.extend_from_slice(&trace.span_id.to_le_bytes());
        buf.push(if trace.sampled { FLAG_SAMPLED } else { 0 });
    }
}

/// Reads the trace block on v3 frames; v2 frames decode to
/// [`TraceContext::NONE`].
fn take_trace(c: &mut Cursor<'_>, version: u8) -> Result<TraceContext, DecodeError> {
    if version < WIRE_VERSION {
        return Ok(TraceContext::NONE);
    }
    let trace_id = c.u128()?;
    let span_id = c.u64()?;
    let flags = c.u8()?;
    Ok(TraceContext {
        trace_id,
        span_id,
        sampled: flags & FLAG_SAMPLED != 0,
    })
}

/// FNV-1a over a byte slice — the frame integrity checksum.
///
/// Not cryptographic: it detects the chaos injector's (and real networks')
/// bit flips, not an adversary.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Stable numeric codes for rejected/failed responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Queue at capacity.
    QueueFull = 1,
    /// Service draining.
    ShuttingDown = 2,
    /// Workload failed validation.
    Invalid = 3,
    /// Deadline passed before the solve finished.
    DeadlineExceeded = 4,
    /// Request cancelled.
    Cancelled = 5,
    /// Solver failure.
    Solver = 6,
    /// Malformed frame or protocol mismatch.
    Protocol = 7,
}

impl ErrorCode {
    fn from_u8(code: u8) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::QueueFull),
            2 => Some(ErrorCode::ShuttingDown),
            3 => Some(ErrorCode::Invalid),
            4 => Some(ErrorCode::DeadlineExceeded),
            5 => Some(ErrorCode::Cancelled),
            6 => Some(ErrorCode::Solver),
            7 => Some(ErrorCode::Protocol),
            _ => None,
        }
    }
}

/// Structured decode failure: every way a payload can be malformed, as a
/// typed variant instead of a panic or an unbounded allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload had no bytes at all.
    Empty,
    /// The version byte named a protocol this build does not speak.
    UnsupportedVersion(u8),
    /// Unknown request frame kind.
    UnknownKind(u8),
    /// Unknown response status byte.
    UnknownStatus(u8),
    /// Unknown priority discriminant.
    UnknownPriority(u8),
    /// Unknown error-code discriminant.
    UnknownErrorCode(u8),
    /// Unknown fidelity-tier discriminant.
    UnknownTier(u8),
    /// The payload ended before a field finished.
    Truncated {
        /// Bytes the next field needed.
        wanted: usize,
        /// Bytes actually left.
        remaining: usize,
    },
    /// Declared dimensions overflow or exceed any representable frame.
    OversizedDimensions {
        /// Declared width.
        width: usize,
        /// Declared height.
        height: usize,
    },
    /// The pixel block does not match the declared dimensions.
    PixelCountMismatch {
        /// Bytes the dimensions imply.
        expected: usize,
        /// Bytes present.
        got: usize,
    },
    /// Bytes remained after a complete message (corrupt length field).
    TrailingBytes {
        /// Leftover byte count.
        count: usize,
    },
    /// The decoded grid failed construction (zero dimension, etc.).
    BadGrid(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Empty => write!(f, "empty payload"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::UnknownStatus(s) => write!(f, "unknown response status {s}"),
            DecodeError::UnknownPriority(p) => write!(f, "unknown priority {p}"),
            DecodeError::UnknownErrorCode(c) => write!(f, "unknown error code {c}"),
            DecodeError::UnknownTier(t) => write!(f, "unknown fidelity tier {t}"),
            DecodeError::Truncated { wanted, remaining } => {
                write!(
                    f,
                    "payload truncated: wanted {wanted} bytes, {remaining} left"
                )
            }
            DecodeError::OversizedDimensions { width, height } => {
                write!(
                    f,
                    "dimensions {width}x{height} exceed any representable frame"
                )
            }
            DecodeError::PixelCountMismatch { expected, got } => {
                write!(f, "pixel payload is {got} bytes, expected {expected}")
            }
            DecodeError::TrailingBytes { count } => {
                write!(f, "{count} bytes left over after a complete message")
            }
            DecodeError::BadGrid(e) => write!(f, "grid rejected: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A decoded wire request.
#[derive(Debug, Clone)]
pub enum WireRequest {
    /// A denoise solve.
    Solve {
        /// Client-chosen id, echoed back in the response.
        id: u64,
        /// Idempotency key (0 = none): retries carrying the same nonzero
        /// key return the server's cached result instead of recomputing.
        idempotency: u64,
        /// Propagated trace context ([`TraceContext::NONE`] on v2 frames).
        trace: TraceContext,
        /// The service request it maps to.
        request: Request,
    },
    /// A health/readiness probe.
    Health {
        /// Client-chosen id, echoed back in the response.
        id: u64,
        /// Propagated trace context ([`TraceContext::NONE`] on v2 frames).
        trace: TraceContext,
    },
    /// A live-metrics snapshot scrape (v3 only).
    Metrics {
        /// Client-chosen id, echoed back in the response.
        id: u64,
        /// Propagated trace context.
        trace: TraceContext,
    },
}

impl WireRequest {
    /// The client-chosen id of any kind.
    pub fn id(&self) -> u64 {
        match self {
            WireRequest::Solve { id, .. }
            | WireRequest::Health { id, .. }
            | WireRequest::Metrics { id, .. } => *id,
        }
    }

    /// The propagated trace context of any kind.
    pub fn trace(&self) -> TraceContext {
        match self {
            WireRequest::Solve { trace, .. }
            | WireRequest::Health { trace, .. }
            | WireRequest::Metrics { trace, .. } => *trace,
        }
    }
}

/// A decoded wire response.
#[derive(Debug, Clone)]
pub enum WireResponse {
    /// Successful solve.
    Ok {
        /// Echoed client id.
        id: u64,
        /// Echoed trace context ([`TraceContext::NONE`] on v2 frames).
        trace: TraceContext,
        /// Fidelity tier the service answered at.
        tier: ResponseTier,
        /// The denoised image.
        output: Grid<f32>,
    },
    /// Admission rejection or solve failure.
    Err {
        /// Echoed client id.
        id: u64,
        /// Echoed trace context ([`TraceContext::NONE`] on v2 frames).
        trace: TraceContext,
        /// `true` if rejected at admission (never solved).
        rejected: bool,
        /// Stable error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Health probe report.
    Health {
        /// Echoed client id.
        id: u64,
        /// Echoed trace context ([`TraceContext::NONE`] on v2 frames).
        trace: TraceContext,
        /// The service's point-in-time health snapshot.
        health: HealthSnapshot,
    },
    /// Live-metrics snapshot (v3 only).
    Metrics {
        /// Echoed client id.
        id: u64,
        /// Echoed trace context.
        trace: TraceContext,
        /// Schema-stable snapshot document
        /// (`chambolle.metrics_snapshot.v1`) as UTF-8 JSON text.
        snapshot: String,
    },
}

impl WireResponse {
    /// The echoed trace context of any status.
    pub fn trace(&self) -> TraceContext {
        match self {
            WireResponse::Ok { trace, .. }
            | WireResponse::Err { trace, .. }
            | WireResponse::Health { trace, .. }
            | WireResponse::Metrics { trace, .. } => *trace,
        }
    }
}

/// Writes one length-prefixed, checksummed frame.
///
/// # Errors
///
/// I/O errors from `w`; `InvalidInput` if the payload is empty or exceeds
/// [`MAX_FRAME`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "zero-length frames are not part of the protocol",
        ));
    }
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&fnv1a64(payload).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame and verifies its checksum. Returns
/// `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O errors from `r`; `InvalidData` if the prefix is zero, exceeds
/// [`MAX_FRAME`], or the payload fails its checksum; `UnexpectedEof` if the
/// stream ends mid-frame.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER];
    match r.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(header[4..].try_into().unwrap());
    validate_frame_len(len)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    verify_frame_checksum(&payload, checksum)?;
    Ok(Some(payload))
}

/// Rejects a frame length of zero or beyond [`MAX_FRAME`] before any
/// allocation happens.
///
/// # Errors
///
/// `InvalidData` describing the bad prefix.
pub fn validate_frame_len(len: usize) -> io::Result<()> {
    if len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "zero-length frame",
        ));
    }
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    Ok(())
}

/// Verifies a payload against the checksum its frame header declared.
///
/// # Errors
///
/// `InvalidData` on mismatch (in-flight corruption).
pub fn verify_frame_checksum(payload: &[u8], declared: u64) -> io::Result<()> {
    let actual = fnv1a64(payload);
    if actual != declared {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame checksum mismatch: header {declared:#018x}, payload {actual:#018x}"),
        ));
    }
    Ok(())
}

/// Encodes a denoise request payload at `version` (2 or 3). `idempotency`
/// of 0 means "no key"; the trace block is emitted only on v3 frames.
#[allow(clippy::too_many_arguments)]
pub fn encode_denoise_request(
    version: u8,
    id: u64,
    idempotency: u64,
    trace: TraceContext,
    priority: Priority,
    deadline: Option<Duration>,
    params: &ChambolleParams,
    input: &Grid<f32>,
) -> Vec<u8> {
    let (w, h) = input.dims();
    let mut buf = Vec::with_capacity(68 + 4 * w * h);
    buf.push(version);
    buf.push(KIND_DENOISE);
    buf.extend_from_slice(&id.to_le_bytes());
    put_trace(&mut buf, version, trace);
    buf.extend_from_slice(&idempotency.to_le_bytes());
    buf.push(match priority {
        Priority::Interactive => 0,
        Priority::Batch => 1,
    });
    let deadline_ms = deadline.map_or(0u32, |d| d.as_millis().min(u128::from(u32::MAX)) as u32);
    buf.extend_from_slice(&deadline_ms.to_le_bytes());
    buf.extend_from_slice(&params.theta.to_le_bytes());
    buf.extend_from_slice(&params.tau.to_le_bytes());
    buf.extend_from_slice(&params.iterations.to_le_bytes());
    buf.extend_from_slice(&(w as u32).to_le_bytes());
    buf.extend_from_slice(&(h as u32).to_le_bytes());
    for &px in input.as_slice() {
        buf.extend_from_slice(&px.to_le_bytes());
    }
    buf
}

/// Encodes a health-probe request payload at `version` (2 or 3).
pub fn encode_health_request(version: u8, id: u64, trace: TraceContext) -> Vec<u8> {
    let mut buf = Vec::with_capacity(35);
    buf.push(version);
    buf.push(KIND_HEALTH);
    buf.extend_from_slice(&id.to_le_bytes());
    put_trace(&mut buf, version, trace);
    buf
}

/// Encodes a metrics-snapshot scrape request (v3 only).
pub fn encode_metrics_request(id: u64, trace: TraceContext) -> Vec<u8> {
    let mut buf = Vec::with_capacity(35);
    buf.push(WIRE_VERSION);
    buf.push(KIND_METRICS);
    buf.extend_from_slice(&id.to_le_bytes());
    put_trace(&mut buf, WIRE_VERSION, trace);
    buf
}

/// Decodes a request payload.
///
/// # Errors
///
/// A structured [`DecodeError`] (version mismatch, unknown kind, truncated
/// or oversized payload, dimension/pixel-count mismatch, trailing bytes).
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, DecodeError> {
    if payload.is_empty() {
        return Err(DecodeError::Empty);
    }
    let mut c = Cursor::new(payload);
    let version = check_version(c.u8()?)?;
    let kind = c.u8()?;
    let id = c.u64()?;
    let trace = take_trace(&mut c, version)?;
    match kind {
        KIND_HEALTH => {
            c.finish()?;
            Ok(WireRequest::Health { id, trace })
        }
        KIND_METRICS if version >= WIRE_VERSION => {
            c.finish()?;
            Ok(WireRequest::Metrics { id, trace })
        }
        KIND_DENOISE => {
            let idempotency = c.u64()?;
            let priority = match c.u8()? {
                0 => Priority::Interactive,
                1 => Priority::Batch,
                p => return Err(DecodeError::UnknownPriority(p)),
            };
            let deadline_ms = c.u32()?;
            let theta = c.f32()?;
            let tau = c.f32()?;
            let iterations = c.u32()?;
            let (width, height) = c.dims()?;
            let expected = width * height * 4;
            if c.remaining() != expected {
                return Err(DecodeError::PixelCountMismatch {
                    expected,
                    got: c.remaining(),
                });
            }
            let mut pixels = Vec::with_capacity(width * height);
            for _ in 0..width * height {
                pixels.push(c.f32()?);
            }
            let input = Grid::from_vec(width, height, pixels)
                .map_err(|e| DecodeError::BadGrid(e.to_string()))?;
            let params = ChambolleParams {
                theta,
                tau,
                iterations,
            };
            let mut request = Request::new(Workload::Denoise { input, params })
                .with_priority(priority)
                .with_trace(trace);
            if deadline_ms > 0 {
                request = request.with_deadline(Duration::from_millis(u64::from(deadline_ms)));
            }
            Ok(WireRequest::Solve {
                id,
                idempotency,
                trace,
                request,
            })
        }
        k => Err(DecodeError::UnknownKind(k)),
    }
}

/// Encodes a successful response at the given fidelity tier, in the
/// requester's `version` (2 or 3).
pub fn encode_ok_response(
    version: u8,
    id: u64,
    trace: TraceContext,
    tier: ResponseTier,
    output: &Grid<f32>,
) -> Vec<u8> {
    let (w, h) = output.dims();
    let mut buf = Vec::with_capacity(44 + 4 * w * h);
    buf.push(version);
    buf.push(STATUS_OK);
    buf.extend_from_slice(&id.to_le_bytes());
    put_trace(&mut buf, version, trace);
    buf.push(match tier {
        ResponseTier::Full => TIER_FULL,
        ResponseTier::Degraded => TIER_DEGRADED,
    });
    buf.extend_from_slice(&(w as u32).to_le_bytes());
    buf.extend_from_slice(&(h as u32).to_le_bytes());
    for &px in output.as_slice() {
        buf.extend_from_slice(&px.to_le_bytes());
    }
    buf
}

/// Encodes an error response in the requester's `version` (2 or 3).
pub fn encode_err_response(
    version: u8,
    id: u64,
    trace: TraceContext,
    rejected: bool,
    code: ErrorCode,
    message: &str,
) -> Vec<u8> {
    let msg = message.as_bytes();
    let msg_len = msg.len().min(usize::from(u16::MAX));
    let mut buf = Vec::with_capacity(38 + msg_len);
    buf.push(version);
    buf.push(if rejected {
        STATUS_REJECTED
    } else {
        STATUS_FAILED
    });
    buf.extend_from_slice(&id.to_le_bytes());
    put_trace(&mut buf, version, trace);
    buf.push(code as u8);
    buf.extend_from_slice(&(msg_len as u16).to_le_bytes());
    buf.extend_from_slice(&msg[..msg_len]);
    buf
}

/// Encodes a health report response in the requester's `version` (2 or 3).
pub fn encode_health_response(
    version: u8,
    id: u64,
    trace: TraceContext,
    health: &HealthSnapshot,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(70);
    buf.push(version);
    buf.push(STATUS_HEALTH);
    buf.extend_from_slice(&id.to_le_bytes());
    put_trace(&mut buf, version, trace);
    buf.push(u8::from(health.accepting));
    buf.push(u8::from(health.dispatcher_live));
    buf.push(u8::from(health.brownout));
    buf.extend_from_slice(&(health.queue_depth.min(u32::MAX as usize) as u32).to_le_bytes());
    buf.extend_from_slice(&(health.queue_capacity.min(u32::MAX as usize) as u32).to_le_bytes());
    buf.extend_from_slice(&health.in_flight.to_le_bytes());
    buf.extend_from_slice(&health.completed.to_le_bytes());
    let age_ms = health.last_solve_age.map_or(u64::MAX, |d| {
        d.as_millis().min(u128::from(u64::MAX - 1)) as u64
    });
    buf.extend_from_slice(&age_ms.to_le_bytes());
    buf
}

/// Encodes a metrics-snapshot response (v3 only): the rest of the payload
/// is the snapshot document as UTF-8 JSON.
pub fn encode_metrics_response(id: u64, trace: TraceContext, snapshot: &str) -> Vec<u8> {
    let json = snapshot.as_bytes();
    let mut buf = Vec::with_capacity(35 + json.len());
    buf.push(WIRE_VERSION);
    buf.push(STATUS_METRICS);
    buf.extend_from_slice(&id.to_le_bytes());
    put_trace(&mut buf, WIRE_VERSION, trace);
    buf.extend_from_slice(json);
    buf
}

/// The wire error code + flag for a [`RejectReason`].
pub fn reject_code(reason: &RejectReason) -> ErrorCode {
    match reason {
        RejectReason::QueueFull { .. } => ErrorCode::QueueFull,
        RejectReason::ShuttingDown => ErrorCode::ShuttingDown,
        RejectReason::Invalid(_) => ErrorCode::Invalid,
    }
}

/// The wire error code for a [`ServiceError`].
pub fn service_error_code(err: &ServiceError) -> ErrorCode {
    match err {
        ServiceError::Cancelled => ErrorCode::Cancelled,
        ServiceError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        ServiceError::Solver(_) | ServiceError::Disconnected => ErrorCode::Solver,
    }
}

/// Decodes a response payload.
///
/// # Errors
///
/// A structured [`DecodeError`] on any malformed field; pixel payloads are
/// validated against the declared dimensions **before** any allocation.
pub fn decode_response(payload: &[u8]) -> Result<WireResponse, DecodeError> {
    if payload.is_empty() {
        return Err(DecodeError::Empty);
    }
    let mut c = Cursor::new(payload);
    let version = check_version(c.u8()?)?;
    let status = c.u8()?;
    let id = c.u64()?;
    let trace = take_trace(&mut c, version)?;
    match status {
        STATUS_OK => {
            let tier = match c.u8()? {
                TIER_FULL => ResponseTier::Full,
                TIER_DEGRADED => ResponseTier::Degraded,
                t => return Err(DecodeError::UnknownTier(t)),
            };
            let (width, height) = c.dims()?;
            let expected = width * height * 4;
            if c.remaining() != expected {
                return Err(DecodeError::PixelCountMismatch {
                    expected,
                    got: c.remaining(),
                });
            }
            let mut pixels = Vec::with_capacity(width * height);
            for _ in 0..width * height {
                pixels.push(c.f32()?);
            }
            let output = Grid::from_vec(width, height, pixels)
                .map_err(|e| DecodeError::BadGrid(e.to_string()))?;
            Ok(WireResponse::Ok {
                id,
                trace,
                tier,
                output,
            })
        }
        STATUS_REJECTED | STATUS_FAILED => {
            let raw = c.u8()?;
            let code = ErrorCode::from_u8(raw).ok_or(DecodeError::UnknownErrorCode(raw))?;
            let msg_len = usize::from(c.u16()?);
            let bytes = c.bytes(msg_len)?;
            let message = String::from_utf8_lossy(bytes).into_owned();
            c.finish()?;
            Ok(WireResponse::Err {
                id,
                trace,
                rejected: status == STATUS_REJECTED,
                code,
                message,
            })
        }
        STATUS_METRICS if version >= WIRE_VERSION => {
            let bytes = c.bytes(c.remaining())?;
            let snapshot = String::from_utf8_lossy(bytes).into_owned();
            Ok(WireResponse::Metrics {
                id,
                trace,
                snapshot,
            })
        }
        STATUS_HEALTH => {
            let accepting = c.u8()? != 0;
            let dispatcher_live = c.u8()? != 0;
            let brownout = c.u8()? != 0;
            let queue_depth = c.u32()? as usize;
            let queue_capacity = c.u32()? as usize;
            let in_flight = c.u64()?;
            let completed = c.u64()?;
            let age_ms = c.u64()?;
            c.finish()?;
            Ok(WireResponse::Health {
                id,
                trace,
                health: HealthSnapshot {
                    accepting,
                    dispatcher_live,
                    brownout,
                    queue_depth,
                    queue_capacity,
                    in_flight,
                    completed,
                    last_solve_age: (age_ms != u64::MAX).then(|| Duration::from_millis(age_ms)),
                },
            })
        }
        s => Err(DecodeError::UnknownStatus(s)),
    }
}

/// Minimal bounds-checked reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                wanted: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_le_bytes(self.bytes(16)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Reads a `(width, height)` pair and bounds it against [`MAX_FRAME`]
    /// before the caller allocates anything sized by it.
    fn dims(&mut self) -> Result<(usize, usize), DecodeError> {
        let width = self.u32()? as usize;
        let height = self.u32()? as usize;
        let cells = width
            .checked_mul(height)
            .and_then(|n| n.checked_mul(4))
            .ok_or(DecodeError::OversizedDimensions { width, height })?;
        if cells > MAX_FRAME {
            return Err(DecodeError::OversizedDimensions { width, height });
        }
        Ok((width, height))
    }

    /// Asserts the payload is fully consumed.
    fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                count: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> TraceContext {
        TraceContext {
            trace_id: 0xDEAD_BEEF_CAFE_F00D_0123_4567_89AB_CDEF,
            span_id: 0x5EED_1234_5678_9ABC,
            sampled: true,
        }
    }

    #[test]
    fn request_round_trips_bit_exact() {
        let input = Grid::from_fn(5, 3, |x, y| (x * 31 + y * 7) as f32 / 13.0);
        let params = ChambolleParams {
            theta: 0.25,
            tau: 0.248,
            iterations: 42,
        };
        let payload = encode_denoise_request(
            WIRE_VERSION,
            7,
            99,
            sample_trace(),
            Priority::Interactive,
            Some(Duration::from_millis(1500)),
            &params,
            &input,
        );
        match decode_request(&payload).unwrap() {
            WireRequest::Solve {
                id,
                idempotency,
                trace,
                request,
            } => {
                assert_eq!(id, 7);
                assert_eq!(idempotency, 99);
                assert_eq!(trace, sample_trace());
                assert_eq!(request.trace, sample_trace());
                assert_eq!(request.priority, Priority::Interactive);
                assert_eq!(request.deadline, Some(Duration::from_millis(1500)));
                match &request.workload {
                    Workload::Denoise {
                        input: got,
                        params: p,
                    } => {
                        assert_eq!(got.as_slice(), input.as_slice());
                        assert_eq!(p.theta.to_bits(), params.theta.to_bits());
                        assert_eq!(p.tau.to_bits(), params.tau.to_bits());
                        assert_eq!(p.iterations, params.iterations);
                    }
                    other => panic!("wrong workload: {other:?}"),
                }
            }
            other => panic!("expected a solve request: {other:?}"),
        }
    }

    #[test]
    fn health_frames_round_trip() {
        match decode_request(&encode_health_request(WIRE_VERSION, 13, sample_trace())).unwrap() {
            WireRequest::Health { id, trace } => {
                assert_eq!(id, 13);
                assert_eq!(trace, sample_trace());
            }
            other => panic!("expected a health probe: {other:?}"),
        }
        let snap = HealthSnapshot {
            accepting: true,
            dispatcher_live: true,
            brownout: false,
            queue_depth: 3,
            queue_capacity: 64,
            in_flight: 5,
            completed: 1000,
            last_solve_age: Some(Duration::from_millis(40)),
        };
        let enc = encode_health_response(WIRE_VERSION, 13, sample_trace(), &snap);
        match decode_response(&enc).unwrap() {
            WireResponse::Health { id, trace, health } => {
                assert_eq!(id, 13);
                assert_eq!(trace, sample_trace());
                assert_eq!(health, snap);
            }
            other => panic!("expected health: {other:?}"),
        }
        // "Never solved" survives the trip as None.
        let fresh = HealthSnapshot {
            last_solve_age: None,
            ..snap
        };
        let enc = encode_health_response(WIRE_VERSION, 1, TraceContext::NONE, &fresh);
        match decode_response(&enc).unwrap() {
            WireResponse::Health { health, .. } => assert_eq!(health.last_solve_age, None),
            other => panic!("expected health: {other:?}"),
        }
    }

    #[test]
    fn v2_frames_round_trip_with_tracing_silently_dropped() {
        // A v3 build writing v2 frames (for a v2 peer) omits the trace
        // block even when the caller holds an active context, and a v2
        // frame decodes with TraceContext::NONE — same bytes a real v2
        // build would produce and accept.
        let input = Grid::from_fn(3, 2, |x, y| (x + y) as f32);
        let params = ChambolleParams::with_iterations(9);
        let v2 = encode_denoise_request(
            WIRE_VERSION_V2,
            21,
            5,
            sample_trace(),
            Priority::Batch,
            None,
            &params,
            &input,
        );
        assert_eq!(v2[0], WIRE_VERSION_V2);
        assert_eq!(v2.len(), 43 + 4 * 3 * 2, "v2 layout has no trace block");
        match decode_request(&v2).unwrap() {
            WireRequest::Solve {
                id, trace, request, ..
            } => {
                assert_eq!(id, 21);
                assert_eq!(trace, TraceContext::NONE);
                assert_eq!(request.trace, TraceContext::NONE);
            }
            other => panic!("expected a solve request: {other:?}"),
        }
        let ok = encode_ok_response(
            WIRE_VERSION_V2,
            21,
            sample_trace(),
            ResponseTier::Full,
            &input,
        );
        assert_eq!(ok.len(), 19 + 4 * 3 * 2, "v2 ok layout has no trace block");
        match decode_response(&ok).unwrap() {
            WireResponse::Ok { trace, output, .. } => {
                assert_eq!(trace, TraceContext::NONE);
                assert_eq!(output.as_slice(), input.as_slice());
            }
            other => panic!("expected ok: {other:?}"),
        }
        let probe = encode_health_request(WIRE_VERSION_V2, 2, sample_trace());
        assert_eq!(probe.len(), 10);
        assert!(matches!(
            decode_request(&probe).unwrap(),
            WireRequest::Health { id: 2, trace } if trace == TraceContext::NONE
        ));
    }

    #[test]
    fn v2_peers_cannot_request_metrics() {
        // KIND_METRICS is a v3 extension: the same byte under a v2 version
        // prefix is an unknown kind, exactly as a real v2 build answers.
        let mut raw = vec![WIRE_VERSION_V2, KIND_METRICS];
        raw.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(
            decode_request(&raw).unwrap_err(),
            DecodeError::UnknownKind(KIND_METRICS)
        );
    }

    #[test]
    fn metrics_frames_round_trip() {
        match decode_request(&encode_metrics_request(31, sample_trace())).unwrap() {
            WireRequest::Metrics { id, trace } => {
                assert_eq!(id, 31);
                assert_eq!(trace, sample_trace());
            }
            other => panic!("expected a metrics scrape: {other:?}"),
        }
        let doc = r#"{"schema":"chambolle.metrics_snapshot.v1","uptime_us":5}"#;
        match decode_response(&encode_metrics_response(31, sample_trace(), doc)).unwrap() {
            WireResponse::Metrics {
                id,
                trace,
                snapshot,
            } => {
                assert_eq!(id, 31);
                assert_eq!(trace, sample_trace());
                assert_eq!(snapshot, doc);
            }
            other => panic!("expected metrics: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let grid = Grid::from_fn(3, 2, |x, y| (x + 10 * y) as f32);
        let ok = encode_ok_response(
            WIRE_VERSION,
            9,
            sample_trace(),
            ResponseTier::Degraded,
            &grid,
        );
        match decode_response(&ok).unwrap() {
            WireResponse::Ok {
                id,
                trace,
                tier,
                output,
            } => {
                assert_eq!(id, 9);
                assert_eq!(trace, sample_trace());
                assert_eq!(tier, ResponseTier::Degraded);
                assert_eq!(output.as_slice(), grid.as_slice());
            }
            other => panic!("expected ok: {other:?}"),
        }
        let err = encode_err_response(
            WIRE_VERSION,
            11,
            TraceContext::NONE,
            true,
            ErrorCode::QueueFull,
            "queue full (4/4)",
        );
        match decode_response(&err).unwrap() {
            WireResponse::Err {
                id,
                rejected,
                code,
                message,
                ..
            } => {
                assert_eq!(id, 11);
                assert!(rejected);
                assert_eq!(code, ErrorCode::QueueFull);
                assert!(message.contains("4/4"));
            }
            other => panic!("expected err: {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        assert_eq!(decode_request(&[]).unwrap_err(), DecodeError::Empty);
        assert!(matches!(
            decode_request(&[9, 9]).unwrap_err(),
            DecodeError::UnsupportedVersion(9)
        ));
        let mut ok = encode_denoise_request(
            WIRE_VERSION,
            1,
            0,
            TraceContext::NONE,
            Priority::Batch,
            None,
            &ChambolleParams::with_iterations(3),
            &Grid::new(4, 4, 0.0f32),
        );
        ok.truncate(ok.len() - 1); // drop one pixel byte
        assert!(matches!(
            decode_request(&ok).unwrap_err(),
            DecodeError::PixelCountMismatch { .. }
        ));
        assert!(decode_response(&[WIRE_VERSION, 7, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn oversized_dimensions_are_rejected_before_allocation() {
        // An ok-response header declaring a 2^31 x 2^31 frame with no pixel
        // bytes behind it: decode must reject on the dimension field, not
        // attempt a multi-exabyte Vec.
        let mut buf = Vec::new();
        buf.push(WIRE_VERSION);
        buf.push(STATUS_OK);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&[0u8; 25]); // trace block (inactive)
        buf.push(TIER_FULL);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_response(&buf).unwrap_err(),
            DecodeError::OversizedDimensions { .. }
        ));
        // Same guard on the request path (dims sit at 60..68 under v3).
        let mut req = encode_denoise_request(
            WIRE_VERSION,
            1,
            0,
            TraceContext::NONE,
            Priority::Batch,
            None,
            &ChambolleParams::with_iterations(3),
            &Grid::new(2, 2, 0.0f32),
        );
        req[60..64].copy_from_slice(&u32::MAX.to_le_bytes());
        req[64..68].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&req).unwrap_err(),
            DecodeError::OversizedDimensions { .. }
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut probe = encode_health_request(WIRE_VERSION, 5, TraceContext::NONE);
        probe.push(0xAB);
        assert_eq!(
            decode_request(&probe).unwrap_err(),
            DecodeError::TrailingBytes { count: 1 }
        );
    }

    #[test]
    fn frames_round_trip_and_guard_length_and_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"x").unwrap();
        let mut r = io::Cursor::new(buf.clone());
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"x");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        // Zero-length frames are rejected on both sides.
        assert!(write_frame(&mut Vec::new(), b"").is_err());
        let mut zero = Vec::new();
        zero.extend_from_slice(&0u32.to_le_bytes());
        zero.extend_from_slice(&fnv1a64(b"").to_le_bytes());
        assert!(read_frame(&mut io::Cursor::new(zero)).is_err());

        // A hostile length prefix fails before allocating.
        let mut bad = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 8]);
        assert!(read_frame(&mut io::Cursor::new(bad)).is_err());

        // A flipped payload bit fails the checksum.
        let mut corrupt = buf;
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x10;
        let mut r = io::Cursor::new(corrupt);
        let err = read_frame(&mut r).unwrap().map(|_| ());
        assert!(err.is_some(), "first frame is intact");
        assert!(read_frame(&mut r).is_err(), "second frame corrupt");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Deterministic corruption of an encoded payload: flip bits,
        /// truncate, or extend, driven by the generated plan.
        fn corrupt(payload: &[u8], flips: &[(usize, u8)], truncate_to: usize) -> Vec<u8> {
            let mut bytes = payload.to_vec();
            for &(pos, bit) in flips {
                if !bytes.is_empty() {
                    let i = pos % bytes.len();
                    bytes[i] ^= 1 << (bit % 8);
                }
            }
            if truncate_to < bytes.len() {
                bytes.truncate(truncate_to);
            }
            bytes
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// decode(corrupt(encode(x))) never panics and never allocates
            /// unboundedly — it returns Ok (benign corruption, e.g. inside
            /// pixel data) or a structured DecodeError.
            #[test]
            fn corrupted_request_decode_is_total(
                w in 1usize..6,
                h in 1usize..6,
                iters in 1u32..50,
                flip_pos in proptest::collection::vec((0usize..4096, 0u8..8), 0..6),
                trunc in 0usize..4096,
            ) {
                let input = Grid::from_fn(w, h, |x, y| (x * 7 + y) as f32 / 11.0);
                let params = ChambolleParams::with_iterations(iters);
                for version in [WIRE_VERSION_V2, WIRE_VERSION] {
                    let payload = encode_denoise_request(
                        version, 42, 7, super::sample_trace(), Priority::Batch,
                        Some(Duration::from_millis(10)), &params, &input,
                    );
                    let mangled = corrupt(&payload, &flip_pos, trunc);
                    let _ = decode_request(&mangled); // must not panic
                }
            }

            /// Same totality for the response decoder.
            #[test]
            fn corrupted_response_decode_is_total(
                w in 1usize..6,
                h in 1usize..6,
                flip_pos in proptest::collection::vec((0usize..4096, 0u8..8), 0..6),
                trunc in 0usize..4096,
            ) {
                let grid = Grid::from_fn(w, h, |x, y| (x + y) as f32);
                let trace = super::sample_trace();
                for payload in [
                    encode_ok_response(WIRE_VERSION, 3, trace, ResponseTier::Full, &grid),
                    encode_ok_response(WIRE_VERSION_V2, 3, trace, ResponseTier::Full, &grid),
                    encode_err_response(WIRE_VERSION, 3, trace, false, ErrorCode::Solver, "boom"),
                    encode_metrics_response(3, trace, r#"{"schema":"x"}"#),
                    encode_health_response(WIRE_VERSION, 3, trace, &HealthSnapshot {
                        accepting: true,
                        dispatcher_live: true,
                        brownout: false,
                        queue_depth: 1,
                        queue_capacity: 8,
                        in_flight: 0,
                        completed: 9,
                        last_solve_age: None,
                    }),
                ] {
                    let mangled = corrupt(&payload, &flip_pos, trunc);
                    let _ = decode_response(&mangled); // must not panic
                }
            }

            /// Arbitrary byte soup never panics either decoder.
            #[test]
            fn random_bytes_never_panic_decoders(
                bytes in proptest::collection::vec(any::<u8>(), 0..512),
            ) {
                let _ = decode_request(&bytes);
                let _ = decode_response(&bytes);
            }

            /// Payload corruption inside a frame is always caught by the
            /// frame checksum before decode even sees it.
            #[test]
            fn frame_checksum_catches_payload_corruption(
                flip_byte in 0usize..64,
                flip_bit in 0u8..8,
            ) {
                let payload = encode_health_request(WIRE_VERSION, 77, super::sample_trace());
                let mut framed = Vec::new();
                write_frame(&mut framed, &payload).unwrap();
                // Flip one bit inside the payload region (past the header).
                let i = FRAME_HEADER + (flip_byte % payload.len());
                framed[i] ^= 1 << flip_bit;
                let err = read_frame(&mut io::Cursor::new(framed)).unwrap_err();
                prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            }
        }
    }
}
