//! Hand-rolled framed binary protocol of the TCP front-end.
//!
//! Every message is one frame: a `u32` little-endian payload length, a
//! `u64` little-endian FNV-1a checksum of the payload, then the payload
//! bytes. Frames larger than [`MAX_FRAME`] or empty are rejected before
//! allocation, so a corrupt or hostile length prefix cannot OOM the server,
//! and the checksum turns *any* in-flight byte corruption into a structured
//! transport error instead of silently wrong pixels — which is what lets
//! [`ResilientClient`](crate::ResilientClient) treat corruption as a
//! retryable fault while still guaranteeing bit-identical results.
//!
//! Request payload (version 2):
//!
//! ```text
//! offset  size  field
//! 0       1     protocol version  (= 2)
//! 1       1     frame kind        (1 = denoise solve, 2 = health probe)
//! 2       8     client request id (u64 LE, echoed back verbatim)
//! --- kind 1 (denoise) ---
//! 10      8     idempotency key   (u64 LE, 0 = none; nonzero keys dedupe
//!                                  retries against the server-side cache)
//! 18      1     priority          (0 interactive, 1 batch)
//! 19      4     deadline_ms       (u32 LE, 0 = no deadline)
//! 23      4     theta             (f32 LE)
//! 27      4     tau               (f32 LE)
//! 31      4     iterations        (u32 LE)
//! 35      4     width             (u32 LE)
//! 39      4     height            (u32 LE)
//! 43      4*w*h pixels            (f32 LE, row-major)
//! --- kind 2 (health) --- no further fields
//! ```
//!
//! Response payload (version 2):
//!
//! ```text
//! 0       1     protocol version  (= 2)
//! 1       1     status   (0 ok, 1 rejected, 2 failed, 3 health report)
//! 2       8     client request id (u64 LE)
//! -- status 0 --
//! 10      1     fidelity tier     (0 full, 1 degraded/brownout)
//! 11      4     width; then 4 height; then 4*w*h f32 LE pixels
//! -- status 1 or 2 --
//! 10      1     error code        (see ErrorCode)
//! 11      2     message length    (u16 LE)
//! 13      n     UTF-8 message
//! -- status 3 --
//! 10      1     accepting         (0/1)
//! 11      1     dispatcher_live   (0/1)
//! 12      1     brownout_active   (0/1)
//! 13      4     queue_depth       (u32 LE)
//! 17      4     queue_capacity    (u32 LE)
//! 21      8     in_flight         (u64 LE)
//! 29      8     completed         (u64 LE)
//! 37      8     last_solve_age_ms (u64 LE, u64::MAX = no solve yet)
//! ```

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

use chambolle_core::ChambolleParams;
use chambolle_imaging::Grid;

use crate::request::{Priority, RejectReason, Request, ResponseTier, ServiceError, Workload};
use crate::service::HealthSnapshot;

/// Protocol version both sides must speak.
pub const WIRE_VERSION: u8 = 2;

/// Hard ceiling on a frame's payload size (64 MiB) — large enough for a
/// 4096×4096 f32 image, small enough to bound a bad prefix's damage.
pub const MAX_FRAME: usize = 1 << 26;

/// Bytes of frame header preceding every payload: `u32` length plus `u64`
/// FNV-1a payload checksum.
pub const FRAME_HEADER: usize = 12;

const KIND_DENOISE: u8 = 1;
const KIND_HEALTH: u8 = 2;
const STATUS_OK: u8 = 0;
const STATUS_REJECTED: u8 = 1;
const STATUS_FAILED: u8 = 2;
const STATUS_HEALTH: u8 = 3;
const TIER_FULL: u8 = 0;
const TIER_DEGRADED: u8 = 1;

/// FNV-1a over a byte slice — the frame integrity checksum.
///
/// Not cryptographic: it detects the chaos injector's (and real networks')
/// bit flips, not an adversary.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Stable numeric codes for rejected/failed responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Queue at capacity.
    QueueFull = 1,
    /// Service draining.
    ShuttingDown = 2,
    /// Workload failed validation.
    Invalid = 3,
    /// Deadline passed before the solve finished.
    DeadlineExceeded = 4,
    /// Request cancelled.
    Cancelled = 5,
    /// Solver failure.
    Solver = 6,
    /// Malformed frame or protocol mismatch.
    Protocol = 7,
}

impl ErrorCode {
    fn from_u8(code: u8) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::QueueFull),
            2 => Some(ErrorCode::ShuttingDown),
            3 => Some(ErrorCode::Invalid),
            4 => Some(ErrorCode::DeadlineExceeded),
            5 => Some(ErrorCode::Cancelled),
            6 => Some(ErrorCode::Solver),
            7 => Some(ErrorCode::Protocol),
            _ => None,
        }
    }
}

/// Structured decode failure: every way a payload can be malformed, as a
/// typed variant instead of a panic or an unbounded allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload had no bytes at all.
    Empty,
    /// The version byte named a protocol this build does not speak.
    UnsupportedVersion(u8),
    /// Unknown request frame kind.
    UnknownKind(u8),
    /// Unknown response status byte.
    UnknownStatus(u8),
    /// Unknown priority discriminant.
    UnknownPriority(u8),
    /// Unknown error-code discriminant.
    UnknownErrorCode(u8),
    /// Unknown fidelity-tier discriminant.
    UnknownTier(u8),
    /// The payload ended before a field finished.
    Truncated {
        /// Bytes the next field needed.
        wanted: usize,
        /// Bytes actually left.
        remaining: usize,
    },
    /// Declared dimensions overflow or exceed any representable frame.
    OversizedDimensions {
        /// Declared width.
        width: usize,
        /// Declared height.
        height: usize,
    },
    /// The pixel block does not match the declared dimensions.
    PixelCountMismatch {
        /// Bytes the dimensions imply.
        expected: usize,
        /// Bytes present.
        got: usize,
    },
    /// Bytes remained after a complete message (corrupt length field).
    TrailingBytes {
        /// Leftover byte count.
        count: usize,
    },
    /// The decoded grid failed construction (zero dimension, etc.).
    BadGrid(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Empty => write!(f, "empty payload"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::UnknownStatus(s) => write!(f, "unknown response status {s}"),
            DecodeError::UnknownPriority(p) => write!(f, "unknown priority {p}"),
            DecodeError::UnknownErrorCode(c) => write!(f, "unknown error code {c}"),
            DecodeError::UnknownTier(t) => write!(f, "unknown fidelity tier {t}"),
            DecodeError::Truncated { wanted, remaining } => {
                write!(
                    f,
                    "payload truncated: wanted {wanted} bytes, {remaining} left"
                )
            }
            DecodeError::OversizedDimensions { width, height } => {
                write!(
                    f,
                    "dimensions {width}x{height} exceed any representable frame"
                )
            }
            DecodeError::PixelCountMismatch { expected, got } => {
                write!(f, "pixel payload is {got} bytes, expected {expected}")
            }
            DecodeError::TrailingBytes { count } => {
                write!(f, "{count} bytes left over after a complete message")
            }
            DecodeError::BadGrid(e) => write!(f, "grid rejected: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A decoded wire request.
#[derive(Debug, Clone)]
pub enum WireRequest {
    /// A denoise solve.
    Solve {
        /// Client-chosen id, echoed back in the response.
        id: u64,
        /// Idempotency key (0 = none): retries carrying the same nonzero
        /// key return the server's cached result instead of recomputing.
        idempotency: u64,
        /// The service request it maps to.
        request: Request,
    },
    /// A health/readiness probe.
    Health {
        /// Client-chosen id, echoed back in the response.
        id: u64,
    },
}

impl WireRequest {
    /// The client-chosen id of either kind.
    pub fn id(&self) -> u64 {
        match self {
            WireRequest::Solve { id, .. } | WireRequest::Health { id } => *id,
        }
    }
}

/// A decoded wire response.
#[derive(Debug, Clone)]
pub enum WireResponse {
    /// Successful solve.
    Ok {
        /// Echoed client id.
        id: u64,
        /// Fidelity tier the service answered at.
        tier: ResponseTier,
        /// The denoised image.
        output: Grid<f32>,
    },
    /// Admission rejection or solve failure.
    Err {
        /// Echoed client id.
        id: u64,
        /// `true` if rejected at admission (never solved).
        rejected: bool,
        /// Stable error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Health probe report.
    Health {
        /// Echoed client id.
        id: u64,
        /// The service's point-in-time health snapshot.
        health: HealthSnapshot,
    },
}

/// Writes one length-prefixed, checksummed frame.
///
/// # Errors
///
/// I/O errors from `w`; `InvalidInput` if the payload is empty or exceeds
/// [`MAX_FRAME`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "zero-length frames are not part of the protocol",
        ));
    }
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&fnv1a64(payload).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame and verifies its checksum. Returns
/// `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O errors from `r`; `InvalidData` if the prefix is zero, exceeds
/// [`MAX_FRAME`], or the payload fails its checksum; `UnexpectedEof` if the
/// stream ends mid-frame.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER];
    match r.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(header[4..].try_into().unwrap());
    validate_frame_len(len)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    verify_frame_checksum(&payload, checksum)?;
    Ok(Some(payload))
}

/// Rejects a frame length of zero or beyond [`MAX_FRAME`] before any
/// allocation happens.
///
/// # Errors
///
/// `InvalidData` describing the bad prefix.
pub fn validate_frame_len(len: usize) -> io::Result<()> {
    if len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "zero-length frame",
        ));
    }
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    Ok(())
}

/// Verifies a payload against the checksum its frame header declared.
///
/// # Errors
///
/// `InvalidData` on mismatch (in-flight corruption).
pub fn verify_frame_checksum(payload: &[u8], declared: u64) -> io::Result<()> {
    let actual = fnv1a64(payload);
    if actual != declared {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame checksum mismatch: header {declared:#018x}, payload {actual:#018x}"),
        ));
    }
    Ok(())
}

/// Encodes a denoise request payload. `idempotency` of 0 means "no key".
pub fn encode_denoise_request(
    id: u64,
    idempotency: u64,
    priority: Priority,
    deadline: Option<Duration>,
    params: &ChambolleParams,
    input: &Grid<f32>,
) -> Vec<u8> {
    let (w, h) = input.dims();
    let mut buf = Vec::with_capacity(43 + 4 * w * h);
    buf.push(WIRE_VERSION);
    buf.push(KIND_DENOISE);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&idempotency.to_le_bytes());
    buf.push(match priority {
        Priority::Interactive => 0,
        Priority::Batch => 1,
    });
    let deadline_ms = deadline.map_or(0u32, |d| d.as_millis().min(u128::from(u32::MAX)) as u32);
    buf.extend_from_slice(&deadline_ms.to_le_bytes());
    buf.extend_from_slice(&params.theta.to_le_bytes());
    buf.extend_from_slice(&params.tau.to_le_bytes());
    buf.extend_from_slice(&params.iterations.to_le_bytes());
    buf.extend_from_slice(&(w as u32).to_le_bytes());
    buf.extend_from_slice(&(h as u32).to_le_bytes());
    for &px in input.as_slice() {
        buf.extend_from_slice(&px.to_le_bytes());
    }
    buf
}

/// Encodes a health-probe request payload.
pub fn encode_health_request(id: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(10);
    buf.push(WIRE_VERSION);
    buf.push(KIND_HEALTH);
    buf.extend_from_slice(&id.to_le_bytes());
    buf
}

/// Decodes a request payload.
///
/// # Errors
///
/// A structured [`DecodeError`] (version mismatch, unknown kind, truncated
/// or oversized payload, dimension/pixel-count mismatch, trailing bytes).
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, DecodeError> {
    if payload.is_empty() {
        return Err(DecodeError::Empty);
    }
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    if version != WIRE_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let kind = c.u8()?;
    let id = c.u64()?;
    match kind {
        KIND_HEALTH => {
            c.finish()?;
            Ok(WireRequest::Health { id })
        }
        KIND_DENOISE => {
            let idempotency = c.u64()?;
            let priority = match c.u8()? {
                0 => Priority::Interactive,
                1 => Priority::Batch,
                p => return Err(DecodeError::UnknownPriority(p)),
            };
            let deadline_ms = c.u32()?;
            let theta = c.f32()?;
            let tau = c.f32()?;
            let iterations = c.u32()?;
            let (width, height) = c.dims()?;
            let expected = width * height * 4;
            if c.remaining() != expected {
                return Err(DecodeError::PixelCountMismatch {
                    expected,
                    got: c.remaining(),
                });
            }
            let mut pixels = Vec::with_capacity(width * height);
            for _ in 0..width * height {
                pixels.push(c.f32()?);
            }
            let input = Grid::from_vec(width, height, pixels)
                .map_err(|e| DecodeError::BadGrid(e.to_string()))?;
            let params = ChambolleParams {
                theta,
                tau,
                iterations,
            };
            let mut request =
                Request::new(Workload::Denoise { input, params }).with_priority(priority);
            if deadline_ms > 0 {
                request = request.with_deadline(Duration::from_millis(u64::from(deadline_ms)));
            }
            Ok(WireRequest::Solve {
                id,
                idempotency,
                request,
            })
        }
        k => Err(DecodeError::UnknownKind(k)),
    }
}

/// Encodes a successful response at the given fidelity tier.
pub fn encode_ok_response(id: u64, tier: ResponseTier, output: &Grid<f32>) -> Vec<u8> {
    let (w, h) = output.dims();
    let mut buf = Vec::with_capacity(19 + 4 * w * h);
    buf.push(WIRE_VERSION);
    buf.push(STATUS_OK);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.push(match tier {
        ResponseTier::Full => TIER_FULL,
        ResponseTier::Degraded => TIER_DEGRADED,
    });
    buf.extend_from_slice(&(w as u32).to_le_bytes());
    buf.extend_from_slice(&(h as u32).to_le_bytes());
    for &px in output.as_slice() {
        buf.extend_from_slice(&px.to_le_bytes());
    }
    buf
}

/// Encodes an error response.
pub fn encode_err_response(id: u64, rejected: bool, code: ErrorCode, message: &str) -> Vec<u8> {
    let msg = message.as_bytes();
    let msg_len = msg.len().min(usize::from(u16::MAX));
    let mut buf = Vec::with_capacity(13 + msg_len);
    buf.push(WIRE_VERSION);
    buf.push(if rejected {
        STATUS_REJECTED
    } else {
        STATUS_FAILED
    });
    buf.extend_from_slice(&id.to_le_bytes());
    buf.push(code as u8);
    buf.extend_from_slice(&(msg_len as u16).to_le_bytes());
    buf.extend_from_slice(&msg[..msg_len]);
    buf
}

/// Encodes a health report response.
pub fn encode_health_response(id: u64, health: &HealthSnapshot) -> Vec<u8> {
    let mut buf = Vec::with_capacity(45);
    buf.push(WIRE_VERSION);
    buf.push(STATUS_HEALTH);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.push(u8::from(health.accepting));
    buf.push(u8::from(health.dispatcher_live));
    buf.push(u8::from(health.brownout));
    buf.extend_from_slice(&(health.queue_depth.min(u32::MAX as usize) as u32).to_le_bytes());
    buf.extend_from_slice(&(health.queue_capacity.min(u32::MAX as usize) as u32).to_le_bytes());
    buf.extend_from_slice(&health.in_flight.to_le_bytes());
    buf.extend_from_slice(&health.completed.to_le_bytes());
    let age_ms = health.last_solve_age.map_or(u64::MAX, |d| {
        d.as_millis().min(u128::from(u64::MAX - 1)) as u64
    });
    buf.extend_from_slice(&age_ms.to_le_bytes());
    buf
}

/// The wire error code + flag for a [`RejectReason`].
pub fn reject_code(reason: &RejectReason) -> ErrorCode {
    match reason {
        RejectReason::QueueFull { .. } => ErrorCode::QueueFull,
        RejectReason::ShuttingDown => ErrorCode::ShuttingDown,
        RejectReason::Invalid(_) => ErrorCode::Invalid,
    }
}

/// The wire error code for a [`ServiceError`].
pub fn service_error_code(err: &ServiceError) -> ErrorCode {
    match err {
        ServiceError::Cancelled => ErrorCode::Cancelled,
        ServiceError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        ServiceError::Solver(_) | ServiceError::Disconnected => ErrorCode::Solver,
    }
}

/// Decodes a response payload.
///
/// # Errors
///
/// A structured [`DecodeError`] on any malformed field; pixel payloads are
/// validated against the declared dimensions **before** any allocation.
pub fn decode_response(payload: &[u8]) -> Result<WireResponse, DecodeError> {
    if payload.is_empty() {
        return Err(DecodeError::Empty);
    }
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    if version != WIRE_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let status = c.u8()?;
    let id = c.u64()?;
    match status {
        STATUS_OK => {
            let tier = match c.u8()? {
                TIER_FULL => ResponseTier::Full,
                TIER_DEGRADED => ResponseTier::Degraded,
                t => return Err(DecodeError::UnknownTier(t)),
            };
            let (width, height) = c.dims()?;
            let expected = width * height * 4;
            if c.remaining() != expected {
                return Err(DecodeError::PixelCountMismatch {
                    expected,
                    got: c.remaining(),
                });
            }
            let mut pixels = Vec::with_capacity(width * height);
            for _ in 0..width * height {
                pixels.push(c.f32()?);
            }
            let output = Grid::from_vec(width, height, pixels)
                .map_err(|e| DecodeError::BadGrid(e.to_string()))?;
            Ok(WireResponse::Ok { id, tier, output })
        }
        STATUS_REJECTED | STATUS_FAILED => {
            let raw = c.u8()?;
            let code = ErrorCode::from_u8(raw).ok_or(DecodeError::UnknownErrorCode(raw))?;
            let msg_len = usize::from(c.u16()?);
            let bytes = c.bytes(msg_len)?;
            let message = String::from_utf8_lossy(bytes).into_owned();
            c.finish()?;
            Ok(WireResponse::Err {
                id,
                rejected: status == STATUS_REJECTED,
                code,
                message,
            })
        }
        STATUS_HEALTH => {
            let accepting = c.u8()? != 0;
            let dispatcher_live = c.u8()? != 0;
            let brownout = c.u8()? != 0;
            let queue_depth = c.u32()? as usize;
            let queue_capacity = c.u32()? as usize;
            let in_flight = c.u64()?;
            let completed = c.u64()?;
            let age_ms = c.u64()?;
            c.finish()?;
            Ok(WireResponse::Health {
                id,
                health: HealthSnapshot {
                    accepting,
                    dispatcher_live,
                    brownout,
                    queue_depth,
                    queue_capacity,
                    in_flight,
                    completed,
                    last_solve_age: (age_ms != u64::MAX).then(|| Duration::from_millis(age_ms)),
                },
            })
        }
        s => Err(DecodeError::UnknownStatus(s)),
    }
}

/// Minimal bounds-checked reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                wanted: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Reads a `(width, height)` pair and bounds it against [`MAX_FRAME`]
    /// before the caller allocates anything sized by it.
    fn dims(&mut self) -> Result<(usize, usize), DecodeError> {
        let width = self.u32()? as usize;
        let height = self.u32()? as usize;
        let cells = width
            .checked_mul(height)
            .and_then(|n| n.checked_mul(4))
            .ok_or(DecodeError::OversizedDimensions { width, height })?;
        if cells > MAX_FRAME {
            return Err(DecodeError::OversizedDimensions { width, height });
        }
        Ok((width, height))
    }

    /// Asserts the payload is fully consumed.
    fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                count: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_bit_exact() {
        let input = Grid::from_fn(5, 3, |x, y| (x * 31 + y * 7) as f32 / 13.0);
        let params = ChambolleParams {
            theta: 0.25,
            tau: 0.248,
            iterations: 42,
        };
        let payload = encode_denoise_request(
            7,
            99,
            Priority::Interactive,
            Some(Duration::from_millis(1500)),
            &params,
            &input,
        );
        match decode_request(&payload).unwrap() {
            WireRequest::Solve {
                id,
                idempotency,
                request,
            } => {
                assert_eq!(id, 7);
                assert_eq!(idempotency, 99);
                assert_eq!(request.priority, Priority::Interactive);
                assert_eq!(request.deadline, Some(Duration::from_millis(1500)));
                match &request.workload {
                    Workload::Denoise {
                        input: got,
                        params: p,
                    } => {
                        assert_eq!(got.as_slice(), input.as_slice());
                        assert_eq!(p.theta.to_bits(), params.theta.to_bits());
                        assert_eq!(p.tau.to_bits(), params.tau.to_bits());
                        assert_eq!(p.iterations, params.iterations);
                    }
                    other => panic!("wrong workload: {other:?}"),
                }
            }
            other => panic!("expected a solve request: {other:?}"),
        }
    }

    #[test]
    fn health_frames_round_trip() {
        match decode_request(&encode_health_request(13)).unwrap() {
            WireRequest::Health { id } => assert_eq!(id, 13),
            other => panic!("expected a health probe: {other:?}"),
        }
        let snap = HealthSnapshot {
            accepting: true,
            dispatcher_live: true,
            brownout: false,
            queue_depth: 3,
            queue_capacity: 64,
            in_flight: 5,
            completed: 1000,
            last_solve_age: Some(Duration::from_millis(40)),
        };
        match decode_response(&encode_health_response(13, &snap)).unwrap() {
            WireResponse::Health { id, health } => {
                assert_eq!(id, 13);
                assert_eq!(health, snap);
            }
            other => panic!("expected health: {other:?}"),
        }
        // "Never solved" survives the trip as None.
        let fresh = HealthSnapshot {
            last_solve_age: None,
            ..snap
        };
        match decode_response(&encode_health_response(1, &fresh)).unwrap() {
            WireResponse::Health { health, .. } => assert_eq!(health.last_solve_age, None),
            other => panic!("expected health: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let grid = Grid::from_fn(3, 2, |x, y| (x + 10 * y) as f32);
        match decode_response(&encode_ok_response(9, ResponseTier::Degraded, &grid)).unwrap() {
            WireResponse::Ok { id, tier, output } => {
                assert_eq!(id, 9);
                assert_eq!(tier, ResponseTier::Degraded);
                assert_eq!(output.as_slice(), grid.as_slice());
            }
            other => panic!("expected ok: {other:?}"),
        }
        let err = encode_err_response(11, true, ErrorCode::QueueFull, "queue full (4/4)");
        match decode_response(&err).unwrap() {
            WireResponse::Err {
                id,
                rejected,
                code,
                message,
            } => {
                assert_eq!(id, 11);
                assert!(rejected);
                assert_eq!(code, ErrorCode::QueueFull);
                assert!(message.contains("4/4"));
            }
            other => panic!("expected err: {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        assert_eq!(decode_request(&[]).unwrap_err(), DecodeError::Empty);
        assert!(matches!(
            decode_request(&[9, 9]).unwrap_err(),
            DecodeError::UnsupportedVersion(9)
        ));
        let mut ok = encode_denoise_request(
            1,
            0,
            Priority::Batch,
            None,
            &ChambolleParams::with_iterations(3),
            &Grid::new(4, 4, 0.0f32),
        );
        ok.truncate(ok.len() - 1); // drop one pixel byte
        assert!(matches!(
            decode_request(&ok).unwrap_err(),
            DecodeError::PixelCountMismatch { .. }
        ));
        assert!(decode_response(&[WIRE_VERSION, 7, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn oversized_dimensions_are_rejected_before_allocation() {
        // An ok-response header declaring a 2^31 x 2^31 frame with no pixel
        // bytes behind it: decode must reject on the dimension field, not
        // attempt a multi-exabyte Vec.
        let mut buf = Vec::new();
        buf.push(WIRE_VERSION);
        buf.push(STATUS_OK);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(TIER_FULL);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_response(&buf).unwrap_err(),
            DecodeError::OversizedDimensions { .. }
        ));
        // Same guard on the request path.
        let mut req = encode_denoise_request(
            1,
            0,
            Priority::Batch,
            None,
            &ChambolleParams::with_iterations(3),
            &Grid::new(2, 2, 0.0f32),
        );
        req[35..39].copy_from_slice(&u32::MAX.to_le_bytes());
        req[39..43].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&req).unwrap_err(),
            DecodeError::OversizedDimensions { .. }
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut probe = encode_health_request(5);
        probe.push(0xAB);
        assert_eq!(
            decode_request(&probe).unwrap_err(),
            DecodeError::TrailingBytes { count: 1 }
        );
    }

    #[test]
    fn frames_round_trip_and_guard_length_and_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"x").unwrap();
        let mut r = io::Cursor::new(buf.clone());
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"x");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        // Zero-length frames are rejected on both sides.
        assert!(write_frame(&mut Vec::new(), b"").is_err());
        let mut zero = Vec::new();
        zero.extend_from_slice(&0u32.to_le_bytes());
        zero.extend_from_slice(&fnv1a64(b"").to_le_bytes());
        assert!(read_frame(&mut io::Cursor::new(zero)).is_err());

        // A hostile length prefix fails before allocating.
        let mut bad = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 8]);
        assert!(read_frame(&mut io::Cursor::new(bad)).is_err());

        // A flipped payload bit fails the checksum.
        let mut corrupt = buf;
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x10;
        let mut r = io::Cursor::new(corrupt);
        let err = read_frame(&mut r).unwrap().map(|_| ());
        assert!(err.is_some(), "first frame is intact");
        assert!(read_frame(&mut r).is_err(), "second frame corrupt");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Deterministic corruption of an encoded payload: flip bits,
        /// truncate, or extend, driven by the generated plan.
        fn corrupt(payload: &[u8], flips: &[(usize, u8)], truncate_to: usize) -> Vec<u8> {
            let mut bytes = payload.to_vec();
            for &(pos, bit) in flips {
                if !bytes.is_empty() {
                    let i = pos % bytes.len();
                    bytes[i] ^= 1 << (bit % 8);
                }
            }
            if truncate_to < bytes.len() {
                bytes.truncate(truncate_to);
            }
            bytes
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// decode(corrupt(encode(x))) never panics and never allocates
            /// unboundedly — it returns Ok (benign corruption, e.g. inside
            /// pixel data) or a structured DecodeError.
            #[test]
            fn corrupted_request_decode_is_total(
                w in 1usize..6,
                h in 1usize..6,
                iters in 1u32..50,
                flip_pos in proptest::collection::vec((0usize..4096, 0u8..8), 0..6),
                trunc in 0usize..4096,
            ) {
                let input = Grid::from_fn(w, h, |x, y| (x * 7 + y) as f32 / 11.0);
                let params = ChambolleParams::with_iterations(iters);
                let payload = encode_denoise_request(
                    42, 7, Priority::Batch, Some(Duration::from_millis(10)),
                    &params, &input,
                );
                let mangled = corrupt(&payload, &flip_pos, trunc);
                let _ = decode_request(&mangled); // must not panic
            }

            /// Same totality for the response decoder.
            #[test]
            fn corrupted_response_decode_is_total(
                w in 1usize..6,
                h in 1usize..6,
                flip_pos in proptest::collection::vec((0usize..4096, 0u8..8), 0..6),
                trunc in 0usize..4096,
            ) {
                let grid = Grid::from_fn(w, h, |x, y| (x + y) as f32);
                for payload in [
                    encode_ok_response(3, ResponseTier::Full, &grid),
                    encode_err_response(3, false, ErrorCode::Solver, "boom"),
                    encode_health_response(3, &HealthSnapshot {
                        accepting: true,
                        dispatcher_live: true,
                        brownout: false,
                        queue_depth: 1,
                        queue_capacity: 8,
                        in_flight: 0,
                        completed: 9,
                        last_solve_age: None,
                    }),
                ] {
                    let mangled = corrupt(&payload, &flip_pos, trunc);
                    let _ = decode_response(&mangled); // must not panic
                }
            }

            /// Arbitrary byte soup never panics either decoder.
            #[test]
            fn random_bytes_never_panic_decoders(
                bytes in proptest::collection::vec(any::<u8>(), 0..512),
            ) {
                let _ = decode_request(&bytes);
                let _ = decode_response(&bytes);
            }

            /// Payload corruption inside a frame is always caught by the
            /// frame checksum before decode even sees it.
            #[test]
            fn frame_checksum_catches_payload_corruption(
                flip_byte in 0usize..64,
                flip_bit in 0u8..8,
            ) {
                let payload = encode_health_request(77);
                let mut framed = Vec::new();
                write_frame(&mut framed, &payload).unwrap();
                // Flip one bit inside the payload region (past the header).
                let i = FRAME_HEADER + (flip_byte % payload.len());
                framed[i] ^= 1 << flip_bit;
                let err = read_frame(&mut io::Cursor::new(framed)).unwrap_err();
                prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            }
        }
    }
}
