//! Hand-rolled framed binary protocol of the TCP front-end.
//!
//! Every message is one frame: a `u32` little-endian payload length followed
//! by that many payload bytes. Frames larger than [`MAX_FRAME`] are rejected
//! before allocation, so a corrupt or hostile length prefix cannot OOM the
//! server.
//!
//! Request payload (denoise, the only wire-exposed workload):
//!
//! ```text
//! offset  size  field
//! 0       1     protocol version  (= 1)
//! 1       1     workload kind     (= 1, denoise)
//! 2       8     client request id (u64 LE, echoed back verbatim)
//! 10      1     priority          (0 interactive, 1 batch)
//! 11      4     deadline_ms       (u32 LE, 0 = no deadline)
//! 15      4     theta             (f32 LE)
//! 19      4     tau               (f32 LE)
//! 23      4     iterations        (u32 LE)
//! 27      4     width             (u32 LE)
//! 31      4     height            (u32 LE)
//! 35      4*w*h pixels            (f32 LE, row-major)
//! ```
//!
//! Response payload:
//!
//! ```text
//! 0       1     protocol version  (= 1)
//! 1       1     status            (0 ok, 1 rejected, 2 failed)
//! 2       8     client request id (u64 LE)
//! -- status 0 --
//! 10      4     width; then 4 height; then 4*w*h f32 LE pixels
//! -- status 1 or 2 --
//! 10      1     error code        (see ErrorCode)
//! 11      2     message length    (u16 LE)
//! 13      n     UTF-8 message
//! ```

use std::io::{self, Read, Write};
use std::time::Duration;

use chambolle_core::ChambolleParams;
use chambolle_imaging::Grid;

use crate::request::{Priority, RejectReason, Request, ServiceError, Workload};

/// Protocol version both sides must speak.
pub const WIRE_VERSION: u8 = 1;

/// Hard ceiling on a frame's payload size (64 MiB) — large enough for a
/// 4096×4096 f32 image, small enough to bound a bad prefix's damage.
pub const MAX_FRAME: usize = 1 << 26;

const KIND_DENOISE: u8 = 1;
const STATUS_OK: u8 = 0;
const STATUS_REJECTED: u8 = 1;
const STATUS_FAILED: u8 = 2;

/// Stable numeric codes for rejected/failed responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Queue at capacity.
    QueueFull = 1,
    /// Service draining.
    ShuttingDown = 2,
    /// Workload failed validation.
    Invalid = 3,
    /// Deadline passed before the solve finished.
    DeadlineExceeded = 4,
    /// Request cancelled.
    Cancelled = 5,
    /// Solver failure.
    Solver = 6,
    /// Malformed frame or protocol mismatch.
    Protocol = 7,
}

impl ErrorCode {
    fn from_u8(code: u8) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::QueueFull),
            2 => Some(ErrorCode::ShuttingDown),
            3 => Some(ErrorCode::Invalid),
            4 => Some(ErrorCode::DeadlineExceeded),
            5 => Some(ErrorCode::Cancelled),
            6 => Some(ErrorCode::Solver),
            7 => Some(ErrorCode::Protocol),
            _ => None,
        }
    }
}

/// A decoded wire request.
#[derive(Debug, Clone)]
pub struct WireRequest {
    /// Client-chosen id, echoed back in the response.
    pub id: u64,
    /// The service request it maps to.
    pub request: Request,
}

/// A decoded wire response.
#[derive(Debug, Clone)]
pub enum WireResponse {
    /// Successful solve.
    Ok {
        /// Echoed client id.
        id: u64,
        /// The denoised image.
        output: Grid<f32>,
    },
    /// Admission rejection or solve failure.
    Err {
        /// Echoed client id.
        id: u64,
        /// `true` if rejected at admission (never solved).
        rejected: bool,
        /// Stable error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O errors from `w`; `InvalidInput` if the payload exceeds [`MAX_FRAME`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF at a
/// frame boundary.
///
/// # Errors
///
/// I/O errors from `r`; `InvalidData` if the prefix exceeds [`MAX_FRAME`];
/// `UnexpectedEof` if the stream ends mid-frame.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match r.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encodes a denoise request payload.
pub fn encode_denoise_request(
    id: u64,
    priority: Priority,
    deadline: Option<Duration>,
    params: &ChambolleParams,
    input: &Grid<f32>,
) -> Vec<u8> {
    let (w, h) = input.dims();
    let mut buf = Vec::with_capacity(35 + 4 * w * h);
    buf.push(WIRE_VERSION);
    buf.push(KIND_DENOISE);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.push(match priority {
        Priority::Interactive => 0,
        Priority::Batch => 1,
    });
    let deadline_ms = deadline.map_or(0u32, |d| d.as_millis().min(u128::from(u32::MAX)) as u32);
    buf.extend_from_slice(&deadline_ms.to_le_bytes());
    buf.extend_from_slice(&params.theta.to_le_bytes());
    buf.extend_from_slice(&params.tau.to_le_bytes());
    buf.extend_from_slice(&params.iterations.to_le_bytes());
    buf.extend_from_slice(&(w as u32).to_le_bytes());
    buf.extend_from_slice(&(h as u32).to_le_bytes());
    for &px in input.as_slice() {
        buf.extend_from_slice(&px.to_le_bytes());
    }
    buf
}

/// Decodes a request payload.
///
/// # Errors
///
/// A human-readable protocol error (version mismatch, unknown kind,
/// truncated or oversized payload, dimension/pixel-count mismatch).
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, String> {
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    if version != WIRE_VERSION {
        return Err(format!("unsupported wire version {version}"));
    }
    let kind = c.u8()?;
    if kind != KIND_DENOISE {
        return Err(format!("unsupported workload kind {kind}"));
    }
    let id = c.u64()?;
    let priority = match c.u8()? {
        0 => Priority::Interactive,
        1 => Priority::Batch,
        p => return Err(format!("unknown priority {p}")),
    };
    let deadline_ms = c.u32()?;
    let theta = c.f32()?;
    let tau = c.f32()?;
    let iterations = c.u32()?;
    let width = c.u32()? as usize;
    let height = c.u32()? as usize;
    let expected = width
        .checked_mul(height)
        .and_then(|n| n.checked_mul(4))
        .ok_or_else(|| "frame dimensions overflow".to_string())?;
    if c.remaining() != expected {
        return Err(format!(
            "pixel payload is {} bytes, expected {expected} for {width}x{height}",
            c.remaining()
        ));
    }
    let mut pixels = Vec::with_capacity(width * height);
    for _ in 0..width * height {
        pixels.push(c.f32()?);
    }
    let input = Grid::from_vec(width, height, pixels).map_err(|e| e.to_string())?;
    let params = ChambolleParams {
        theta,
        tau,
        iterations,
    };
    let mut request = Request::new(Workload::Denoise { input, params }).with_priority(priority);
    if deadline_ms > 0 {
        request = request.with_deadline(Duration::from_millis(u64::from(deadline_ms)));
    }
    Ok(WireRequest { id, request })
}

/// Encodes a successful response.
pub fn encode_ok_response(id: u64, output: &Grid<f32>) -> Vec<u8> {
    let (w, h) = output.dims();
    let mut buf = Vec::with_capacity(18 + 4 * w * h);
    buf.push(WIRE_VERSION);
    buf.push(STATUS_OK);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&(w as u32).to_le_bytes());
    buf.extend_from_slice(&(h as u32).to_le_bytes());
    for &px in output.as_slice() {
        buf.extend_from_slice(&px.to_le_bytes());
    }
    buf
}

/// Encodes an error response.
pub fn encode_err_response(id: u64, rejected: bool, code: ErrorCode, message: &str) -> Vec<u8> {
    let msg = message.as_bytes();
    let msg_len = msg.len().min(usize::from(u16::MAX));
    let mut buf = Vec::with_capacity(13 + msg_len);
    buf.push(WIRE_VERSION);
    buf.push(if rejected {
        STATUS_REJECTED
    } else {
        STATUS_FAILED
    });
    buf.extend_from_slice(&id.to_le_bytes());
    buf.push(code as u8);
    buf.extend_from_slice(&(msg_len as u16).to_le_bytes());
    buf.extend_from_slice(&msg[..msg_len]);
    buf
}

/// The wire error code + flag for a [`RejectReason`].
pub fn reject_code(reason: &RejectReason) -> ErrorCode {
    match reason {
        RejectReason::QueueFull { .. } => ErrorCode::QueueFull,
        RejectReason::ShuttingDown => ErrorCode::ShuttingDown,
        RejectReason::Invalid(_) => ErrorCode::Invalid,
    }
}

/// The wire error code for a [`ServiceError`].
pub fn service_error_code(err: &ServiceError) -> ErrorCode {
    match err {
        ServiceError::Cancelled => ErrorCode::Cancelled,
        ServiceError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        ServiceError::Solver(_) | ServiceError::Disconnected => ErrorCode::Solver,
    }
}

/// Decodes a response payload.
///
/// # Errors
///
/// A human-readable protocol error on any malformed field.
pub fn decode_response(payload: &[u8]) -> Result<WireResponse, String> {
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    if version != WIRE_VERSION {
        return Err(format!("unsupported wire version {version}"));
    }
    let status = c.u8()?;
    let id = c.u64()?;
    match status {
        STATUS_OK => {
            let width = c.u32()? as usize;
            let height = c.u32()? as usize;
            let mut pixels = Vec::with_capacity(width * height);
            for _ in 0..width.checked_mul(height).ok_or("dimension overflow")? {
                pixels.push(c.f32()?);
            }
            let output = Grid::from_vec(width, height, pixels).map_err(|e| e.to_string())?;
            Ok(WireResponse::Ok { id, output })
        }
        STATUS_REJECTED | STATUS_FAILED => {
            let code =
                ErrorCode::from_u8(c.u8()?).ok_or_else(|| "unknown error code".to_string())?;
            let msg_len = usize::from(c.u16()?);
            let bytes = c.bytes(msg_len)?;
            let message = String::from_utf8_lossy(bytes).into_owned();
            Ok(WireResponse::Err {
                id,
                rejected: status == STATUS_REJECTED,
                code,
                message,
            })
        }
        s => Err(format!("unknown response status {s}")),
    }
}

/// Minimal bounds-checked reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "payload truncated: wanted {n} bytes, {} left",
                self.remaining()
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_bit_exact() {
        let input = Grid::from_fn(5, 3, |x, y| (x * 31 + y * 7) as f32 / 13.0);
        let params = ChambolleParams {
            theta: 0.25,
            tau: 0.248,
            iterations: 42,
        };
        let payload = encode_denoise_request(
            7,
            Priority::Interactive,
            Some(Duration::from_millis(1500)),
            &params,
            &input,
        );
        let decoded = decode_request(&payload).unwrap();
        assert_eq!(decoded.id, 7);
        assert_eq!(decoded.request.priority, Priority::Interactive);
        assert_eq!(decoded.request.deadline, Some(Duration::from_millis(1500)));
        match &decoded.request.workload {
            Workload::Denoise {
                input: got,
                params: p,
            } => {
                assert_eq!(got.as_slice(), input.as_slice());
                assert_eq!(p.theta.to_bits(), params.theta.to_bits());
                assert_eq!(p.tau.to_bits(), params.tau.to_bits());
                assert_eq!(p.iterations, params.iterations);
            }
            other => panic!("wrong workload: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let grid = Grid::from_fn(3, 2, |x, y| (x + 10 * y) as f32);
        match decode_response(&encode_ok_response(9, &grid)).unwrap() {
            WireResponse::Ok { id, output } => {
                assert_eq!(id, 9);
                assert_eq!(output.as_slice(), grid.as_slice());
            }
            other => panic!("expected ok: {other:?}"),
        }
        let err = encode_err_response(11, true, ErrorCode::QueueFull, "queue full (4/4)");
        match decode_response(&err).unwrap() {
            WireResponse::Err {
                id,
                rejected,
                code,
                message,
            } => {
                assert_eq!(id, 11);
                assert!(rejected);
                assert_eq!(code, ErrorCode::QueueFull);
                assert!(message.contains("4/4"));
            }
            other => panic!("expected err: {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[9, 9]).is_err()); // bad version
        let mut ok = encode_denoise_request(
            1,
            Priority::Batch,
            None,
            &ChambolleParams::with_iterations(3),
            &Grid::new(4, 4, 0.0f32),
        );
        ok.truncate(ok.len() - 1); // drop one pixel byte
        assert!(decode_request(&ok).is_err());
        assert!(decode_response(&[1, 7, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn frames_round_trip_and_guard_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        let mut bad = io::Cursor::new(((MAX_FRAME + 1) as u32).to_le_bytes().to_vec());
        assert!(read_frame(&mut bad).is_err());
    }
}
