//! A long-running request service around the Chambolle solver stack.
//!
//! This crate turns the batch-oriented solvers of `chambolle-core` into a
//! multi-client service with production semantics:
//!
//! - **Admission control** — a bounded submission queue that rejects with a
//!   structured [`RejectReason`] (never blocks, never panics) when full,
//!   draining, or handed an invalid workload, plus edge-triggered
//!   high/low queue-depth watermark counters.
//! - **Micro-batching** — compatible requests (same workload kind, same
//!   dimensions, bit-identical parameters) coalesce into one shared-pool
//!   dispatch, amortising dispatch overhead without changing any result:
//!   a batched response is bit-identical to a solo response.
//! - **Deadlines and cancellation** — per-request deadlines become
//!   [`CancelToken`](chambolle_core::CancelToken)s polled at iteration
//!   boundaries; a cancelled solve returns cleanly and leaves the pool
//!   reusable.
//! - **Priority lanes** — interactive requests are always dequeued before
//!   batch requests.
//! - **Graceful shutdown** — [`Service::shutdown`] stops admission, drains
//!   every accepted request, and flushes a final telemetry
//!   [`RunReport`](chambolle_telemetry::RunReport); zero accepted requests
//!   are lost.
//! - **A framed TCP front-end** — a hand-rolled length-prefixed,
//!   checksummed binary protocol over `std::net` ([`wire`], [`TcpServer`],
//!   [`ServiceClient`]) next to the in-process [`ServiceHandle`] API.
//! - **Chaos hardening** — a deterministic, seed-driven network fault
//!   injector ([`chaos`], [`TcpServer::bind_with_chaos`]) paired with a
//!   [`ResilientClient`] that survives it: per-attempt timeouts, bounded
//!   retries with decorrelated-jitter backoff, idempotency keys backed by a
//!   server-side result cache, and a circuit breaker.
//! - **Health probes** — a dedicated wire frame (and
//!   [`ServiceHandle::health`]) reporting readiness, queue depth,
//!   dispatcher liveness, brownout state, and last-solve age.
//! - **Brownout degradation** — under sustained queue congestion *or a
//!   burning latency SLO* the service sheds *fidelity* instead of
//!   requests, staged cheapest-lever-first: one pressure signal switches
//!   solves to the tolerance-validated `Fast` numerics tier at the full
//!   iteration budget, and only both signals at once stack the configured
//!   [`DegradationPolicy`](chambolle_core::DegradationPolicy) iteration cap
//!   on top. Degraded solves are tagged [`ResponseTier::Degraded`]; full
//!   fidelity resumes when the episode ends.
//! - **End-to-end request tracing** — clients mint a 128-bit
//!   [`TraceContext`] that rides the v3 wire frames; the server threads it
//!   through queue admission, batch formation, and the solve, recording a
//!   causally-ordered span tree (`server.request` → `queue`/`batch` →
//!   `solve`, plus `replay` for idempotent cache hits and `client.*` spans
//!   on the resilient client) into a bounded [`Tracer`] ring with a
//!   slowest-N view. v2 peers interoperate untraced, bit-identically.
//! - **A live metrics plane** — rolling time-windowed aggregation (per-lane
//!   queue wait, batch occupancy, solve p50/p99, error/SLO burn rates)
//!   served over a dedicated `MetricsSnapshot` wire frame as a
//!   schema-stable JSON document ([`METRICS_SNAPSHOT_SCHEMA`]).
//! - **Declarative SLOs** — per-lane latency objectives
//!   ([`SloObjective`]) evaluated as burn rates over the rolling window,
//!   surfaced in the snapshot, counted as `service.slo.*` events, and
//!   consulted by the brownout policy.
//!
//! Requests route through `core::guard`, and every stage (admit → queue →
//! batch → solve → respond) emits `service.*` counters, gauges, and latency
//! histograms.

#![warn(missing_docs)]

pub mod chaos;
mod net;
mod queue;
mod request;
mod resilient;
mod service;
pub mod wire;

pub use chaos::{ChaosConfig, ChaosEvent, ChaosInjector, ChaosStream};
pub use net::{ServiceClient, TcpServer, DEFAULT_CONNECT_TIMEOUT};
pub use request::{
    BatchKey, Completed, Output, Priority, RejectReason, Request, ResponseTier, ServiceError,
    Workload, WorkloadKind,
};
pub use resilient::{
    BreakerPolicy, BreakerState, ClientError, DenoiseOutcome, ResilientClient, ResilientConfig,
    ResilientStats, RetryPolicy,
};
pub use service::{
    HealthSnapshot, Service, ServiceConfig, ServiceHandle, ServiceStats, ShutdownSummary,
    SloObjective, Ticket, METRICS_SNAPSHOT_SCHEMA,
};

pub use chambolle_telemetry::trace::{RequestTrace, SpanRecord, TraceContext, Tracer};

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use chambolle_core::{ChambolleParams, SequentialSolver, TvDenoiser};
    use chambolle_imaging::{Grid, NoiseTexture, Scene};
    use chambolle_telemetry::{names, Telemetry};

    use super::*;

    fn noisy_input(w: usize, h: usize, seed: u64) -> Grid<f32> {
        NoiseTexture::new(seed).render(w, h)
    }

    fn denoise_request(input: &Grid<f32>, iterations: u32) -> Request {
        Request::new(Workload::Denoise {
            input: input.clone(),
            params: ChambolleParams::with_iterations(iterations),
        })
    }

    #[test]
    fn config_from_tunables_matches_historical_constants_and_honors_knobs() {
        // Default tunables reproduce the pre-auto-tuning constants exactly.
        let d = ServiceConfig::new(2, 64);
        assert_eq!(d.max_batch, 8);
        assert_eq!(d.high_watermark, 64 * 3 / 4);
        assert_eq!(d.low_watermark, 64 / 4);
        // A profile's knobs flow through.
        let t = chambolle_tune::Tunables {
            batch_window: 16,
            high_watermark_pct: 90,
            low_watermark_pct: 50,
            ..chambolle_tune::Tunables::default()
        };
        let c = ServiceConfig::from_tunables(3, 40, &t);
        assert_eq!(c.max_batch, 16);
        assert_eq!(c.high_watermark, 36);
        assert_eq!(c.low_watermark, 20);
    }

    #[test]
    fn service_solves_a_request_matching_the_direct_solver() {
        let input = noisy_input(24, 18, 7);
        let params = ChambolleParams::with_iterations(25);
        let service = Service::spawn(ServiceConfig::new(2, 8));
        let ticket = service
            .handle()
            .submit(denoise_request(&input, 25))
            .unwrap();
        let done = ticket.wait().unwrap();
        let expected = SequentialSolver::new().denoise(&input, &params);
        assert_eq!(
            done.output.as_denoised().unwrap().as_slice(),
            expected.as_slice(),
            "service output must be bit-identical to the direct solver"
        );
        let summary = service.shutdown();
        assert_eq!(summary.stats.completed, 1);
        assert_eq!(summary.stats.in_flight(), 0);
    }

    #[test]
    fn batched_responses_are_bit_identical_to_solo_responses() {
        let inputs: Vec<Grid<f32>> = (0..6).map(|s| noisy_input(20, 20, 100 + s)).collect();

        // Solo baseline: batching disabled.
        let solo_service = Service::spawn(ServiceConfig::new(2, 16).with_max_batch(1));
        let solo: Vec<Grid<f32>> = inputs
            .iter()
            .map(|input| {
                let t = solo_service
                    .handle()
                    .submit(denoise_request(input, 30))
                    .unwrap();
                t.wait().unwrap().output.as_denoised().unwrap().clone()
            })
            .collect();
        solo_service.shutdown();

        // Batched: hold the dispatcher busy with a slow blocker so the six
        // compatible requests pile up and coalesce.
        let service = Service::spawn(ServiceConfig::new(2, 16).with_max_batch(8));
        let blocker = service
            .handle()
            .submit(denoise_request(&noisy_input(96, 96, 1), 400))
            .unwrap();
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|input| service.handle().submit(denoise_request(input, 30)).unwrap())
            .collect();
        blocker.wait().unwrap();
        let mut saw_coalesced_batch = false;
        for (ticket, expected) in tickets.into_iter().zip(&solo) {
            let done = ticket.wait().unwrap();
            saw_coalesced_batch |= done.batch_size > 1;
            assert_eq!(
                done.output.as_denoised().unwrap().as_slice(),
                expected.as_slice(),
                "batched response must be bit-identical to the solo response"
            );
        }
        assert!(
            saw_coalesced_batch,
            "the pile-up should have produced at least one multi-request batch"
        );
        service.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_structured_reason_without_blocking() {
        let service = Service::spawn(ServiceConfig::new(1, 2).with_max_batch(1));
        let input = noisy_input(64, 64, 3);
        // The blocker occupies the dispatcher while the queue fills.
        let blocker = service
            .handle()
            .submit(denoise_request(&input, 400))
            .unwrap();
        let mut tickets = Vec::new();
        let reason = loop {
            match service.handle().submit(denoise_request(&input, 5)) {
                Ok(t) => tickets.push(t),
                Err(reason) => break reason,
            }
            assert!(
                tickets.len() <= 3,
                "queue of capacity 2 cannot admit this many"
            );
        };
        assert!(
            matches!(reason, RejectReason::QueueFull { capacity: 2, .. }),
            "got {reason:?}"
        );
        blocker.wait().unwrap();
        for t in tickets {
            t.wait().unwrap();
        }
        let summary = service.shutdown();
        assert!(summary.stats.rejected_full >= 1);
        assert_eq!(summary.stats.in_flight(), 0);
    }

    #[test]
    fn invalid_workloads_are_rejected_at_admission() {
        let service = Service::spawn(ServiceConfig::default());
        let mut params = ChambolleParams::with_iterations(5);
        params.theta = -1.0;
        let err = service
            .handle()
            .submit(Request::new(Workload::Denoise {
                input: Grid::new(4, 4, 0.0f32),
                params,
            }))
            .unwrap_err();
        assert!(matches!(err, RejectReason::Invalid(_)));
        let summary = service.shutdown();
        assert_eq!(summary.stats.rejected_invalid, 1);
        assert_eq!(summary.stats.accepted, 0);
    }

    #[test]
    fn tight_deadline_resolves_to_deadline_exceeded() {
        let service = Service::spawn(ServiceConfig::new(1, 8).with_max_batch(1));
        let input = noisy_input(96, 96, 9);
        // Occupy the dispatcher so the deadline fires while queued.
        let blocker = service
            .handle()
            .submit(denoise_request(&input, 300))
            .unwrap();
        let doomed = service
            .handle()
            .submit(denoise_request(&input, 300).with_deadline(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(doomed.wait().unwrap_err(), ServiceError::DeadlineExceeded);
        blocker.wait().unwrap();
        let summary = service.shutdown();
        assert_eq!(summary.stats.deadline_exceeded, 1);
        assert_eq!(summary.stats.completed, 1);
        assert_eq!(summary.stats.in_flight(), 0);
    }

    #[test]
    fn cancelled_ticket_resolves_cleanly_and_service_stays_deterministic() {
        let input = noisy_input(32, 32, 21);
        let service = Service::spawn(ServiceConfig::new(2, 8));
        let victim = service
            .handle()
            .submit(denoise_request(&input, 2000))
            .unwrap();
        victim.cancel();
        // Regardless of whether the cancel landed before or mid-solve, the
        // ticket resolves; if it raced completion, that's also a response.
        let outcome = victim.wait();
        assert!(
            matches!(outcome, Err(ServiceError::Cancelled) | Ok(_)),
            "got {outcome:?}"
        );
        // The next request on the same service is unaffected.
        let follow_up = service
            .handle()
            .submit(denoise_request(&input, 25))
            .unwrap();
        let done = follow_up.wait().unwrap();
        let expected =
            SequentialSolver::new().denoise(&input, &ChambolleParams::with_iterations(25));
        assert_eq!(
            done.output.as_denoised().unwrap().as_slice(),
            expected.as_slice()
        );
        let summary = service.shutdown();
        assert_eq!(summary.stats.in_flight(), 0);
    }

    #[test]
    fn shutdown_under_load_loses_zero_accepted_requests() {
        let telemetry = Telemetry::null();
        let service = Service::spawn_with_telemetry(ServiceConfig::new(2, 64), telemetry.clone());
        let input = noisy_input(16, 16, 5);
        let tickets: Vec<Ticket> = (0..20)
            .map(|i| {
                let priority = if i % 4 == 0 {
                    Priority::Interactive
                } else {
                    Priority::Batch
                };
                service
                    .handle()
                    .submit(denoise_request(&input, 20).with_priority(priority))
                    .unwrap()
            })
            .collect();
        let accepted = tickets.len() as u64;
        let summary = service.shutdown();
        // Every accepted ticket must have a response waiting.
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(summary.stats.accepted, accepted);
        assert_eq!(summary.stats.completed, accepted);
        assert_eq!(summary.stats.in_flight(), 0);
        // The final report is flushed with the service section present.
        let report = summary.report.expect("telemetry enabled => report");
        let json = report.to_json();
        assert!(json
            .get("sections")
            .and_then(|s| s.get("service"))
            .is_some());
        assert!(
            telemetry
                .snapshot()
                .counter(names::SERVICE_BATCHES)
                .unwrap_or(0)
                >= 1,
            "dispatches must be counted"
        );
    }

    #[test]
    fn submissions_after_shutdown_are_rejected_as_shutting_down() {
        let service = Service::spawn(ServiceConfig::default());
        let handle = service.handle().clone();
        service.shutdown();
        let err = handle
            .submit(denoise_request(&noisy_input(8, 8, 1), 5))
            .unwrap_err();
        assert_eq!(err, RejectReason::ShuttingDown);
    }

    #[test]
    fn brownout_stages_shed_numerics_before_iterations() {
        use crate::service::staged_policy;
        use chambolle_core::DegradationPolicy;

        let configured = DegradationPolicy::cap(5);
        // No pressure: full fidelity.
        assert_eq!(staged_policy(configured, false, false), None);
        // One signal (either one): numerics only, full iteration budget.
        let stage1 = DegradationPolicy::fast_tier();
        assert_eq!(staged_policy(configured, true, false), Some(stage1));
        assert_eq!(staged_policy(configured, false, true), Some(stage1));
        // Compound pressure: the configured cap stacks on the fast tier.
        let stage2 = staged_policy(configured, true, true).unwrap();
        assert_eq!(stage2, DegradationPolicy::fast_tier().with_cap(5));
        assert!(stage2.sheds_numerics());
        assert_eq!(stage2.effective_iterations(50), 5);
    }

    #[test]
    fn sustained_congestion_degrades_fidelity_then_recovers() {
        use chambolle_core::{
            chambolle_denoise_with_ctx, DegradationPolicy, ExecCtx, NumericsPolicy,
        };

        let telemetry = Telemetry::null();
        // Capacity 8 -> high watermark 6, low watermark 2. One dispatcher
        // thread, no coalescing, and a brownout cap of 5 iterations. The cap
        // is the *second* shedding stage: queue congestion alone only sheds
        // numerics, so these solves keep their full iteration budget.
        let config = ServiceConfig::new(1, 8)
            .with_max_batch(1)
            .with_degradation(DegradationPolicy::cap(5));
        let service = Service::spawn_with_telemetry(config, telemetry.clone());
        let input = noisy_input(24, 24, 55);

        // Occupy the dispatcher so the queue can fill past the high
        // watermark before any of the followers dispatch.
        let blocker = service
            .handle()
            .submit(denoise_request(&noisy_input(96, 96, 1), 300))
            .unwrap();
        let tickets: Vec<Ticket> = (0..7)
            .map(|_| {
                service
                    .handle()
                    .submit(denoise_request(&input, 50))
                    .unwrap()
            })
            .collect();

        blocker.wait().unwrap();
        let outcomes: Vec<Completed> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();

        // Overload shed fidelity, not requests: everything completed, and
        // the congested prefix is tagged degraded.
        let degraded: Vec<&Completed> = outcomes
            .iter()
            .filter(|c| c.tier == ResponseTier::Degraded)
            .collect();
        assert!(
            !degraded.is_empty(),
            "sustained congestion must produce degraded-tier responses"
        );
        // Stage 1 shedding: the fast numerics tier at the full 50-iteration
        // budget — NOT the 5-iteration cap, which needs compound pressure.
        let fast_ctx = ExecCtx::default().with_numerics(NumericsPolicy::Fast);
        let (shed, _) =
            chambolle_denoise_with_ctx(&input, &ChambolleParams::with_iterations(50), &fast_ctx)
                .expect("no cancellation token installed");
        let capped = SequentialSolver::new().denoise(&input, &ChambolleParams::with_iterations(5));
        for c in &degraded {
            let out = c.output.as_denoised().unwrap().as_slice();
            assert_eq!(
                out,
                shed.as_slice(),
                "a degraded response is exactly the fast-tier full-budget solve"
            );
            assert_ne!(
                out,
                capped.as_slice(),
                "congestion alone must not truncate the iteration budget"
            );
        }

        // After the queue drains below the low watermark, fidelity returns.
        let recovered = service
            .handle()
            .submit(denoise_request(&input, 50))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(recovered.tier, ResponseTier::Full);
        let full = SequentialSolver::new().denoise(&input, &ChambolleParams::with_iterations(50));
        assert_eq!(
            recovered.output.as_denoised().unwrap().as_slice(),
            full.as_slice(),
            "post-brownout responses are full fidelity again"
        );

        let summary = service.shutdown();
        assert!(summary.stats.degraded >= 1);
        assert_eq!(summary.stats.in_flight(), 0);
        let snap = telemetry.snapshot();
        assert!(snap.counter(names::SERVICE_BROWNOUT_ENTERED).unwrap_or(0) >= 1);
        assert!(snap.counter(names::SERVICE_BROWNOUT_EXITED).unwrap_or(0) >= 1);
        assert!(
            snap.counter(names::SERVICE_DEGRADED_RESPONSES).unwrap_or(0) >= degraded.len() as u64
        );
    }

    #[test]
    fn health_snapshot_tracks_the_service_lifecycle() {
        let service = Service::spawn(ServiceConfig::new(1, 8));
        let handle = service.handle().clone();

        // The dispatcher flags itself live as its first action; wait out the
        // spawn race.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !handle.health().dispatcher_live {
            assert!(
                std::time::Instant::now() < deadline,
                "dispatcher never came up"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let fresh = handle.health();
        assert!(fresh.is_ready());
        assert!(fresh.accepting);
        assert!(!fresh.brownout);
        assert_eq!(fresh.completed, 0);
        assert_eq!(fresh.queue_capacity, 8);
        assert_eq!(fresh.last_solve_age, None, "no solve has happened yet");

        handle
            .submit(denoise_request(&noisy_input(12, 12, 2), 10))
            .unwrap()
            .wait()
            .unwrap();
        let after = handle.health();
        assert_eq!(after.completed, 1);
        assert!(after.last_solve_age.is_some());
        assert_eq!(after.in_flight, 0);

        service.shutdown();
        let drained = handle.health();
        assert!(!drained.accepting, "a shut-down service is not accepting");
        assert!(!drained.is_ready());
    }

    #[test]
    fn tcp_idempotent_retry_returns_cached_bits_and_health_serves() {
        let input = noisy_input(14, 10, 33);
        let params = ChambolleParams::with_iterations(12);
        let telemetry = Telemetry::null();
        let service = Service::spawn_with_telemetry(ServiceConfig::new(2, 8), telemetry.clone());
        let server = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let mut client = ServiceClient::connect(addr).unwrap();
        let first = client
            .denoise_idempotent(&input, &params, Priority::Batch, None, 777)
            .unwrap();
        // Same key from a *different* connection — simulating a client that
        // lost the response and reconnected to retry.
        let mut retry_client = ServiceClient::connect(addr).unwrap();
        let second = retry_client
            .denoise_idempotent(&input, &params, Priority::Batch, None, 777)
            .unwrap();
        match (&first, &second) {
            (
                wire::WireResponse::Ok { output: a, .. },
                wire::WireResponse::Ok { output: b, .. },
            ) => {
                assert_eq!(a.as_slice(), b.as_slice(), "cached replay is bit-identical");
            }
            other => panic!("expected two ok responses, got {other:?}"),
        }
        assert_eq!(
            telemetry.snapshot().counter(names::SERVICE_IDEMPOTENT_HITS),
            Some(1),
            "the retry must be served from the idempotency cache"
        );

        let health = client.health().unwrap();
        assert!(health.is_ready());
        assert_eq!(health.completed, 1, "only one solve actually ran");
        assert!(health.last_solve_age.is_some());

        drop(client);
        drop(retry_client);
        server.shutdown();
        let summary = service.shutdown();
        assert_eq!(
            summary.stats.completed, 1,
            "the idempotent retry must not recompute"
        );
    }

    #[test]
    fn tcp_shutdown_is_not_hostage_to_stalled_mid_frame_peers() {
        use std::io::Write as _;

        let service = Service::spawn(ServiceConfig::new(1, 4));
        let server = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        // Two pathological peers held open across the shutdown: one stalls
        // after half a frame header, one after a header promising a payload
        // that never arrives. Neither must pin its connection thread.
        let mut half_header = std::net::TcpStream::connect(addr).unwrap();
        half_header
            .write_all(&[0xAB; wire::FRAME_HEADER / 2])
            .unwrap();
        let mut half_payload = std::net::TcpStream::connect(addr).unwrap();
        let mut header = Vec::new();
        header.extend_from_slice(&64u32.to_le_bytes()); // valid length...
        header.extend_from_slice(&0u64.to_le_bytes()); // ...no payload follows
        half_payload.write_all(&header).unwrap();

        // Park both connection threads inside their frame reads before the
        // stop flag rises.
        std::thread::sleep(Duration::from_millis(150));

        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown stalled behind silent peers: {:?}",
            start.elapsed()
        );
        drop(half_header);
        drop(half_payload);
        service.shutdown();
    }

    #[test]
    fn concurrent_default_clients_get_their_own_results() {
        // Regression: idempotency keys were minted from the (shared default)
        // jitter seed, so a second default-configured client's first solve
        // collided in the server-side cache and was served the first
        // client's pixels.
        let input_a = noisy_input(14, 10, 1001);
        let input_b = noisy_input(14, 10, 2002);
        let params = ChambolleParams::with_iterations(12);
        let service = Service::spawn(ServiceConfig::new(2, 8));
        let server = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let mut client_a = ResilientClient::connect(addr).unwrap();
        let mut client_b = ResilientClient::connect(addr).unwrap();
        let out_a = client_a
            .denoise(&input_a, &params, Priority::Batch, None)
            .unwrap();
        let out_b = client_b
            .denoise(&input_b, &params, Priority::Batch, None)
            .unwrap();

        let expect_a = SequentialSolver::new().denoise(&input_a, &params);
        let expect_b = SequentialSolver::new().denoise(&input_b, &params);
        assert_eq!(
            out_a.output.as_slice(),
            expect_a.as_slice(),
            "client A must get its own solve"
        );
        assert_eq!(
            out_b.output.as_slice(),
            expect_b.as_slice(),
            "client B must not be served client A's cached result"
        );

        drop(client_a);
        drop(client_b);
        server.shutdown();
        let summary = service.shutdown();
        assert_eq!(summary.stats.completed, 2, "both solves actually ran");
    }

    #[test]
    fn tcp_front_end_round_trips_against_in_process_result() {
        let input = noisy_input(16, 12, 77);
        let params = ChambolleParams::with_iterations(15);
        let service = Service::spawn(ServiceConfig::new(2, 8));
        let server = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").unwrap();
        let mut client = ServiceClient::connect(server.local_addr()).unwrap();
        let response = client
            .denoise(&input, &params, Priority::Interactive, None)
            .unwrap();
        let expected = SequentialSolver::new().denoise(&input, &params);
        match response {
            wire::WireResponse::Ok { output, .. } => {
                assert_eq!(output.as_slice(), expected.as_slice());
            }
            other => panic!("expected ok, got {other:?}"),
        }
        drop(client);
        server.shutdown();
        let summary = service.shutdown();
        assert_eq!(summary.stats.completed, 1);
    }
}
