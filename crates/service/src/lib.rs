//! A long-running request service around the Chambolle solver stack.
//!
//! This crate turns the batch-oriented solvers of `chambolle-core` into a
//! multi-client service with production semantics:
//!
//! - **Admission control** — a bounded submission queue that rejects with a
//!   structured [`RejectReason`] (never blocks, never panics) when full,
//!   draining, or handed an invalid workload, plus edge-triggered
//!   high/low queue-depth watermark counters.
//! - **Micro-batching** — compatible requests (same workload kind, same
//!   dimensions, bit-identical parameters) coalesce into one shared-pool
//!   dispatch, amortising dispatch overhead without changing any result:
//!   a batched response is bit-identical to a solo response.
//! - **Deadlines and cancellation** — per-request deadlines become
//!   [`CancelToken`](chambolle_core::CancelToken)s polled at iteration
//!   boundaries; a cancelled solve returns cleanly and leaves the pool
//!   reusable.
//! - **Priority lanes** — interactive requests are always dequeued before
//!   batch requests.
//! - **Graceful shutdown** — [`Service::shutdown`] stops admission, drains
//!   every accepted request, and flushes a final telemetry
//!   [`RunReport`](chambolle_telemetry::RunReport); zero accepted requests
//!   are lost.
//! - **A framed TCP front-end** — a hand-rolled length-prefixed binary
//!   protocol over `std::net` ([`wire`], [`TcpServer`], [`ServiceClient`])
//!   next to the in-process [`ServiceHandle`] API.
//!
//! Requests route through `core::guard`, and every stage (admit → queue →
//! batch → solve → respond) emits `service.*` counters, gauges, and latency
//! histograms.

#![warn(missing_docs)]

mod net;
mod queue;
mod request;
mod service;
pub mod wire;

pub use net::{ServiceClient, TcpServer};
pub use request::{
    BatchKey, Completed, Output, Priority, RejectReason, Request, ServiceError, Workload,
    WorkloadKind,
};
pub use service::{Service, ServiceConfig, ServiceHandle, ServiceStats, ShutdownSummary, Ticket};

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use chambolle_core::{ChambolleParams, SequentialSolver, TvDenoiser};
    use chambolle_imaging::{Grid, NoiseTexture, Scene};
    use chambolle_telemetry::{names, Telemetry};

    use super::*;

    fn noisy_input(w: usize, h: usize, seed: u64) -> Grid<f32> {
        NoiseTexture::new(seed).render(w, h)
    }

    fn denoise_request(input: &Grid<f32>, iterations: u32) -> Request {
        Request::new(Workload::Denoise {
            input: input.clone(),
            params: ChambolleParams::with_iterations(iterations),
        })
    }

    #[test]
    fn service_solves_a_request_matching_the_direct_solver() {
        let input = noisy_input(24, 18, 7);
        let params = ChambolleParams::with_iterations(25);
        let service = Service::spawn(ServiceConfig::new(2, 8));
        let ticket = service
            .handle()
            .submit(denoise_request(&input, 25))
            .unwrap();
        let done = ticket.wait().unwrap();
        let expected = SequentialSolver::new().denoise(&input, &params);
        assert_eq!(
            done.output.as_denoised().unwrap().as_slice(),
            expected.as_slice(),
            "service output must be bit-identical to the direct solver"
        );
        let summary = service.shutdown();
        assert_eq!(summary.stats.completed, 1);
        assert_eq!(summary.stats.in_flight(), 0);
    }

    #[test]
    fn batched_responses_are_bit_identical_to_solo_responses() {
        let inputs: Vec<Grid<f32>> = (0..6).map(|s| noisy_input(20, 20, 100 + s)).collect();

        // Solo baseline: batching disabled.
        let solo_service = Service::spawn(ServiceConfig::new(2, 16).with_max_batch(1));
        let solo: Vec<Grid<f32>> = inputs
            .iter()
            .map(|input| {
                let t = solo_service
                    .handle()
                    .submit(denoise_request(input, 30))
                    .unwrap();
                t.wait().unwrap().output.as_denoised().unwrap().clone()
            })
            .collect();
        solo_service.shutdown();

        // Batched: hold the dispatcher busy with a slow blocker so the six
        // compatible requests pile up and coalesce.
        let service = Service::spawn(ServiceConfig::new(2, 16).with_max_batch(8));
        let blocker = service
            .handle()
            .submit(denoise_request(&noisy_input(96, 96, 1), 400))
            .unwrap();
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|input| service.handle().submit(denoise_request(input, 30)).unwrap())
            .collect();
        blocker.wait().unwrap();
        let mut saw_coalesced_batch = false;
        for (ticket, expected) in tickets.into_iter().zip(&solo) {
            let done = ticket.wait().unwrap();
            saw_coalesced_batch |= done.batch_size > 1;
            assert_eq!(
                done.output.as_denoised().unwrap().as_slice(),
                expected.as_slice(),
                "batched response must be bit-identical to the solo response"
            );
        }
        assert!(
            saw_coalesced_batch,
            "the pile-up should have produced at least one multi-request batch"
        );
        service.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_structured_reason_without_blocking() {
        let service = Service::spawn(ServiceConfig::new(1, 2).with_max_batch(1));
        let input = noisy_input(64, 64, 3);
        // The blocker occupies the dispatcher while the queue fills.
        let blocker = service
            .handle()
            .submit(denoise_request(&input, 400))
            .unwrap();
        let mut tickets = Vec::new();
        let reason = loop {
            match service.handle().submit(denoise_request(&input, 5)) {
                Ok(t) => tickets.push(t),
                Err(reason) => break reason,
            }
            assert!(
                tickets.len() <= 3,
                "queue of capacity 2 cannot admit this many"
            );
        };
        assert!(
            matches!(reason, RejectReason::QueueFull { capacity: 2, .. }),
            "got {reason:?}"
        );
        blocker.wait().unwrap();
        for t in tickets {
            t.wait().unwrap();
        }
        let summary = service.shutdown();
        assert!(summary.stats.rejected_full >= 1);
        assert_eq!(summary.stats.in_flight(), 0);
    }

    #[test]
    fn invalid_workloads_are_rejected_at_admission() {
        let service = Service::spawn(ServiceConfig::default());
        let mut params = ChambolleParams::with_iterations(5);
        params.theta = -1.0;
        let err = service
            .handle()
            .submit(Request::new(Workload::Denoise {
                input: Grid::new(4, 4, 0.0f32),
                params,
            }))
            .unwrap_err();
        assert!(matches!(err, RejectReason::Invalid(_)));
        let summary = service.shutdown();
        assert_eq!(summary.stats.rejected_invalid, 1);
        assert_eq!(summary.stats.accepted, 0);
    }

    #[test]
    fn tight_deadline_resolves_to_deadline_exceeded() {
        let service = Service::spawn(ServiceConfig::new(1, 8).with_max_batch(1));
        let input = noisy_input(96, 96, 9);
        // Occupy the dispatcher so the deadline fires while queued.
        let blocker = service
            .handle()
            .submit(denoise_request(&input, 300))
            .unwrap();
        let doomed = service
            .handle()
            .submit(denoise_request(&input, 300).with_deadline(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(doomed.wait().unwrap_err(), ServiceError::DeadlineExceeded);
        blocker.wait().unwrap();
        let summary = service.shutdown();
        assert_eq!(summary.stats.deadline_exceeded, 1);
        assert_eq!(summary.stats.completed, 1);
        assert_eq!(summary.stats.in_flight(), 0);
    }

    #[test]
    fn cancelled_ticket_resolves_cleanly_and_service_stays_deterministic() {
        let input = noisy_input(32, 32, 21);
        let service = Service::spawn(ServiceConfig::new(2, 8));
        let victim = service
            .handle()
            .submit(denoise_request(&input, 2000))
            .unwrap();
        victim.cancel();
        // Regardless of whether the cancel landed before or mid-solve, the
        // ticket resolves; if it raced completion, that's also a response.
        let outcome = victim.wait();
        assert!(
            matches!(outcome, Err(ServiceError::Cancelled) | Ok(_)),
            "got {outcome:?}"
        );
        // The next request on the same service is unaffected.
        let follow_up = service
            .handle()
            .submit(denoise_request(&input, 25))
            .unwrap();
        let done = follow_up.wait().unwrap();
        let expected =
            SequentialSolver::new().denoise(&input, &ChambolleParams::with_iterations(25));
        assert_eq!(
            done.output.as_denoised().unwrap().as_slice(),
            expected.as_slice()
        );
        let summary = service.shutdown();
        assert_eq!(summary.stats.in_flight(), 0);
    }

    #[test]
    fn shutdown_under_load_loses_zero_accepted_requests() {
        let telemetry = Telemetry::null();
        let service = Service::spawn_with_telemetry(ServiceConfig::new(2, 64), telemetry.clone());
        let input = noisy_input(16, 16, 5);
        let tickets: Vec<Ticket> = (0..20)
            .map(|i| {
                let priority = if i % 4 == 0 {
                    Priority::Interactive
                } else {
                    Priority::Batch
                };
                service
                    .handle()
                    .submit(denoise_request(&input, 20).with_priority(priority))
                    .unwrap()
            })
            .collect();
        let accepted = tickets.len() as u64;
        let summary = service.shutdown();
        // Every accepted ticket must have a response waiting.
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(summary.stats.accepted, accepted);
        assert_eq!(summary.stats.completed, accepted);
        assert_eq!(summary.stats.in_flight(), 0);
        // The final report is flushed with the service section present.
        let report = summary.report.expect("telemetry enabled => report");
        let json = report.to_json();
        assert!(json
            .get("sections")
            .and_then(|s| s.get("service"))
            .is_some());
        assert!(
            telemetry
                .snapshot()
                .counter(names::SERVICE_BATCHES)
                .unwrap_or(0)
                >= 1,
            "dispatches must be counted"
        );
    }

    #[test]
    fn submissions_after_shutdown_are_rejected_as_shutting_down() {
        let service = Service::spawn(ServiceConfig::default());
        let handle = service.handle().clone();
        service.shutdown();
        let err = handle
            .submit(denoise_request(&noisy_input(8, 8, 1), 5))
            .unwrap_err();
        assert_eq!(err, RejectReason::ShuttingDown);
    }

    #[test]
    fn tcp_front_end_round_trips_against_in_process_result() {
        let input = noisy_input(16, 12, 77);
        let params = ChambolleParams::with_iterations(15);
        let service = Service::spawn(ServiceConfig::new(2, 8));
        let server = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").unwrap();
        let mut client = ServiceClient::connect(server.local_addr()).unwrap();
        let response = client
            .denoise(&input, &params, Priority::Interactive, None)
            .unwrap();
        let expected = SequentialSolver::new().denoise(&input, &params);
        match response {
            wire::WireResponse::Ok { output, .. } => {
                assert_eq!(output.as_slice(), expected.as_slice());
            }
            other => panic!("expected ok, got {other:?}"),
        }
        drop(client);
        server.shutdown();
        let summary = service.shutdown();
        assert_eq!(summary.stats.completed, 1);
    }
}
