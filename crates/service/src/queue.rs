//! The bounded two-lane submission queue feeding the dispatcher.
//!
//! Admission control happens at push time: a full queue rejects with a
//! structured [`RejectReason::QueueFull`] instead of blocking, and a closed
//! queue rejects with [`RejectReason::ShuttingDown`]. Popping blocks (the
//! dispatcher has nothing else to do) and returns `None` only when the queue
//! is closed *and* drained — which is what makes shutdown graceful: every
//! accepted request is handed to the dispatcher before it exits.
//!
//! Watermark crossings are edge-triggered: the depth rising to
//! `high_watermark` bumps one counter, and only after that does the depth
//! falling to `low_watermark` bump the other — a hysteresis pair an operator
//! can alarm on without per-sample noise.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use chambolle_core::CancelToken;
use chambolle_telemetry::trace::TraceContext;
use chambolle_telemetry::{names, Telemetry};

use crate::request::{BatchKey, Completed, Priority, RejectReason, ServiceError, Workload};

/// One accepted request waiting in (or leaving) the queue.
pub(crate) struct Pending {
    /// Service-assigned id (diagnostics and test assertions only).
    #[cfg_attr(not(test), allow(dead_code))]
    pub id: u64,
    pub workload: Workload,
    pub key: BatchKey,
    pub token: CancelToken,
    pub submitted_at: Instant,
    pub responder: mpsc::Sender<Result<Completed, ServiceError>>,
    /// Lane the request was admitted on (windowed metrics label it).
    pub priority: Priority,
    /// Propagated trace context (NONE when tracing is off).
    pub trace: TraceContext,
}

struct Lanes {
    interactive: VecDeque<Pending>,
    batch: VecDeque<Pending>,
    closed: bool,
    /// Hysteresis state of the watermark pair.
    above_high: bool,
}

impl Lanes {
    fn depth(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }
}

/// Bounded, two-lane, condvar-backed submission queue.
pub(crate) struct SubmitQueue {
    lanes: Mutex<Lanes>,
    ready: Condvar,
    capacity: usize,
    high_watermark: usize,
    low_watermark: usize,
    telemetry: Telemetry,
}

impl SubmitQueue {
    pub fn new(
        capacity: usize,
        high_watermark: usize,
        low_watermark: usize,
        telemetry: Telemetry,
    ) -> Self {
        SubmitQueue {
            lanes: Mutex::new(Lanes {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                closed: false,
                above_high: false,
            }),
            ready: Condvar::new(),
            capacity,
            high_watermark,
            low_watermark,
            telemetry,
        }
    }

    /// Admission: non-blocking push. Returns the depth after the push.
    ///
    /// # Errors
    ///
    /// [`RejectReason::ShuttingDown`] once [`SubmitQueue::close`] has run;
    /// [`RejectReason::QueueFull`] when at capacity.
    pub fn try_push(&self, pending: Pending, priority: Priority) -> Result<usize, RejectReason> {
        let mut lanes = self.lanes.lock().expect("queue lock poisoned");
        if lanes.closed {
            return Err(RejectReason::ShuttingDown);
        }
        let depth = lanes.depth();
        if depth >= self.capacity {
            return Err(RejectReason::QueueFull {
                depth,
                capacity: self.capacity,
            });
        }
        match priority {
            Priority::Interactive => lanes.interactive.push_back(pending),
            Priority::Batch => lanes.batch.push_back(pending),
        }
        let depth = depth + 1;
        if !lanes.above_high && depth >= self.high_watermark {
            lanes.above_high = true;
            self.telemetry.counter_add(names::SERVICE_HIGH_WATERMARK, 1);
        }
        self.telemetry
            .gauge_set(names::SERVICE_QUEUE_DEPTH, depth as f64);
        drop(lanes);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until work is available, then returns the head request plus up
    /// to `max_batch - 1` batch-compatible followers from the same lane
    /// (order-preserving scan; non-matching entries keep their positions).
    ///
    /// Returns `None` when the queue is closed and fully drained.
    pub fn pop_batch(&self, max_batch: usize) -> Option<Vec<Pending>> {
        let mut lanes = self.lanes.lock().expect("queue lock poisoned");
        loop {
            if lanes.depth() > 0 {
                break;
            }
            if lanes.closed {
                return None;
            }
            lanes = self.ready.wait(lanes).expect("queue lock poisoned");
        }
        // Interactive lane strictly first.
        let lane = if lanes.interactive.is_empty() {
            &mut lanes.batch
        } else {
            &mut lanes.interactive
        };
        let head = lane.pop_front().expect("lane checked non-empty");
        let mut batch = Vec::with_capacity(max_batch.max(1));
        if max_batch > 1 && !lane.is_empty() {
            let key = head.key.clone();
            batch.push(head);
            let mut keep = VecDeque::with_capacity(lane.len());
            while let Some(p) = lane.pop_front() {
                if batch.len() < max_batch && p.key == key {
                    batch.push(p);
                } else {
                    keep.push_back(p);
                }
            }
            *lane = keep;
        } else {
            batch.push(head);
        }
        let depth = lanes.depth();
        if lanes.above_high && depth <= self.low_watermark {
            lanes.above_high = false;
            self.telemetry.counter_add(names::SERVICE_LOW_WATERMARK, 1);
        }
        self.telemetry
            .gauge_set(names::SERVICE_QUEUE_DEPTH, depth as f64);
        Some(batch)
    }

    /// Stops admission; queued work keeps draining through
    /// [`SubmitQueue::pop_batch`].
    pub fn close(&self) {
        let mut lanes = self.lanes.lock().expect("queue lock poisoned");
        lanes.closed = true;
        drop(lanes);
        self.ready.notify_all();
    }

    /// Current depth across both lanes.
    pub fn depth(&self) -> usize {
        self.lanes.lock().expect("queue lock poisoned").depth()
    }

    /// Whether the queue is inside a congestion episode: depth has risen to
    /// the high watermark and has not yet fallen back to the low watermark.
    /// This is the hysteresis signal brownout degradation keys off.
    pub fn is_congested(&self) -> bool {
        self.lanes.lock().expect("queue lock poisoned").above_high
    }

    /// Whether [`SubmitQueue::close`] has run (admission stopped).
    pub fn is_closed(&self) -> bool {
        self.lanes.lock().expect("queue lock poisoned").closed
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current per-lane depths: `(interactive, batch)`.
    pub fn lane_depths(&self) -> (usize, usize) {
        let lanes = self.lanes.lock().expect("queue lock poisoned");
        (lanes.interactive.len(), lanes.batch.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chambolle_core::ChambolleParams;
    use chambolle_imaging::Grid;

    fn pending(id: u64, iters: u32) -> Pending {
        let workload = Workload::Denoise {
            input: Grid::new(4, 4, 0.0f32),
            params: ChambolleParams::with_iterations(iters),
        };
        let (tx, _rx) = mpsc::channel();
        // Keep the receiver alive long enough for tests that don't care by
        // leaking the sender side only; tests that need responses build
        // their own channel.
        std::mem::forget(_rx);
        Pending {
            id,
            key: workload.batch_key(),
            workload,
            token: CancelToken::new(),
            submitted_at: Instant::now(),
            responder: tx,
            priority: Priority::Batch,
            trace: TraceContext::NONE,
        }
    }

    #[test]
    fn full_queue_rejects_with_structured_reason() {
        let q = SubmitQueue::new(2, 2, 0, Telemetry::disabled());
        q.try_push(pending(1, 5), Priority::Batch).unwrap();
        q.try_push(pending(2, 5), Priority::Batch).unwrap();
        let err = q.try_push(pending(3, 5), Priority::Batch).unwrap_err();
        assert_eq!(
            err,
            RejectReason::QueueFull {
                depth: 2,
                capacity: 2
            }
        );
    }

    #[test]
    fn closed_queue_rejects_and_drains() {
        let q = SubmitQueue::new(8, 8, 0, Telemetry::disabled());
        q.try_push(pending(1, 5), Priority::Batch).unwrap();
        q.close();
        assert_eq!(
            q.try_push(pending(2, 5), Priority::Batch).unwrap_err(),
            RejectReason::ShuttingDown
        );
        // The queued request still drains...
        let batch = q.pop_batch(4).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, 1);
        // ...and only then does pop report exhaustion.
        assert!(q.pop_batch(4).is_none());
    }

    #[test]
    fn interactive_lane_preempts_batch_lane() {
        let q = SubmitQueue::new(8, 8, 0, Telemetry::disabled());
        q.try_push(pending(1, 5), Priority::Batch).unwrap();
        q.try_push(pending(2, 5), Priority::Interactive).unwrap();
        q.try_push(pending(3, 5), Priority::Batch).unwrap();
        let first = q.pop_batch(1).unwrap();
        assert_eq!(first[0].id, 2, "interactive must be dequeued first");
        let second = q.pop_batch(1).unwrap();
        assert_eq!(second[0].id, 1);
    }

    #[test]
    fn batch_coalesces_only_compatible_requests_in_order() {
        let q = SubmitQueue::new(8, 8, 0, Telemetry::disabled());
        q.try_push(pending(1, 5), Priority::Batch).unwrap();
        q.try_push(pending(2, 9), Priority::Batch).unwrap(); // different key
        q.try_push(pending(3, 5), Priority::Batch).unwrap();
        q.try_push(pending(4, 5), Priority::Batch).unwrap();
        let batch = q.pop_batch(8).unwrap();
        assert_eq!(
            batch.iter().map(|p| p.id).collect::<Vec<_>>(),
            vec![1, 3, 4],
            "the head's compatible followers coalesce"
        );
        let next = q.pop_batch(8).unwrap();
        assert_eq!(next[0].id, 2, "incompatible entry keeps its turn");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn max_batch_caps_coalescing() {
        let q = SubmitQueue::new(8, 8, 0, Telemetry::disabled());
        for id in 0..5 {
            q.try_push(pending(id, 5), Priority::Batch).unwrap();
        }
        let batch = q.pop_batch(3).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn lane_depths_report_per_lane_occupancy() {
        let q = SubmitQueue::new(8, 8, 0, Telemetry::disabled());
        q.try_push(pending(1, 5), Priority::Interactive).unwrap();
        q.try_push(pending(2, 5), Priority::Batch).unwrap();
        q.try_push(pending(3, 5), Priority::Batch).unwrap();
        assert_eq!(q.lane_depths(), (1, 2));
        q.pop_batch(1).unwrap();
        assert_eq!(q.lane_depths(), (0, 2));
    }

    #[test]
    fn watermarks_are_edge_triggered() {
        let tele = Telemetry::null();
        let q = SubmitQueue::new(8, 3, 1, tele.clone());
        for id in 0..4 {
            q.try_push(pending(id, 5), Priority::Batch).unwrap();
        }
        // Depth rose 1,2,3,4: exactly one high-watermark edge at 3.
        assert_eq!(
            tele.snapshot().counter(names::SERVICE_HIGH_WATERMARK),
            Some(1)
        );
        q.pop_batch(1).unwrap();
        q.pop_batch(1).unwrap();
        q.pop_batch(1).unwrap(); // depth 1 = low watermark -> falling edge
        let snap = tele.snapshot();
        assert_eq!(snap.counter(names::SERVICE_LOW_WATERMARK), Some(1));
        assert_eq!(snap.gauge(names::SERVICE_QUEUE_DEPTH), Some(1.0));
    }
}
