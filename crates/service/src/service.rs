//! The service core: admission, dispatch loop, micro-batching, deadlines,
//! and drain-based shutdown.
//!
//! One dispatcher thread owns a persistent [`ThreadPool`]. It pops batches
//! of compatible requests from the [`SubmitQueue`](crate::queue::SubmitQueue)
//! and dispatches each batch as one `parallel_tiles` call — one tile per
//! request — so up to `threads` requests of a batch solve concurrently on
//! the shared pool. Solves run through the cancellable guarded paths of
//! `chambolle-core`, so a fault degrades one request (structured error) and
//! a deadline aborts at the next iteration boundary, never poisoning the
//! pool or the service.
//!
//! Every accepted request receives exactly one response. Shutdown closes the
//! queue (new submissions get [`RejectReason::ShuttingDown`]), drains the
//! backlog, joins the dispatcher, and flushes a final telemetry
//! [`RunReport`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chambolle_core::{
    guarded_denoise_with_ctx, DegradationPolicy, ExecCtx, FlowError, KernelBackend,
};
use chambolle_core::{
    CancelReason, CancelToken, GuardError, RecoveryPolicy, RecoveryReport, TvL1Solver,
};
use chambolle_par::ThreadPool;
use chambolle_telemetry::json::JsonValue;
use chambolle_telemetry::trace::{splitmix_next, SpanRecord, Tracer, DEFAULT_TRACE_RING};
use chambolle_telemetry::window::{WindowConfig, WindowedMetrics};
use chambolle_telemetry::{names, RunReport, Telemetry};

use crate::queue::{Pending, SubmitQueue};
use crate::request::{
    Completed, Output, Priority, RejectReason, Request, ResponseTier, ServiceError, Workload,
};

/// Schema identifier of [`ServiceHandle::metrics_snapshot`] documents.
pub const METRICS_SNAPSHOT_SCHEMA: &str = "chambolle.metrics_snapshot.v1";

/// How many of the slowest recent traces a metrics snapshot embeds.
const SNAPSHOT_SLOWEST: usize = 5;

/// A declarative latency/error objective for one scheduling lane.
///
/// Evaluated continuously over the rolling metrics window: a response
/// breaches the objective when it errors or lands slower than
/// `latency_us`. The *burn rate* is the windowed breach fraction divided by
/// the allowed error budget `1 - goal` — 1.0 means the lane consumes its
/// budget exactly as fast as the objective permits, >1 means faster. A lane
/// whose burn rate reaches `burn_threshold` counts as *burning*, which the
/// brownout layer treats exactly like queue congestion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloObjective {
    /// Latency target in microseconds; slower responses breach.
    pub latency_us: u64,
    /// Fraction of responses that must meet the target (e.g. 0.99).
    pub goal: f64,
    /// Burn rate at which the lane counts as burning (1.0 = consuming
    /// budget exactly as fast as the goal allows).
    pub burn_threshold: f64,
}

impl SloObjective {
    /// An objective with the given latency target and success goal, burning
    /// at 1x budget consumption.
    pub fn new(latency: Duration, goal: f64) -> SloObjective {
        SloObjective {
            latency_us: latency.as_micros().min(u128::from(u64::MAX)) as u64,
            goal: goal.clamp(0.0, 0.9999),
            burn_threshold: 1.0,
        }
    }

    /// Overrides the burn-rate threshold.
    pub fn with_burn_threshold(mut self, threshold: f64) -> SloObjective {
        self.burn_threshold = threshold.max(f64::MIN_POSITIVE);
        self
    }

    /// Burn rate of `breach` breaches out of `total` responses.
    pub fn burn_rate(&self, breach: u64, total: u64) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let err_rate = breach as f64 / total as f64;
        err_rate / (1.0 - self.goal).max(f64::MIN_POSITIVE)
    }
}

/// Stable index of a lane in per-lane arrays: interactive first.
fn lane_index(lane: Priority) -> usize {
    match lane {
        Priority::Interactive => 0,
        Priority::Batch => 1,
    }
}

const LANES: [Priority; 2] = [Priority::Interactive, Priority::Batch];

/// Tuning knobs of a service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads of the shared solver pool (and the maximum number of
    /// requests of one batch solving concurrently).
    pub threads: usize,
    /// Bounded queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one pool dispatch.
    pub max_batch: usize,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Queue depth that counts as congested (rising-edge counter).
    pub high_watermark: usize,
    /// Queue depth at which congestion is considered cleared (falling edge).
    pub low_watermark: usize,
    /// Guard-layer retry budget for denoise requests.
    pub recovery: RecoveryPolicy,
    /// Brownout policy: while the queue sits inside a congestion episode
    /// (depth rose to `high_watermark` and hasn't fallen back to
    /// `low_watermark`), solves are capped to this policy's iteration budget
    /// and tagged [`ResponseTier::Degraded`] — fidelity is shed instead of
    /// requests. `None` (the default) disables brownout.
    pub degradation: Option<DegradationPolicy>,
    /// Per-lane latency/error objectives (`[interactive, batch]`),
    /// evaluated over the rolling metrics window; a burning lane triggers
    /// brownout exactly like queue congestion. `None` entries are
    /// unconstrained.
    pub slo: [Option<SloObjective>; 2],
    /// Capacity of the recent-trace ring (0 disables server-side tracing).
    pub trace_ring: usize,
    /// Rolling-window shape of the live metrics plane.
    pub window: WindowConfig,
}

impl ServiceConfig {
    /// A config with the given pool size and queue capacity. The batching
    /// window and admission watermarks come from the process-wide active
    /// tunables ([`chambolle_tune::active`]): batches of up to 8 and
    /// watermarks at 3/4 and 1/4 of capacity unless a tuning profile says
    /// otherwise. No default deadline.
    pub fn new(threads: usize, queue_capacity: usize) -> Self {
        ServiceConfig::from_tunables(threads, queue_capacity, &chambolle_tune::active())
    }

    /// [`ServiceConfig::new`] with an explicit set of schedule knobs: the
    /// batch coalescing window and the watermark percentages are read from
    /// `tunables` (byte-identical to the historical `8` / `cap * 3 / 4` /
    /// `cap / 4` at the default knobs).
    pub fn from_tunables(
        threads: usize,
        queue_capacity: usize,
        tunables: &chambolle_tune::Tunables,
    ) -> Self {
        ServiceConfig {
            threads,
            queue_capacity,
            max_batch: tunables.batch_window,
            default_deadline: None,
            high_watermark: tunables.high_watermark(queue_capacity),
            low_watermark: tunables.low_watermark(queue_capacity),
            recovery: RecoveryPolicy::default(),
            degradation: None,
            slo: [None, None],
            trace_ring: DEFAULT_TRACE_RING,
            window: WindowConfig::default(),
        }
    }

    /// Enables brownout degradation under sustained queue congestion.
    pub fn with_degradation(mut self, policy: DegradationPolicy) -> Self {
        self.degradation = Some(policy);
        self
    }

    /// Sets the maximum batch size (1 disables coalescing).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the default per-request deadline.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Sets the latency/error objective of one scheduling lane.
    pub fn with_slo(mut self, lane: Priority, objective: SloObjective) -> Self {
        self.slo[lane_index(lane)] = Some(objective);
        self
    }

    /// Sets the rolling-window shape of the live metrics plane.
    pub fn with_window(mut self, window: WindowConfig) -> Self {
        self.window = window;
        self
    }

    /// Sets the recent-trace ring capacity (0 disables tracing).
    pub fn with_trace_ring(mut self, capacity: usize) -> Self {
        self.trace_ring = capacity;
        self
    }
}

impl Default for ServiceConfig {
    /// Two pool threads, a 64-deep queue, batches of up to 8.
    fn default() -> Self {
        ServiceConfig::new(2, 64)
    }
}

/// Monotonic counters the service keeps independent of telemetry (always
/// on; the zero-lost-response invariant is checked against these).
#[derive(Debug, Default)]
struct Stats {
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected_full: AtomicU64,
    rejected_shutdown: AtomicU64,
    rejected_invalid: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    deadline_exceeded: AtomicU64,
    batches: AtomicU64,
    degraded: AtomicU64,
}

/// Point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Submissions seen (accepted + rejected).
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Rejections: queue at capacity.
    pub rejected_full: u64,
    /// Rejections: service draining.
    pub rejected_shutdown: u64,
    /// Rejections: invalid workload.
    pub rejected_invalid: u64,
    /// Accepted requests that completed successfully.
    pub completed: u64,
    /// Accepted requests that failed in the solver.
    pub failed: u64,
    /// Accepted requests cancelled by the client.
    pub cancelled: u64,
    /// Accepted requests that exceeded their deadline.
    pub deadline_exceeded: u64,
    /// Batches dispatched to the pool.
    pub batches: u64,
    /// Completed responses served at [`ResponseTier::Degraded`] fidelity
    /// (counted inside `completed` as well).
    pub degraded: u64,
}

impl ServiceStats {
    /// Responses delivered, of any kind.
    pub fn responded(&self) -> u64 {
        self.completed + self.failed + self.cancelled + self.deadline_exceeded
    }

    /// `accepted - responded()`: nonzero only while requests are in flight.
    pub fn in_flight(&self) -> u64 {
        self.accepted - self.responded()
    }

    fn to_json(self) -> JsonValue {
        JsonValue::Object(vec![
            ("submitted".into(), self.submitted.into()),
            ("accepted".into(), self.accepted.into()),
            ("rejected_full".into(), self.rejected_full.into()),
            ("rejected_shutdown".into(), self.rejected_shutdown.into()),
            ("rejected_invalid".into(), self.rejected_invalid.into()),
            ("completed".into(), self.completed.into()),
            ("failed".into(), self.failed.into()),
            ("cancelled".into(), self.cancelled.into()),
            ("deadline_exceeded".into(), self.deadline_exceeded.into()),
            ("batches".into(), self.batches.into()),
            ("degraded".into(), self.degraded.into()),
        ])
    }
}

struct Shared {
    queue: SubmitQueue,
    telemetry: Telemetry,
    config: ServiceConfig,
    next_id: AtomicU64,
    stats: Stats,
    /// Instant the service started; `last_solve_ms` is measured from here.
    epoch: Instant,
    /// Milliseconds after `epoch` the most recent response was delivered;
    /// `u64::MAX` until the first one.
    last_solve_ms: AtomicU64,
    /// True while the dispatcher thread is inside its loop.
    dispatcher_live: AtomicBool,
    /// True while brownout degradation is active (requires a configured
    /// [`DegradationPolicy`] *and* a queue congestion episode or SLO burn).
    brownout: AtomicBool,
    /// True while any lane's SLO burn rate sits at/above its threshold.
    slo_burning: AtomicBool,
    /// Bounded ring of recently finished request traces.
    tracer: Tracer,
    /// Rolling-window rates and latency histograms (the live metrics plane).
    window: WindowedMetrics,
    /// SplitMix64 sequence feeding server-side span ids.
    span_counter: AtomicU64,
}

/// Point-in-time health/readiness report of a service instance.
///
/// Served locally by [`ServiceHandle::health`] and over the wire as a
/// dedicated health frame, this is the signal a load balancer or rerouting
/// layer keys off: `accepting && dispatcher_live` is the readiness gate,
/// `queue_depth`/`brownout` grade how loaded a ready instance is, and
/// `last_solve_age` exposes a wedged dispatcher that still accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Whether new submissions can still be admitted (queue not closed).
    pub accepting: bool,
    /// Whether the dispatcher thread is alive inside its loop.
    pub dispatcher_live: bool,
    /// Whether brownout degradation is currently active.
    pub brownout: bool,
    /// Queue depth across both lanes at snapshot time.
    pub queue_depth: usize,
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// Accepted requests not yet responded to.
    pub in_flight: u64,
    /// Requests completed successfully since start.
    pub completed: u64,
    /// Time since the most recent response of any kind; `None` until the
    /// first response is delivered.
    pub last_solve_age: Option<Duration>,
}

impl HealthSnapshot {
    /// The readiness predicate: accepting work and the dispatcher is alive.
    pub fn is_ready(&self) -> bool {
        self.accepting && self.dispatcher_live
    }
}

/// Client-side handle for submitting work; cheap to clone, usable from any
/// thread.
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl ServiceHandle {
    /// Admission control + enqueue. Never blocks.
    ///
    /// # Errors
    ///
    /// [`RejectReason`] when the request cannot be admitted (invalid, queue
    /// full, or the service is draining). Rejected requests consume no
    /// solver time.
    pub fn submit(&self, request: Request) -> Result<Ticket, RejectReason> {
        let shared = &self.shared;
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        shared.telemetry.counter_add(names::SERVICE_SUBMITTED, 1);
        if let Err(reason) = request.workload.validate() {
            shared
                .stats
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            shared
                .telemetry
                .counter_add(names::SERVICE_REJECTED_INVALID, 1);
            return Err(RejectReason::Invalid(reason));
        }
        let deadline = request.deadline.or(shared.config.default_deadline);
        let token = match deadline {
            Some(d) => CancelToken::with_timeout(d),
            None => CancelToken::new(),
        };
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let pending = Pending {
            id,
            key: request.workload.batch_key(),
            workload: request.workload,
            token: token.clone(),
            submitted_at: Instant::now(),
            responder: tx,
            priority: request.priority,
            trace: request.trace,
        };
        match shared.queue.try_push(pending, request.priority) {
            Ok(_depth) => {
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                shared.telemetry.counter_add(names::SERVICE_ACCEPTED, 1);
                Ok(Ticket { id, token, rx })
            }
            Err(reason) => {
                match &reason {
                    RejectReason::QueueFull { .. } => {
                        shared.stats.rejected_full.fetch_add(1, Ordering::Relaxed);
                        shared
                            .telemetry
                            .counter_add(names::SERVICE_REJECTED_QUEUE_FULL, 1);
                    }
                    RejectReason::ShuttingDown => {
                        shared
                            .stats
                            .rejected_shutdown
                            .fetch_add(1, Ordering::Relaxed);
                        shared
                            .telemetry
                            .counter_add(names::SERVICE_REJECTED_SHUTTING_DOWN, 1);
                    }
                    RejectReason::Invalid(_) => unreachable!("validated above"),
                }
                Err(reason)
            }
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.shared.stats;
        ServiceStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            accepted: s.accepted.load(Ordering::Relaxed),
            rejected_full: s.rejected_full.load(Ordering::Relaxed),
            rejected_shutdown: s.rejected_shutdown.load(Ordering::Relaxed),
            rejected_invalid: s.rejected_invalid.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            deadline_exceeded: s.deadline_exceeded.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            degraded: s.degraded.load(Ordering::Relaxed),
        }
    }

    /// A point-in-time health/readiness snapshot (also what the TCP
    /// front-end serves for wire health probes).
    pub fn health(&self) -> HealthSnapshot {
        let shared = &self.shared;
        shared
            .telemetry
            .counter_add(names::SERVICE_HEALTH_PROBES, 1);
        let stats = self.stats();
        let last_ms = shared.last_solve_ms.load(Ordering::Relaxed);
        let last_solve_age = (last_ms != u64::MAX).then(|| {
            let now_ms = shared.epoch.elapsed().as_millis() as u64;
            Duration::from_millis(now_ms.saturating_sub(last_ms))
        });
        HealthSnapshot {
            accepting: !shared.queue.is_closed(),
            dispatcher_live: shared.dispatcher_live.load(Ordering::Relaxed),
            brownout: shared.brownout.load(Ordering::Relaxed),
            queue_depth: shared.queue.depth(),
            queue_capacity: shared.queue.capacity(),
            in_flight: stats.in_flight(),
            completed: stats.completed,
            last_solve_age,
        }
    }

    /// The telemetry handle the service records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// The server-side tracer: a bounded ring of recently finished request
    /// traces (disabled when `config.trace_ring == 0`).
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// The rolling-window metrics plane the service marks into.
    pub fn window(&self) -> &WindowedMetrics {
        &self.shared.window
    }

    /// The service epoch — hand this to a client's
    /// [`with_tracer`](crate::ResilientClient::with_tracer) so client and
    /// server spans recorded into one tracer share a clock.
    pub fn epoch(&self) -> Instant {
        self.shared.epoch
    }

    /// Microseconds since the service epoch — the time base every span
    /// record uses for `start_us`.
    pub fn now_us(&self) -> u64 {
        self.shared
            .epoch
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64
    }

    /// A fresh nonzero span id from the service-wide sequence.
    pub fn next_span_id(&self) -> u64 {
        next_span_id(&self.shared)
    }

    /// A schema-stable (`chambolle.metrics_snapshot.v1`) live-metrics
    /// snapshot: queue occupancy per lane, rolling-window rates and latency
    /// histograms, SLO burn state, brownout, cumulative counters, and a
    /// "slowest recent traces" digest. This is the document the wire
    /// metrics frame serves to scrapers.
    pub fn metrics_snapshot(&self) -> JsonValue {
        let shared = &self.shared;
        shared
            .telemetry
            .counter_add(names::SERVICE_METRICS_PROBES, 1);
        let (interactive_depth, batch_depth) = shared.queue.lane_depths();
        let (burning, max_burn, lanes) = slo_status(shared);
        let counters = shared.telemetry.snapshot();
        let counter = |name: &str| JsonValue::from(counters.counter(name).unwrap_or(0));
        let slowest: Vec<JsonValue> = shared
            .tracer
            .slowest(SNAPSHOT_SLOWEST)
            .iter()
            .map(|t| {
                JsonValue::Object(vec![
                    ("trace_id".into(), format!("{:032x}", t.trace_id).into()),
                    ("total_us".into(), t.total_us.into()),
                    ("span_count".into(), (t.spans.len() as u64).into()),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("schema".into(), METRICS_SNAPSHOT_SCHEMA.into()),
            ("uptime_us".into(), self.now_us().into()),
            (
                "window".into(),
                JsonValue::Object(vec![
                    (
                        "bucket_width_us".into(),
                        shared.window.config().bucket_width_us.into(),
                    ),
                    ("buckets".into(), shared.window.config().buckets.into()),
                ]),
            ),
            (
                "queue".into(),
                JsonValue::Object(vec![
                    ("depth".into(), (interactive_depth + batch_depth).into()),
                    ("capacity".into(), shared.queue.capacity().into()),
                    ("interactive_depth".into(), interactive_depth.into()),
                    ("batch_depth".into(), batch_depth.into()),
                    ("congested".into(), shared.queue.is_congested().into()),
                ]),
            ),
            ("window_metrics".into(), shared.window.snapshot().to_json()),
            (
                "slo".into(),
                JsonValue::Object(vec![
                    ("burning".into(), burning.into()),
                    ("max_burn_rate".into(), max_burn.into()),
                    ("lanes".into(), JsonValue::Array(lanes)),
                ]),
            ),
            (
                "brownout".into(),
                shared.brownout.load(Ordering::Relaxed).into(),
            ),
            ("stats".into(), self.stats().to_json()),
            (
                "counters".into(),
                JsonValue::Object(vec![
                    (
                        "idempotent_hits".into(),
                        counter(names::SERVICE_IDEMPOTENT_HITS),
                    ),
                    (
                        "health_probes".into(),
                        counter(names::SERVICE_HEALTH_PROBES),
                    ),
                    (
                        "metrics_probes".into(),
                        counter(names::SERVICE_METRICS_PROBES),
                    ),
                    (
                        "brownout_entered".into(),
                        counter(names::SERVICE_BROWNOUT_ENTERED),
                    ),
                    (
                        "brownout_exited".into(),
                        counter(names::SERVICE_BROWNOUT_EXITED),
                    ),
                    (
                        "slo_burn_entered".into(),
                        counter(names::SERVICE_SLO_BURN_ENTERED),
                    ),
                    (
                        "slo_burn_exited".into(),
                        counter(names::SERVICE_SLO_BURN_EXITED),
                    ),
                    ("chaos_resets".into(), counter(names::SERVICE_CHAOS_RESETS)),
                    (
                        "chaos_corruptions".into(),
                        counter(names::SERVICE_CHAOS_CORRUPTIONS),
                    ),
                    ("chaos_stalls".into(), counter(names::SERVICE_CHAOS_STALLS)),
                    (
                        "chaos_partial_writes".into(),
                        counter(names::SERVICE_CHAOS_PARTIAL_WRITES),
                    ),
                    (
                        "chaos_server_panics".into(),
                        counter(names::SERVICE_CHAOS_SERVER_PANICS),
                    ),
                ]),
            ),
            (
                "traces".into(),
                JsonValue::Object(vec![
                    ("finished".into(), shared.tracer.len().into()),
                    ("slowest".into(), JsonValue::Array(slowest)),
                ]),
            ),
        ])
    }
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("stats", &self.stats())
            .finish()
    }
}

/// One accepted request's claim on its future response.
pub struct Ticket {
    id: u64,
    token: CancelToken,
    rx: mpsc::Receiver<Result<Completed, ServiceError>>,
}

impl Ticket {
    /// Service-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cooperative cancellation; the solve aborts at its next
    /// iteration boundary and the ticket resolves to
    /// [`ServiceError::Cancelled`].
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// The request's [`ServiceError`] outcome.
    pub fn wait(self) -> Result<Completed, ServiceError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(mpsc::RecvError) => Err(ServiceError::Disconnected),
        }
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("id", &self.id).finish()
    }
}

/// Result of a graceful shutdown: the final counters and (when telemetry is
/// enabled) the flushed run report.
#[derive(Debug)]
pub struct ShutdownSummary {
    /// Final counter snapshot; `in_flight()` is 0 after a clean drain.
    pub stats: ServiceStats,
    /// Final report (`tool = "chambolle-service"`, section `"service"`),
    /// present when the service was built with enabled telemetry.
    pub report: Option<RunReport>,
}

/// The running service: a dispatcher thread plus its submission handle.
///
/// # Examples
///
/// ```
/// use chambolle_imaging::Grid;
/// use chambolle_core::ChambolleParams;
/// use chambolle_service::{Request, Service, ServiceConfig, Workload};
///
/// let service = Service::spawn(ServiceConfig::new(2, 16));
/// let ticket = service.handle().submit(Request::new(Workload::Denoise {
///     input: Grid::new(16, 16, 0.5f32),
///     params: ChambolleParams::with_iterations(10),
/// }))?;
/// let done = ticket.wait().unwrap();
/// assert!(done.output.as_denoised().is_some());
/// let summary = service.shutdown();
/// assert_eq!(summary.stats.completed, 1);
/// # Ok::<(), chambolle_service::RejectReason>(())
/// ```
pub struct Service {
    handle: ServiceHandle,
    dispatcher: Option<JoinHandle<()>>,
}

impl Service {
    /// Starts a service with disabled telemetry.
    ///
    /// # Panics
    ///
    /// Panics if `config.threads`, `config.queue_capacity`, or
    /// `config.max_batch` is zero.
    pub fn spawn(config: ServiceConfig) -> Self {
        Service::spawn_with_telemetry(config, Telemetry::disabled())
    }

    /// Starts a service recording `service.*` metrics into `telemetry`.
    ///
    /// # Panics
    ///
    /// Panics if `config.threads`, `config.queue_capacity`, or
    /// `config.max_batch` is zero.
    pub fn spawn_with_telemetry(config: ServiceConfig, telemetry: Telemetry) -> Self {
        assert!(config.threads >= 1, "service needs at least one thread");
        assert!(config.queue_capacity >= 1, "queue capacity must be >= 1");
        assert!(config.max_batch >= 1, "max_batch must be >= 1");
        let tracer = if config.trace_ring == 0 {
            Tracer::disabled()
        } else {
            Tracer::with_capacity(config.trace_ring)
        };
        let window = WindowedMetrics::new(config.window);
        let shared = Arc::new(Shared {
            queue: SubmitQueue::new(
                config.queue_capacity,
                config.high_watermark,
                config.low_watermark,
                telemetry.clone(),
            ),
            telemetry,
            config,
            next_id: AtomicU64::new(1),
            stats: Stats::default(),
            epoch: Instant::now(),
            last_solve_ms: AtomicU64::new(u64::MAX),
            dispatcher_live: AtomicBool::new(false),
            brownout: AtomicBool::new(false),
            slo_burning: AtomicBool::new(false),
            tracer,
            window,
            span_counter: AtomicU64::new(0x7ACE_5EED),
        });
        let dispatcher_shared = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("chambolle-service-dispatch".into())
            .spawn(move || dispatcher_loop(&dispatcher_shared))
            .expect("failed to spawn the service dispatcher");
        Service {
            handle: ServiceHandle { shared },
            dispatcher: Some(dispatcher),
        }
    }

    /// The submission handle (clone freely across client threads).
    pub fn handle(&self) -> &ServiceHandle {
        &self.handle
    }

    /// Drain-based graceful shutdown: stop admission, complete every
    /// accepted request, join the dispatcher, and flush the final report.
    pub fn shutdown(mut self) -> ShutdownSummary {
        self.shutdown_inner()
            .expect("shutdown_inner returns a summary on first call")
    }

    fn shutdown_inner(&mut self) -> Option<ShutdownSummary> {
        let dispatcher = self.dispatcher.take()?;
        self.handle.shared.queue.close();
        if dispatcher.join().is_err() {
            // The dispatcher never panics by design (solves are contained by
            // catch_unwind); if it somehow did, surface it in the summary
            // rather than propagating out of shutdown.
            self.handle
                .shared
                .telemetry
                .counter_add(names::SERVICE_FAILED, 1);
        }
        let stats = self.handle.stats();
        let telemetry = &self.handle.shared.telemetry;
        let report = telemetry.is_enabled().then(|| {
            let mut report = RunReport::from_telemetry("chambolle-service", telemetry);
            report.add_section("service", stats.to_json());
            report
        });
        Some(ShutdownSummary { stats, report })
    }
}

impl Drop for Service {
    /// Dropping without [`Service::shutdown`] still drains gracefully.
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("handle", &self.handle)
            .finish()
    }
}

fn dispatcher_loop(shared: &Shared) {
    shared.dispatcher_live.store(true, Ordering::Relaxed);
    let pool = ThreadPool::new(shared.config.threads).with_telemetry(shared.telemetry.clone());
    // Every request of this service runs on the same kernel backend; record
    // the `backend.*` capability gauges once per dispatcher lifetime.
    KernelBackend::active().record_telemetry(&shared.telemetry);
    while let Some(batch) = shared.queue.pop_batch(shared.config.max_batch) {
        dispatch_batch(shared, &pool, batch);
    }
    shared.dispatcher_live.store(false, Ordering::Relaxed);
}

/// A fresh nonzero span id: one SplitMix64 step over a shared sequence, so
/// ids are unique service-wide without coordination.
fn next_span_id(shared: &Shared) -> u64 {
    let mut seq = shared.span_counter.fetch_add(1, Ordering::Relaxed);
    loop {
        let id = splitmix_next(&mut seq);
        if id != 0 {
            return id;
        }
    }
}

/// Point-in-time SLO evaluation over the rolling window: whether any lane
/// burns at/above its threshold, the maximum burn rate, and a per-lane JSON
/// digest for the metrics snapshot.
fn slo_status(shared: &Shared) -> (bool, f64, Vec<JsonValue>) {
    let mut burning = false;
    let mut max_burn = 0.0f64;
    let mut lanes = Vec::new();
    let now_us = shared.window.now_us();
    for lane in LANES {
        let Some(objective) = shared.config.slo[lane_index(lane)] else {
            continue;
        };
        let name = lane.as_str();
        let total = shared
            .window
            .count_in_window_at(&format!("slo.{name}.total"), now_us);
        let breach = shared
            .window
            .count_in_window_at(&format!("slo.{name}.breach"), now_us);
        let burn = objective.burn_rate(breach, total);
        let lane_burning = burn >= objective.burn_threshold;
        burning |= lane_burning;
        max_burn = max_burn.max(burn);
        lanes.push(JsonValue::Object(vec![
            ("lane".into(), name.into()),
            ("latency_us".into(), objective.latency_us.into()),
            ("goal".into(), objective.goal.into()),
            ("burn_threshold".into(), objective.burn_threshold.into()),
            ("total".into(), total.into()),
            ("breach".into(), breach.into()),
            ("burn_rate".into(), burn.into()),
            ("burning".into(), lane_burning.into()),
        ]));
    }
    (burning, max_burn, lanes)
}

/// Evaluates SLO burn, records the burn-rate gauge and the edge-counted
/// `service.slo.burn.*` events, and returns whether any lane burns.
fn evaluate_slo_burn(shared: &Shared) -> bool {
    if shared.config.slo.iter().all(Option::is_none) {
        return false;
    }
    let (burning, max_burn, _) = slo_status(shared);
    shared
        .telemetry
        .gauge_set(names::SERVICE_SLO_BURN_RATE, max_burn);
    let was = shared.slo_burning.swap(burning, Ordering::Relaxed);
    if burning && !was {
        shared
            .telemetry
            .counter_add(names::SERVICE_SLO_BURN_ENTERED, 1);
    } else if !burning && was {
        shared
            .telemetry
            .counter_add(names::SERVICE_SLO_BURN_EXITED, 1);
    }
    burning
}

/// Picks the brownout stage for one batch from the two pressure signals.
///
/// Shedding is staged by severity, cheapest lever first:
///
/// - one signal (congestion episode *or* SLO burn) sheds **numerics**: the
///   tolerance-validated Fast tier at the full iteration budget;
/// - both signals at once additionally shed **convergence depth**: the
///   configured policy's iteration cap stacks on top of the fast tier.
///
/// Iterations are only ever truncated under compound pressure — precision
/// guarantees are cheaper to give up than convergence.
pub(crate) fn staged_policy(
    configured: DegradationPolicy,
    congested: bool,
    burning: bool,
) -> Option<DegradationPolicy> {
    match (congested, burning) {
        (false, false) => None,
        (true, true) => Some(configured.with_fast_tier()),
        _ => Some(DegradationPolicy::fast_tier()),
    }
}

/// Decides (at batch granularity) whether brownout degradation applies, and
/// records the edge transitions. Fidelity is shed when the queue sits inside
/// a congestion episode *or* the measured SLO burn rate says the service is
/// spending error budget too fast — so brownout reacts to what clients
/// experience, not only to queue depth. Returns the [`staged_policy`] to
/// degrade solves with, or `None` for full fidelity.
fn brownout_policy(shared: &Shared) -> Option<DegradationPolicy> {
    let burning = evaluate_slo_burn(shared);
    let policy = shared.config.degradation?;
    let congested = shared.queue.is_congested();
    let active = congested || burning;
    let was = shared.brownout.swap(active, Ordering::Relaxed);
    if active && !was {
        shared
            .telemetry
            .counter_add(names::SERVICE_BROWNOUT_ENTERED, 1);
    } else if !active && was {
        shared
            .telemetry
            .counter_add(names::SERVICE_BROWNOUT_EXITED, 1);
    }
    staged_policy(policy, congested, burning)
}

/// Solves one batch on the pool and responds to every member.
fn dispatch_batch(shared: &Shared, pool: &ThreadPool, batch: Vec<Pending>) {
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    shared.telemetry.counter_add(names::SERVICE_BATCHES, 1);
    shared
        .telemetry
        .observe(names::SERVICE_BATCH_SIZE, batch.len() as f64);

    let batch_size = batch.len();
    let dequeued_at = Instant::now();
    let policy = shared.config.recovery;
    // One brownout decision per batch: every member of a batch is served at
    // the same fidelity tier.
    let degradation = brownout_policy(shared);

    // Requests whose token already fired respond immediately without
    // touching the pool.
    let mut live: Vec<Pending> = Vec::with_capacity(batch_size);
    for pending in batch {
        match pending.token.check() {
            Ok(()) => live.push(pending),
            Err(cancelled) => {
                let queue_us = micros(pending.submitted_at, dequeued_at);
                respond(
                    shared,
                    &pending,
                    Err(error_from_reason(cancelled.reason)),
                    queue_us,
                    0,
                    batch_size,
                );
            }
        }
    }
    if live.is_empty() {
        return;
    }

    type SolveResult = Result<(Output, ResponseTier, Option<RecoveryReport>), ServiceError>;
    let slots: Vec<Mutex<Option<(SolveResult, u64)>>> =
        live.iter().map(|_| Mutex::new(None)).collect();
    if live.len() == 1 {
        // No point in a pool broadcast for a lone request.
        let solve_start = Instant::now();
        let result = solve_contained(&live[0], &policy, degradation, &shared.telemetry);
        *slots[0].lock().expect("slot poisoned") =
            Some((result, micros(solve_start, Instant::now())));
    } else {
        pool.parallel_tiles("service.batch", live.len(), |_, i| {
            let solve_start = Instant::now();
            let result = solve_contained(&live[i], &policy, degradation, &shared.telemetry);
            *slots[i].lock().expect("slot poisoned") =
                Some((result, micros(solve_start, Instant::now())));
        });
    }

    for (pending, slot) in live.iter().zip(slots) {
        let (result, solve_us) = slot
            .into_inner()
            .expect("slot poisoned")
            .expect("every batch member is solved exactly once");
        let queue_us = micros(pending.submitted_at, dequeued_at);
        respond(shared, pending, result, queue_us, solve_us, batch_size);
    }
}

/// One solve, with panics contained into a structured error so a poisoned
/// request can never take down the dispatcher or its pool.
///
/// The request's deadline token rides in an [`ExecCtx`] together with the
/// service telemetry and the process-wide kernel backend. The context
/// deliberately carries **no** pool: the solve already runs *on* a pool
/// worker, and the ctx-taking solver entry points fall back to their
/// sequential bodies when the context has no pool of its own.
fn solve_contained(
    pending: &Pending,
    policy: &RecoveryPolicy,
    degradation: Option<DegradationPolicy>,
    telemetry: &Telemetry,
) -> Result<(Output, ResponseTier, Option<RecoveryReport>), ServiceError> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        solve_one(pending, policy, degradation, telemetry)
    }));
    match outcome {
        Ok(result) => result,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            Err(ServiceError::Solver(format!("solve panicked: {msg}")))
        }
    }
}

fn solve_one(
    pending: &Pending,
    policy: &RecoveryPolicy,
    degradation: Option<DegradationPolicy>,
    telemetry: &Telemetry,
) -> Result<(Output, ResponseTier, Option<RecoveryReport>), ServiceError> {
    let mut ctx = ExecCtx::default()
        .with_telemetry(telemetry.clone())
        .with_cancel(pending.token.clone())
        .with_trace(pending.trace);
    if let Some(d) = degradation {
        ctx = ctx.with_degradation(d);
    }
    match &pending.workload {
        Workload::Denoise { input, params } => {
            // The context's degradation policy caps the iteration count and
            // overrides the numerics tier inside the guarded solve; the tier
            // just records whether either lever bit.
            let tier = if degradation.is_some_and(|d| d.degrades(params.iterations)) {
                ResponseTier::Degraded
            } else {
                ResponseTier::Full
            };
            match guarded_denoise_with_ctx(input, params, policy, &ctx) {
                Ok((u, report)) => Ok((Output::Denoised(u), tier, Some(report))),
                Err(GuardError::Cancelled(c)) => Err(error_from_reason(c.reason)),
                Err(other) => Err(ServiceError::Solver(other.to_string())),
            }
        }
        Workload::TvL1 { i0, i1, params } => {
            // The TV-L1 outer loop sizes its inner Chambolle solves from its
            // own params, so brownout caps those directly; the numerics-tier
            // override rides in on the context itself.
            let mut params = *params;
            let tier = match degradation {
                Some(d) if d.degrades(params.inner.iterations) => {
                    params.inner.iterations = d.effective_iterations(params.inner.iterations);
                    ResponseTier::Degraded
                }
                _ => ResponseTier::Full,
            };
            let solver = TvL1Solver::sequential(params);
            match solver.flow_with_ctx(i0, i1, None, &ctx) {
                Ok((flow, _stats)) => Ok((Output::Flow(flow), tier, None)),
                Err(FlowError::Cancelled(c)) => Err(error_from_reason(c.reason)),
                Err(other) => Err(ServiceError::Solver(other.to_string())),
            }
        }
    }
}

fn error_from_reason(reason: CancelReason) -> ServiceError {
    match reason {
        CancelReason::Explicit => ServiceError::Cancelled,
        CancelReason::DeadlineExceeded => ServiceError::DeadlineExceeded,
    }
}

/// Delivers exactly one response for `pending`, updating counters and
/// latency histograms. A dropped ticket (client gave up) is fine — the send
/// error is ignored, the accounting still happens.
fn respond(
    shared: &Shared,
    pending: &Pending,
    result: Result<(Output, ResponseTier, Option<RecoveryReport>), ServiceError>,
    queue_us: u64,
    solve_us: u64,
    batch_size: usize,
) {
    let total_us = micros(pending.submitted_at, Instant::now());
    let telemetry = &shared.telemetry;
    telemetry.observe(names::SERVICE_QUEUE_LATENCY_US, queue_us as f64);
    telemetry.observe(names::SERVICE_SOLVE_LATENCY_US, solve_us as f64);
    telemetry.observe(names::SERVICE_TOTAL_LATENCY_US, total_us as f64);
    shared
        .last_solve_ms
        .store(shared.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);

    // The live metrics plane: rolling-window rates and latency histograms,
    // labelled by lane where a scraper would slice them.
    let lane = pending.priority.as_str();
    let window = &shared.window;
    window.observe(&format!("{lane}.queue_us"), queue_us as f64);
    window.observe("solve_us", solve_us as f64);
    window.observe("total_us", total_us as f64);
    window.observe("batch_size", batch_size as f64);
    window.mark(&format!("{lane}.responses"), 1);
    if result.is_err() {
        window.mark(&format!("{lane}.errors"), 1);
    }

    // SLO accounting: a breach is an error or a response slower than the
    // lane's latency target. Burn-rate evaluation happens per batch in
    // `brownout_policy`; here we only feed the window.
    if let Some(objective) = shared.config.slo[lane_index(pending.priority)] {
        window.mark(&format!("slo.{lane}.total"), 1);
        let breached = result.is_err() || total_us > objective.latency_us;
        if breached {
            window.mark(&format!("slo.{lane}.breach"), 1);
            telemetry.counter_add(&format!("{}{lane}", names::SERVICE_SLO_BREACH_PREFIX), 1);
        }
    }

    // Span tree of this request's service-side life: queue wait and batch
    // residency under the propagated parent, the solve nested inside the
    // batch span. Starts are measured from the service epoch; durations sum
    // consistently (queue + batch == total, solve <= batch).
    if pending.trace.is_active() && shared.tracer.is_enabled() {
        let trace_id = pending.trace.trace_id;
        let parent = pending.trace.span_id;
        let base_us = micros(shared.epoch, pending.submitted_at);
        let batch_span = next_span_id(shared);
        shared.tracer.record_span(SpanRecord {
            trace_id,
            span_id: next_span_id(shared),
            parent_span_id: parent,
            name: "queue".into(),
            start_us: base_us,
            dur_us: queue_us,
            attrs: vec![("lane".into(), lane.into())],
        });
        shared.tracer.record_span(SpanRecord {
            trace_id,
            span_id: batch_span,
            parent_span_id: parent,
            name: "batch".into(),
            start_us: base_us + queue_us,
            dur_us: total_us.saturating_sub(queue_us),
            attrs: vec![("batch_size".into(), batch_size.into())],
        });
        shared.tracer.record_span(SpanRecord {
            trace_id,
            span_id: next_span_id(shared),
            parent_span_id: batch_span,
            name: "solve".into(),
            start_us: (base_us + total_us).saturating_sub(solve_us),
            dur_us: solve_us,
            attrs: vec![("ok".into(), result.is_ok().into())],
        });
        telemetry.counter_add(names::SERVICE_TRACE_SPANS, 3);
    }

    let response = match result {
        Ok((output, tier, recovery)) => {
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            telemetry.counter_add(names::SERVICE_COMPLETED, 1);
            if tier == ResponseTier::Degraded {
                shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
                telemetry.counter_add(names::SERVICE_DEGRADED_RESPONSES, 1);
            }
            if let Some(report) = &recovery {
                report.record_telemetry(telemetry);
            }
            Ok(Completed {
                output,
                tier,
                recovery,
                queue_us,
                solve_us,
                total_us,
                batch_size,
            })
        }
        Err(err) => {
            let (stat, name) = match &err {
                ServiceError::Cancelled => (&shared.stats.cancelled, names::SERVICE_CANCELLED),
                ServiceError::DeadlineExceeded => (
                    &shared.stats.deadline_exceeded,
                    names::SERVICE_DEADLINE_EXCEEDED,
                ),
                _ => (&shared.stats.failed, names::SERVICE_FAILED),
            };
            stat.fetch_add(1, Ordering::Relaxed);
            telemetry.counter_add(name, 1);
            Err(err)
        }
    };
    let _ = pending.responder.send(response);
}

fn micros(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_micros() as u64
}
