//! Request and response vocabulary of the service.
//!
//! A [`Request`] pairs a [`Workload`] with scheduling hints (priority lane,
//! deadline). The micro-batcher coalesces workloads whose [`BatchKey`]s are
//! equal — same kind, same dimensions, bit-identical parameters — because
//! only those can share a pool dispatch without changing any result.

use std::fmt;
use std::time::Duration;

use chambolle_core::{validate_solvable, ChambolleParams, RecoveryReport, TvL1Params};
use chambolle_imaging::{FlowField, Grid};
use chambolle_telemetry::trace::TraceContext;

/// Scheduling lane of a request.
///
/// Interactive requests are always dequeued before batch requests; within a
/// lane, requests keep submission order (no starvation *within* a lane, and
/// batch work proceeds whenever the interactive lane is empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency-sensitive lane, dequeued first.
    Interactive,
    /// Throughput lane, dequeued when the interactive lane is empty.
    #[default]
    Batch,
}

impl Priority {
    /// Stable wire/report identifier.
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// The work a request asks for.
#[derive(Debug, Clone)]
pub enum Workload {
    /// One ROF denoise through the guarded sequential solver.
    Denoise {
        /// Noisy input image.
        input: Grid<f32>,
        /// Chambolle parameters.
        params: ChambolleParams,
    },
    /// One TV-L1 optical-flow estimation between two frames.
    TvL1 {
        /// First frame.
        i0: Grid<f32>,
        /// Second frame.
        i1: Grid<f32>,
        /// Outer-loop parameters.
        params: TvL1Params,
    },
}

impl Workload {
    /// The coalescing key: workloads with equal keys may share a batch.
    pub fn batch_key(&self) -> BatchKey {
        match self {
            Workload::Denoise { input, params } => BatchKey {
                kind: WorkloadKind::Denoise,
                width: input.width(),
                height: input.height(),
                param_bits: vec![
                    params.theta.to_bits(),
                    params.tau.to_bits(),
                    params.iterations,
                ],
            },
            Workload::TvL1 { i0, params, .. } => BatchKey {
                kind: WorkloadKind::TvL1,
                width: i0.width(),
                height: i0.height(),
                param_bits: vec![
                    params.lambda.to_bits(),
                    params.inner.theta.to_bits(),
                    params.inner.tau.to_bits(),
                    params.inner.iterations,
                    params.warps,
                    params.outer_iterations,
                    params.pyramid_levels as u32,
                    params.scale_factor.to_bits(),
                    u32::from(params.median_filter),
                ],
            },
        }
    }

    /// Admission-time validation: shape and parameter checks that no solver
    /// could work around. Failures become [`RejectReason::Invalid`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason string.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Workload::Denoise { input, params } => {
                if input.is_empty() {
                    return Err("denoise input has no cells".into());
                }
                validate_solvable(params).map_err(|e| e.to_string())
            }
            Workload::TvL1 { i0, i1, params } => {
                if i0.is_empty() || i1.is_empty() {
                    return Err("flow frames have no cells".into());
                }
                if i0.dims() != i1.dims() {
                    return Err(format!(
                        "flow frames differ in size: {:?} vs {:?}",
                        i0.dims(),
                        i1.dims()
                    ));
                }
                validate_solvable(&params.inner).map_err(|e| e.to_string())
            }
        }
    }

    /// `(width, height)` of the workload's frame(s).
    pub fn dims(&self) -> (usize, usize) {
        match self {
            Workload::Denoise { input, .. } => input.dims(),
            Workload::TvL1 { i0, .. } => i0.dims(),
        }
    }
}

/// Kind discriminant of a [`BatchKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// ROF denoise.
    Denoise,
    /// TV-L1 optical flow.
    TvL1,
}

/// Equality key used by the micro-batcher.
///
/// Two requests are batch-compatible iff their keys are equal: same workload
/// kind, same frame dimensions, and bit-identical parameters (`f32`s compared
/// via [`f32::to_bits`], so `0.25` and `0.25000001` never alias).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// Workload kind.
    pub kind: WorkloadKind,
    /// Frame width.
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Parameter fields, bit-exact.
    pub param_bits: Vec<u32>,
}

/// One submission: workload plus scheduling hints.
#[derive(Debug, Clone)]
pub struct Request {
    /// The work to do.
    pub workload: Workload,
    /// Scheduling lane.
    pub priority: Priority,
    /// Per-request deadline measured from submission; `None` uses the
    /// service's default (which may also be none).
    pub deadline: Option<Duration>,
    /// Distributed-trace context this request belongs to
    /// ([`TraceContext::NONE`] when tracing is off).
    pub trace: TraceContext,
}

impl Request {
    /// A batch-lane request with no explicit deadline.
    pub fn new(workload: Workload) -> Self {
        Request {
            workload,
            priority: Priority::Batch,
            deadline: None,
            trace: TraceContext::NONE,
        }
    }

    /// Sets the priority lane.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the deadline (from submission time).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a propagated trace context.
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = trace;
        self
    }
}

/// The fidelity a response was served at.
///
/// Under sustained queue congestion the service enters *brownout*: instead
/// of rejecting overflow, it caps solve iterations via the configured
/// [`DegradationPolicy`](chambolle_core::DegradationPolicy) and tags the
/// affected responses [`ResponseTier::Degraded`] so clients can tell a
/// full-fidelity result from a load-shed one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResponseTier {
    /// The solve ran every requested iteration.
    #[default]
    Full,
    /// Brownout capped the iteration count below the request's ask.
    Degraded,
}

impl ResponseTier {
    /// Stable wire/report identifier.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResponseTier::Full => "full",
            ResponseTier::Degraded => "degraded",
        }
    }
}

impl fmt::Display for ResponseTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A successful solve's payload.
#[derive(Debug, Clone)]
pub enum Output {
    /// Denoised image.
    Denoised(Grid<f32>),
    /// Estimated flow field.
    Flow(FlowField),
}

impl Output {
    /// The denoised grid, if this output is one.
    pub fn as_denoised(&self) -> Option<&Grid<f32>> {
        match self {
            Output::Denoised(g) => Some(g),
            Output::Flow(_) => None,
        }
    }

    /// The flow field, if this output is one.
    pub fn as_flow(&self) -> Option<&FlowField> {
        match self {
            Output::Flow(f) => Some(f),
            Output::Denoised(_) => None,
        }
    }
}

/// A completed request: the output plus per-request accounting.
#[derive(Debug, Clone)]
pub struct Completed {
    /// The solve result.
    pub output: Output,
    /// Fidelity tier: [`ResponseTier::Degraded`] when brownout capped the
    /// iterations below the request's ask.
    pub tier: ResponseTier,
    /// Guard-layer recovery report (denoise requests only).
    pub recovery: Option<RecoveryReport>,
    /// Microseconds spent waiting in the queue.
    pub queue_us: u64,
    /// Microseconds spent in the solver.
    pub solve_us: u64,
    /// Microseconds from submission to response.
    pub total_us: u64,
    /// Number of requests coalesced into the batch this one rode in.
    pub batch_size: usize,
}

/// Structured admission-control rejection. Submissions that are rejected
/// never enter the queue and never consume solver time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue was at capacity.
    QueueFull {
        /// Queue depth observed at the admission decision.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The service is draining and accepts no new work.
    ShuttingDown,
    /// The workload failed admission-time validation.
    Invalid(String),
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { depth, capacity } => {
                write!(f, "queue full ({depth}/{capacity})")
            }
            RejectReason::ShuttingDown => write!(f, "service is shutting down"),
            RejectReason::Invalid(reason) => write!(f, "invalid request: {reason}"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// Failure of an *accepted* request. Every accepted request receives exactly
/// one response: `Ok(Completed)` or one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The client cancelled the ticket.
    Cancelled,
    /// The request's deadline passed before the solve finished.
    DeadlineExceeded,
    /// The solver failed (guard exhausted its recovery avenues, or the
    /// solve panicked and was contained).
    Solver(String),
    /// The service dispatcher went away without responding (only possible
    /// if the dispatcher thread itself died — never part of normal
    /// operation or shutdown).
    Disconnected,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Cancelled => write!(f, "request cancelled"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::Solver(msg) => write!(f, "solver failure: {msg}"),
            ServiceError::Disconnected => write!(f, "service disconnected"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn denoise_workload(w: usize, h: usize, iters: u32) -> Workload {
        Workload::Denoise {
            input: Grid::new(w, h, 0.5f32),
            params: ChambolleParams::with_iterations(iters),
        }
    }

    #[test]
    fn batch_keys_require_same_dims_and_params() {
        let a = denoise_workload(8, 8, 10).batch_key();
        let b = denoise_workload(8, 8, 10).batch_key();
        let other_dims = denoise_workload(8, 9, 10).batch_key();
        let other_iters = denoise_workload(8, 8, 11).batch_key();
        assert_eq!(a, b);
        assert_ne!(a, other_dims);
        assert_ne!(a, other_iters);
    }

    #[test]
    fn batch_keys_separate_kinds_and_compare_params_bitwise() {
        let d = denoise_workload(8, 8, 10).batch_key();
        let f = Workload::TvL1 {
            i0: Grid::new(8, 8, 0.0f32),
            i1: Grid::new(8, 8, 0.0f32),
            params: TvL1Params::default(),
        }
        .batch_key();
        assert_ne!(d, f);

        let mut p = ChambolleParams::with_iterations(10);
        p.theta = 0.25;
        let k1 = Workload::Denoise {
            input: Grid::new(4, 4, 0.0f32),
            params: p,
        }
        .batch_key();
        p.theta = 0.25 + f32::EPSILON;
        let k2 = Workload::Denoise {
            input: Grid::new(4, 4, 0.0f32),
            params: p,
        }
        .batch_key();
        assert_ne!(k1, k2, "ULP-different params must not alias");
    }

    #[test]
    fn validation_rejects_malformed_workloads() {
        assert!(denoise_workload(4, 4, 5).validate().is_ok());
        let mut bad = ChambolleParams::with_iterations(5);
        bad.theta = -1.0;
        assert!(Workload::Denoise {
            input: Grid::new(4, 4, 0.0f32),
            params: bad,
        }
        .validate()
        .is_err());
        assert!(Workload::TvL1 {
            i0: Grid::new(4, 4, 0.0f32),
            i1: Grid::new(5, 4, 0.0f32),
            params: TvL1Params::default(),
        }
        .validate()
        .unwrap_err()
        .contains("differ"));
    }

    #[test]
    fn reject_and_error_display() {
        let full = RejectReason::QueueFull {
            depth: 64,
            capacity: 64,
        };
        assert!(full.to_string().contains("64/64"));
        assert!(RejectReason::ShuttingDown.to_string().contains("shutting"));
        assert!(RejectReason::Invalid("x".into()).to_string().contains("x"));
        assert!(ServiceError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(ServiceError::Solver("boom".into())
            .to_string()
            .contains("boom"));
    }
}
