//! Deterministic network-fault injection for the TCP front-end.
//!
//! A [`ChaosConfig`] describes a fault schedule — connection resets, single
//! bit flips, read stalls, partial writes, and one scripted server panic —
//! driven entirely by a seed. The same seed replays the same schedule, so a
//! chaos run that surfaces a bug *is* its regression test: no flaky "retry
//! until it reproduces" loops.
//!
//! Faults are injected at the byte-stream layer by [`ChaosStream`], which
//! wraps the server side of every accepted connection when the server is
//! started via [`TcpServer::bind_with_chaos`](crate::TcpServer::bind_with_chaos).
//! Because both request and response bytes cross the wrapped stream, one
//! injector exercises both directions: a corrupted read mangles a client
//! request in flight, a corrupted write mangles a server response.
//!
//! Randomness is SplitMix64. Each accepted connection draws its own stream
//! seeded by `seed ⊕ mix(connection_index)`, and every fault decision burns
//! one draw per successful I/O op — so the schedule depends only on the
//! seed, the connection order, and the op sequence, never on wall-clock
//! time.
//!
//! Every injected fault is recorded twice: as a `service.chaos.*` telemetry
//! counter and as a [`ChaosEvent`] in the injector's log, which tests can
//! assert against.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use chambolle_telemetry::{names, Telemetry};

/// Fault schedule of a chaos-wrapped server.
///
/// All rates are per-I/O-op probabilities in `[0, 1]`. The default is
/// completely quiet; turn individual faults on with the builder methods.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed of the deterministic schedule.
    pub seed: u64,
    /// Probability a successful read/write is turned into a connection
    /// reset (stream severed, `ConnectionReset` surfaced).
    pub reset_rate: f64,
    /// Probability one bit of a successfully transferred buffer is flipped.
    pub corrupt_rate: f64,
    /// Probability a successful read is delayed by [`ChaosConfig::stall`].
    pub stall_rate: f64,
    /// Length of an injected read stall.
    pub stall: Duration,
    /// Probability a write delivers only its first half and then severs the
    /// connection.
    pub partial_write_rate: f64,
    /// Scripted server panic: the Nth solve request (1-based, counted
    /// across all connections) completes and commits server-side, then the
    /// serving thread panics before writing the response.
    pub panic_on_request: Option<u64>,
}

impl ChaosConfig {
    /// A schedule with the given seed and every fault disabled.
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            reset_rate: 0.0,
            corrupt_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(5),
            partial_write_rate: 0.0,
            panic_on_request: None,
        }
    }

    /// Sets the connection-reset probability.
    pub fn with_resets(mut self, rate: f64) -> Self {
        self.reset_rate = rate;
        self
    }

    /// Sets the bit-flip corruption probability.
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Sets the read-stall probability and duration.
    pub fn with_stalls(mut self, rate: f64, stall: Duration) -> Self {
        self.stall_rate = rate;
        self.stall = stall;
        self
    }

    /// Sets the partial-write probability.
    pub fn with_partial_writes(mut self, rate: f64) -> Self {
        self.partial_write_rate = rate;
        self
    }

    /// Scripts a server panic on the `n`th solve request (1-based).
    pub fn with_panic_on_request(mut self, n: u64) -> Self {
        self.panic_on_request = Some(n);
        self
    }

    /// Whether any byte-stream fault (reset/corrupt/stall/partial write)
    /// can fire.
    pub fn any_network_faults(&self) -> bool {
        self.reset_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.stall_rate > 0.0
            || self.partial_write_rate > 0.0
    }
}

/// One injected fault, as recorded in the injector's event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// A connection was severed mid-op.
    Reset {
        /// Index of the affected connection.
        conn: u64,
    },
    /// One bit of a transferred buffer was flipped.
    Corrupt {
        /// Index of the affected connection.
        conn: u64,
        /// Byte offset (within the op's buffer) of the flip.
        byte: usize,
    },
    /// A read was delayed.
    Stall {
        /// Index of the affected connection.
        conn: u64,
    },
    /// A write delivered only a prefix, then the connection was severed.
    PartialWrite {
        /// Index of the affected connection.
        conn: u64,
        /// Bytes actually delivered.
        wrote: usize,
        /// Bytes the caller asked to write.
        of: usize,
    },
    /// The scripted server panic fired.
    ServerPanic {
        /// 1-based solve-request ordinal that triggered it.
        request: u64,
    },
}

/// Shared state of one chaos-wrapped server: the schedule, the event log,
/// and the counters every connection records into.
pub struct ChaosInjector {
    config: ChaosConfig,
    connections: AtomicU64,
    solve_requests: AtomicU64,
    panic_armed: AtomicU64,
    events: Mutex<Vec<ChaosEvent>>,
    telemetry: Telemetry,
}

impl ChaosInjector {
    /// A fresh injector recording `service.chaos.*` counters into
    /// `telemetry`.
    pub fn new(config: ChaosConfig, telemetry: Telemetry) -> Arc<Self> {
        let armed = config.panic_on_request.unwrap_or(0);
        Arc::new(ChaosInjector {
            config,
            connections: AtomicU64::new(0),
            solve_requests: AtomicU64::new(0),
            panic_armed: AtomicU64::new(armed),
            events: Mutex::new(Vec::new()),
            telemetry,
        })
    }

    /// The schedule this injector runs.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Wraps a freshly accepted connection, assigning it the next slot of
    /// the deterministic schedule.
    pub fn wrap(self: &Arc<Self>, stream: TcpStream) -> ChaosStream {
        let conn = self.connections.fetch_add(1, Ordering::Relaxed);
        ChaosStream {
            inner: stream,
            injector: Arc::clone(self),
            conn,
            rng: splitmix64(self.config.seed ^ mix(conn)),
        }
    }

    /// Counts one decoded solve request and reports whether the scripted
    /// panic should fire *now*. Fires at most once per injector.
    pub fn solve_request_panics(&self) -> bool {
        let ordinal = self.solve_requests.fetch_add(1, Ordering::Relaxed) + 1;
        let armed = self.panic_armed.load(Ordering::Relaxed);
        if armed != 0 && ordinal == armed {
            self.panic_armed.store(0, Ordering::Relaxed);
            self.record(ChaosEvent::ServerPanic { request: ordinal });
            true
        } else {
            false
        }
    }

    /// Copy of the event log so far.
    pub fn events(&self) -> Vec<ChaosEvent> {
        self.events.lock().expect("chaos log poisoned").clone()
    }

    /// Total injected faults so far.
    pub fn fault_count(&self) -> usize {
        self.events.lock().expect("chaos log poisoned").len()
    }

    fn record(&self, event: ChaosEvent) {
        let name = match event {
            ChaosEvent::Reset { .. } => names::SERVICE_CHAOS_RESETS,
            ChaosEvent::Corrupt { .. } => names::SERVICE_CHAOS_CORRUPTIONS,
            ChaosEvent::Stall { .. } => names::SERVICE_CHAOS_STALLS,
            ChaosEvent::PartialWrite { .. } => names::SERVICE_CHAOS_PARTIAL_WRITES,
            ChaosEvent::ServerPanic { .. } => names::SERVICE_CHAOS_SERVER_PANICS,
        };
        self.telemetry.counter_add(name, 1);
        self.events.lock().expect("chaos log poisoned").push(event);
    }
}

impl std::fmt::Debug for ChaosInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosInjector")
            .field("config", &self.config)
            .field("connections", &self.connections.load(Ordering::Relaxed))
            .field("faults", &self.fault_count())
            .finish()
    }
}

/// A `TcpStream` with the fault schedule spliced into its `Read`/`Write`
/// impls.
///
/// Fault decisions are made per *successful* I/O op — a `WouldBlock` poll
/// timeout burns no randomness — so the schedule tracks traffic, not
/// wall-clock polling.
pub struct ChaosStream {
    inner: TcpStream,
    injector: Arc<ChaosInjector>,
    conn: u64,
    rng: u64,
}

impl ChaosStream {
    /// The wrapped stream (for socket options).
    pub fn inner(&self) -> &TcpStream {
        &self.inner
    }

    /// Index of this connection in the injector's schedule.
    pub fn connection_index(&self) -> u64 {
        self.conn
    }

    fn next_u64(&mut self) -> u64 {
        let (next_state, draw) = splitmix64_step(self.rng);
        self.rng = next_state;
        draw
    }

    /// One draw in `[0, 1)`.
    fn roll(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn sever(&mut self) -> io::Error {
        let _ = self.inner.shutdown(Shutdown::Both);
        self.injector.record(ChaosEvent::Reset { conn: self.conn });
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: injected reset")
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        if n == 0 {
            return Ok(0);
        }
        let config = self.injector.config.clone();
        if config.stall_rate > 0.0 && self.roll() < config.stall_rate {
            self.injector.record(ChaosEvent::Stall { conn: self.conn });
            std::thread::sleep(config.stall);
        }
        if config.reset_rate > 0.0 && self.roll() < config.reset_rate {
            return Err(self.sever());
        }
        if config.corrupt_rate > 0.0 && self.roll() < config.corrupt_rate {
            let pos = (self.next_u64() as usize) % n;
            let bit = (self.next_u64() % 8) as u8;
            buf[pos] ^= 1 << bit;
            self.injector.record(ChaosEvent::Corrupt {
                conn: self.conn,
                byte: pos,
            });
        }
        Ok(n)
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let config = self.injector.config.clone();
        if config.reset_rate > 0.0 && self.roll() < config.reset_rate {
            return Err(self.sever());
        }
        if config.partial_write_rate > 0.0
            && buf.len() > 1
            && self.roll() < config.partial_write_rate
        {
            let half = buf.len() / 2;
            self.inner.write_all(&buf[..half])?;
            let _ = self.inner.flush();
            self.injector.record(ChaosEvent::PartialWrite {
                conn: self.conn,
                wrote: half,
                of: buf.len(),
            });
            let _ = self.inner.shutdown(Shutdown::Both);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: injected partial write",
            ));
        }
        if config.corrupt_rate > 0.0 && self.roll() < config.corrupt_rate {
            let mut mangled = buf.to_vec();
            let pos = (self.next_u64() as usize) % mangled.len();
            let bit = (self.next_u64() % 8) as u8;
            mangled[pos] ^= 1 << bit;
            self.injector.record(ChaosEvent::Corrupt {
                conn: self.conn,
                byte: pos,
            });
            self.inner.write_all(&mangled)?;
            return Ok(buf.len());
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// SplitMix64 seed scrambler (also used to space per-connection streams).
fn mix(x: u64) -> u64 {
    splitmix64_step(x.wrapping_add(0x9E37_79B9_7F4A_7C15)).1
}

fn splitmix64(seed: u64) -> u64 {
    seed.wrapping_add(0x9E37_79B9_7F4A_7C15)
}

fn splitmix64_step(state: u64) -> (u64, u64) {
    let next = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = next;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (next, z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_config_injects_nothing() {
        let config = ChaosConfig::quiet(42);
        assert!(!config.any_network_faults());
        assert!(config.panic_on_request.is_none());
    }

    #[test]
    fn builders_compose() {
        let config = ChaosConfig::quiet(7)
            .with_resets(0.1)
            .with_corruption(0.2)
            .with_stalls(0.3, Duration::from_millis(1))
            .with_partial_writes(0.4)
            .with_panic_on_request(5);
        assert!(config.any_network_faults());
        assert_eq!(config.seed, 7);
        assert_eq!(config.panic_on_request, Some(5));
    }

    #[test]
    fn scripted_panic_fires_exactly_once_on_the_nth_request() {
        let injector = ChaosInjector::new(
            ChaosConfig::quiet(1).with_panic_on_request(3),
            Telemetry::null(),
        );
        assert!(!injector.solve_request_panics()); // 1st
        assert!(!injector.solve_request_panics()); // 2nd
        assert!(injector.solve_request_panics()); // 3rd fires
        assert!(!injector.solve_request_panics()); // and never again
        assert_eq!(
            injector.events(),
            vec![ChaosEvent::ServerPanic { request: 3 }]
        );
    }

    #[test]
    fn splitmix_stream_is_deterministic_and_well_spread() {
        let draws = |seed: u64| {
            let mut state = splitmix64(seed);
            (0..64)
                .map(|_| {
                    let (next, draw) = splitmix64_step(state);
                    state = next;
                    draw
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(99), draws(99), "same seed, same schedule");
        assert_ne!(draws(99), draws(100));
        // Uniform-ish: rolls derived from the draws land in [0, 1).
        for d in draws(3) {
            let roll = (d >> 11) as f64 / (1u64 << 53) as f64;
            assert!((0.0..1.0).contains(&roll));
        }
    }

    #[test]
    fn per_connection_schedules_differ() {
        assert_ne!(mix(0), mix(1));
        assert_ne!(42 ^ mix(0), 42 ^ mix(1));
    }
}
