//! A client that survives the faults [`chaos`](crate::chaos) injects.
//!
//! [`ResilientClient`] wraps the wire protocol with the standard resilience
//! stack:
//!
//! - **per-attempt timeouts** — connect and I/O are both bounded, so a
//!   black-holed server costs one timeout, not a hung client;
//! - **bounded retries with decorrelated-jitter backoff** — transient
//!   transport faults (resets, corrupt frames caught by the checksum,
//!   timeouts) are retried up to a budget, sleeping
//!   `min(max, uniform(base, 3·prev))` between attempts;
//! - **idempotency keys** — every solve carries a unique nonzero key, so a
//!   retry of a request whose response was lost *after* the server
//!   committed returns the cached bit-identical result instead of
//!   recomputing (and instead of silently solving twice);
//! - **a circuit breaker** — consecutive transport failures open the
//!   circuit; while open, attempts wait out the cooldown instead of
//!   hammering a dead server, then a half-open probe decides between
//!   closing and re-opening.
//!
//! Server-side *answers* are classified, not retried blindly: backpressure
//! (`QueueFull`) retries with backoff but does **not** count against the
//! breaker (the server is alive and talking); terminal outcomes
//! (invalid request, deadline exceeded, cancellation, solver failure,
//! shutdown) surface immediately.
//!
//! Everything the client does is observable through `service.retry.*` and
//! `service.breaker.*` telemetry. With [`ResilientConfig::tracing`] on (the
//! default) every solve additionally mints a [`TraceContext`] that rides the
//! v3 wire frames, and — when a [`Tracer`] is attached — records
//! `client.request` / `client.attempt` / `client.backoff` spans. A peer that
//! rejects v3 frames downgrades the client to v2 transparently (tracing
//! falls away; results stay bit-identical).

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use chambolle_core::ChambolleParams;
use chambolle_imaging::Grid;
use chambolle_telemetry::trace::{SpanRecord, TraceContext, Tracer};
use chambolle_telemetry::{names, Telemetry};

use crate::net::connect_stream;
use crate::request::{Priority, ResponseTier};
use crate::service::HealthSnapshot;
use crate::wire::{
    decode_response, encode_denoise_request, encode_health_request, encode_metrics_request,
    read_frame, write_frame, ErrorCode, WireResponse, WIRE_VERSION, WIRE_VERSION_V2,
};

/// Retry budget and backoff shape.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included). Minimum 1.
    pub max_attempts: u32,
    /// Backoff floor (also the first sleep's lower bound).
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// 5 attempts, 10 ms floor, 1 s ceiling.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Consecutive transport failures that open the circuit.
    pub failure_threshold: u32,
    /// How long an open circuit rests before a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    /// Open after 3 consecutive failures, probe after 250 ms.
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// Full configuration of a [`ResilientClient`].
#[derive(Debug, Clone, Copy)]
pub struct ResilientConfig {
    /// Bound on connection establishment per attempt.
    pub connect_timeout: Duration,
    /// Bound on each read/write; must cover the service's solve time.
    pub io_timeout: Duration,
    /// Retry budget and backoff shape.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerPolicy,
    /// Seed of the backoff jitter stream (deterministic tests pin it). Only
    /// backoff timing depends on it; idempotency keys are minted from
    /// per-client entropy so concurrent clients never collide.
    pub jitter_seed: u64,
    /// Whether solves mint and propagate a [`TraceContext`] (v3 frames
    /// only; a v2-downgraded client sends untraced frames regardless).
    pub tracing: bool,
}

impl Default for ResilientConfig {
    /// 5 s connect, 10 s I/O, default retry and breaker policies.
    fn default() -> Self {
        ResilientConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(10),
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            jitter_seed: 0x5EED,
            tracing: true,
        }
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: attempts wait out the cooldown.
    Open,
    /// Probing: one request decides between Closed and Open.
    HalfOpen,
}

impl BreakerState {
    fn gauge(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

/// Why a [`ResilientClient`] call ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// The service answered with a terminal outcome; retrying would not
    /// change it.
    Terminal {
        /// Whether the request was rejected at admission (vs failed after).
        rejected: bool,
        /// Stable error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The retry budget ran out on transient faults.
    Exhausted {
        /// Attempts actually made.
        attempts: u32,
        /// Description of the last transient fault.
        last_error: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Terminal { code, message, .. } => {
                write!(f, "terminal service error ({code:?}): {message}")
            }
            ClientError::Exhausted {
                attempts,
                last_error,
            } => write!(
                f,
                "retries exhausted after {attempts} attempts: {last_error}"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

/// A successful solve plus how hard the client had to work for it.
#[derive(Debug, Clone)]
pub struct DenoiseOutcome {
    /// The denoised image, bit-identical to a fault-free solve.
    pub output: Grid<f32>,
    /// Fidelity tier the service answered at.
    pub tier: ResponseTier,
    /// Attempts used (1 = clean first try).
    pub attempts: u32,
    /// Whether any retry was needed.
    pub recovered: bool,
    /// The trace context this request carried on the wire
    /// ([`TraceContext::NONE`] when tracing was off or downgraded to v2).
    pub trace: TraceContext,
}

/// Running totals of the client's resilience machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilientStats {
    /// Requests that returned (successfully or terminally).
    pub requests: u64,
    /// Total attempts across all requests.
    pub attempts: u64,
    /// Retries (attempts beyond each request's first).
    pub retries: u64,
    /// Requests that succeeded after at least one retry.
    pub recovered: u64,
    /// Requests that ran out of retry budget.
    pub exhausted: u64,
    /// Times the breaker opened.
    pub breaker_opened: u64,
}

struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    policy: BreakerPolicy,
}

impl Breaker {
    fn new(policy: BreakerPolicy) -> Self {
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            policy,
        }
    }

    /// Time left before an open circuit may half-open; zero when not open.
    fn cooldown_remaining(&self, now: Instant) -> Duration {
        match (self.state, self.opened_at) {
            (BreakerState::Open, Some(at)) => self
                .policy
                .cooldown
                .saturating_sub(now.saturating_duration_since(at)),
            _ => Duration::ZERO,
        }
    }
}

/// The retrying, breaker-guarded wire client. See the module docs.
pub struct ResilientClient {
    addrs: Vec<SocketAddr>,
    config: ResilientConfig,
    conn: Option<TcpStream>,
    next_id: u64,
    key_state: u64,
    rng: u64,
    prev_backoff: Duration,
    breaker: Breaker,
    stats: ResilientStats,
    telemetry: Telemetry,
    /// Wire version spoken right now; starts at v3, drops to v2 once a
    /// peer rejects a v3 frame as unsupported, and stays there.
    version: u8,
    trace_state: u64,
    tracer: Tracer,
    epoch: Instant,
}

impl ResilientClient {
    /// Connects with the default [`ResilientConfig`].
    ///
    /// # Errors
    ///
    /// Address resolution or connection I/O errors (the initial connect is
    /// eager so a bad address fails fast).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        ResilientClient::connect_with(addr, ResilientConfig::default())
    }

    /// Connects with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Address resolution or connection I/O errors.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ResilientConfig) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        }
        let mut client = ResilientClient {
            addrs,
            config,
            conn: None,
            next_id: 1,
            // Keys must be nonzero, unique per logical request, and distinct
            // across clients sharing one server's idempotency cache — the
            // jitter seed deliberately plays no part (two default-configured
            // clients would mint identical key streams and silently read
            // each other's cached results).
            key_state: entropy_seed(),
            rng: config.jitter_seed,
            prev_backoff: config.retry.base_backoff,
            breaker: Breaker::new(config.breaker),
            stats: ResilientStats::default(),
            telemetry: Telemetry::disabled(),
            version: WIRE_VERSION,
            trace_state: entropy_seed(),
            tracer: Tracer::disabled(),
            epoch: Instant::now(),
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Records `service.retry.*` / `service.breaker.*` metrics into
    /// `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self.telemetry
            .gauge_set(names::SERVICE_BREAKER_STATE, self.breaker.state.gauge());
        self
    }

    /// Records `client.*` spans into `tracer`. Span start timestamps are
    /// microseconds since `epoch` — pass the epoch of whoever owns the
    /// tracer (e.g. the service handle's) so merged client/server traces
    /// share one clock.
    pub fn with_tracer(mut self, tracer: Tracer, epoch: Instant) -> Self {
        self.tracer = tracer;
        self.epoch = epoch;
        self
    }

    /// The client-side tracer (disabled unless attached).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The wire version currently spoken (v3 until a peer forces v2).
    pub fn wire_version(&self) -> u8 {
        self.version
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state
    }

    /// Running resilience totals.
    pub fn stats(&self) -> ResilientStats {
        self.stats
    }

    /// One denoise, retried across transient faults until it succeeds, hits
    /// a terminal service outcome, or exhausts the retry budget.
    ///
    /// Every attempt of one call carries the same idempotency key, so a
    /// retry of a solve that committed server-side returns the cached
    /// bit-identical result.
    ///
    /// # Errors
    ///
    /// [`ClientError::Terminal`] for service outcomes retrying cannot fix;
    /// [`ClientError::Exhausted`] when the budget runs out.
    pub fn denoise(
        &mut self,
        input: &Grid<f32>,
        params: &ChambolleParams,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<DenoiseOutcome, ClientError> {
        let key = self.mint_key();
        let id = self.next_id;
        self.next_id += 1;
        let trace = self.mint_trace();
        let request_start_us = self.now_us();

        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut attempts = 0u32;
        let mut first_failure: Option<Instant> = None;
        let mut last_error;
        self.prev_backoff = self.config.retry.base_backoff;
        loop {
            attempts += 1;
            self.stats.attempts += 1;
            if attempts > 1 {
                self.stats.retries += 1;
                self.telemetry.counter_add(names::SERVICE_RETRY_ATTEMPTS, 1);
            }
            self.wait_for_breaker();
            // Encoded per attempt: a mid-request downgrade to v2 re-frames
            // the very next try.
            let payload = encode_denoise_request(
                self.version,
                id,
                key,
                trace,
                priority,
                deadline,
                params,
                input,
            );
            let attempt_start_us = self.now_us();
            let outcome = self.attempt(&payload, id);
            self.record_attempt_span(trace, attempts, attempt_start_us, outcome.label());
            match outcome {
                Attempt::Ok { tier, output } => {
                    self.breaker_success();
                    self.stats.requests += 1;
                    let recovered = attempts > 1;
                    if recovered {
                        self.stats.recovered += 1;
                        self.telemetry
                            .counter_add(names::SERVICE_RETRY_RECOVERED, 1);
                        if let Some(at) = first_failure {
                            self.telemetry.observe(
                                names::SERVICE_RETRY_RECOVERY_US,
                                at.elapsed().as_micros() as f64,
                            );
                        }
                    }
                    self.finish_request_span(trace, request_start_us, attempts, "ok");
                    return Ok(DenoiseOutcome {
                        output,
                        tier,
                        attempts,
                        recovered,
                        trace,
                    });
                }
                Attempt::Terminal {
                    rejected,
                    code,
                    message,
                } => {
                    // The server answered; the transport is healthy even
                    // though the outcome is bad.
                    self.breaker_success();
                    self.stats.requests += 1;
                    self.finish_request_span(trace, request_start_us, attempts, "terminal");
                    return Err(ClientError::Terminal {
                        rejected,
                        code,
                        message,
                    });
                }
                Attempt::Backpressure { message } => {
                    // Alive but overloaded: retry with backoff, but don't
                    // count it against the breaker.
                    self.breaker_success();
                    first_failure.get_or_insert_with(Instant::now);
                    last_error = message;
                }
                Attempt::Downgrade { message } => {
                    // The peer speaks an older protocol. Drop to v2 and
                    // retry immediately — the server is healthy (it parsed
                    // enough to answer), so no breaker hit and no backoff.
                    self.breaker_success();
                    self.version = WIRE_VERSION_V2;
                    last_error = message;
                    if attempts < max_attempts {
                        continue;
                    }
                }
                Attempt::Transport { message } => {
                    self.breaker_failure();
                    self.conn = None;
                    first_failure.get_or_insert_with(Instant::now);
                    last_error = message;
                }
            }
            if attempts >= max_attempts {
                self.stats.requests += 1;
                self.stats.exhausted += 1;
                self.telemetry
                    .counter_add(names::SERVICE_RETRY_EXHAUSTED, 1);
                self.finish_request_span(trace, request_start_us, attempts, "exhausted");
                return Err(ClientError::Exhausted {
                    attempts,
                    last_error,
                });
            }
            self.backoff_sleep(trace);
        }
    }

    /// One health probe over the resilient transport (single attempt — a
    /// probe should report the truth *now*, not a retried approximation).
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` on a non-health answer.
    pub fn health(&mut self) -> io::Result<HealthSnapshot> {
        let id = self.next_id;
        self.next_id += 1;
        self.ensure_connected()?;
        let payload = encode_health_request(self.version, id, TraceContext::NONE);
        let result = (|| {
            let stream = self.conn.as_mut().expect("just connected");
            write_frame(stream, &payload)?;
            let frame =
                read_frame(stream)?.ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
            decode_response(&frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        })();
        match result {
            Ok(WireResponse::Health { health, .. }) => Ok(health),
            Ok(other) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a health report, got {other:?}"),
            )),
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    /// One metrics-snapshot probe over the resilient transport (single
    /// attempt, like [`ResilientClient::health`]): the raw snapshot JSON
    /// document (schema [`crate::METRICS_SNAPSHOT_SCHEMA`]).
    ///
    /// # Errors
    ///
    /// Transport errors, `Unsupported` after a v2 downgrade (old servers
    /// have no metrics plane), or `InvalidData` on a non-metrics answer.
    pub fn metrics(&mut self) -> io::Result<String> {
        if self.version < WIRE_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "metrics snapshots require wire v3",
            ));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.ensure_connected()?;
        let payload = encode_metrics_request(id, TraceContext::NONE);
        let result = (|| {
            let stream = self.conn.as_mut().expect("just connected");
            write_frame(stream, &payload)?;
            let frame =
                read_frame(stream)?.ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
            decode_response(&frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        })();
        match result {
            Ok(WireResponse::Metrics { snapshot, .. }) => Ok(snapshot),
            Ok(other) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a metrics snapshot, got {other:?}"),
            )),
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    fn ensure_connected(&mut self) -> io::Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let stream = connect_stream(&self.addrs[..], self.config.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        self.conn = Some(stream);
        Ok(())
    }

    fn attempt(&mut self, payload: &[u8], expected_id: u64) -> Attempt {
        if let Err(e) = self.ensure_connected() {
            return Attempt::Transport {
                message: format!("connect: {e}"),
            };
        }
        let stream = self.conn.as_mut().expect("just connected");
        if let Err(e) = write_frame(stream, payload) {
            return Attempt::Transport {
                message: format!("write: {e}"),
            };
        }
        let frame = match read_frame(stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                return Attempt::Transport {
                    message: "connection closed before the response".into(),
                }
            }
            Err(e) => {
                return Attempt::Transport {
                    message: format!("read: {e}"),
                }
            }
        };
        match decode_response(&frame) {
            Ok(WireResponse::Ok {
                id, tier, output, ..
            }) if id == expected_id => Attempt::Ok { tier, output },
            Ok(WireResponse::Err {
                id,
                rejected,
                code,
                message,
                ..
            }) if id == expected_id || id == 0 => match code {
                // Backpressure and a server that couldn't even parse the
                // request (it was corrupted in flight) are retryable.
                ErrorCode::QueueFull => Attempt::Backpressure { message },
                ErrorCode::Protocol
                    if self.version > WIRE_VERSION_V2
                        && message.contains("unsupported wire version") =>
                {
                    Attempt::Downgrade { message }
                }
                ErrorCode::Protocol => Attempt::Transport {
                    message: format!("server rejected the frame: {message}"),
                },
                _ => Attempt::Terminal {
                    rejected,
                    code,
                    message,
                },
            },
            Ok(other) => {
                // An id from a different request (or an unexpected health
                // frame) means the stream's framing is no longer trustworthy.
                Attempt::Transport {
                    message: format!("response out of sync: {other:?}"),
                }
            }
            Err(e) => Attempt::Transport {
                message: format!("decode: {e}"),
            },
        }
    }

    /// Sleeps out whatever remains of an open breaker's cooldown, then
    /// transitions to half-open so the next attempt is the probe.
    fn wait_for_breaker(&mut self) {
        if self.breaker.state != BreakerState::Open {
            return;
        }
        let remaining = self.breaker.cooldown_remaining(Instant::now());
        if !remaining.is_zero() {
            std::thread::sleep(remaining);
        }
        self.set_breaker(BreakerState::HalfOpen);
        self.telemetry
            .counter_add(names::SERVICE_BREAKER_HALF_OPEN, 1);
    }

    fn breaker_success(&mut self) {
        self.breaker.consecutive_failures = 0;
        if self.breaker.state != BreakerState::Closed {
            self.set_breaker(BreakerState::Closed);
            self.breaker.opened_at = None;
            self.telemetry.counter_add(names::SERVICE_BREAKER_CLOSED, 1);
        }
    }

    fn breaker_failure(&mut self) {
        self.breaker.consecutive_failures += 1;
        let should_open = match self.breaker.state {
            // A failed half-open probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => {
                self.breaker.consecutive_failures >= self.breaker.policy.failure_threshold
            }
            BreakerState::Open => false,
        };
        if should_open {
            self.set_breaker(BreakerState::Open);
            self.breaker.opened_at = Some(Instant::now());
            self.stats.breaker_opened += 1;
            self.telemetry.counter_add(names::SERVICE_BREAKER_OPENED, 1);
        }
    }

    fn set_breaker(&mut self, state: BreakerState) {
        self.breaker.state = state;
        self.telemetry
            .gauge_set(names::SERVICE_BREAKER_STATE, state.gauge());
    }

    /// Decorrelated jitter: `sleep = min(max, uniform(base, 3·prev))`.
    fn backoff_sleep(&mut self, trace: TraceContext) {
        let base = self.config.retry.base_backoff;
        let ceiling = self.config.retry.max_backoff;
        let upper = (self.prev_backoff * 3).min(ceiling).max(base);
        let span = upper.saturating_sub(base);
        let sleep = if span.is_zero() {
            base
        } else {
            base + Duration::from_nanos(self.next_u64() % (span.as_nanos() as u64 + 1))
        };
        self.prev_backoff = sleep;
        let start_us = self.now_us();
        std::thread::sleep(sleep);
        if trace.is_active() && self.tracer.is_enabled() {
            let span_id = self.mint_span_id();
            let dur_us = self.now_us().saturating_sub(start_us);
            self.tracer.record_span(SpanRecord {
                trace_id: trace.trace_id,
                span_id,
                parent_span_id: trace.span_id,
                name: "client.backoff".into(),
                start_us,
                dur_us,
                attrs: Vec::new(),
            });
        }
    }

    fn next_u64(&mut self) -> u64 {
        splitmix_next(&mut self.rng)
    }

    /// Mints a nonzero idempotency key. SplitMix64 is a bijection over its
    /// counter, so one client never repeats a key within 2^64 requests;
    /// cross-client uniqueness rests on the entropy-seeded starting state.
    fn mint_key(&mut self) -> u64 {
        loop {
            let key = splitmix_next(&mut self.key_state);
            if key != 0 {
                return key;
            }
        }
    }

    /// Mints the trace context for the next request, or
    /// [`TraceContext::NONE`] when tracing is off or the client downgraded
    /// to v2 (nowhere to carry it).
    fn mint_trace(&mut self) -> TraceContext {
        if self.config.tracing && self.version >= WIRE_VERSION {
            TraceContext::mint(&mut self.trace_state)
        } else {
            TraceContext::NONE
        }
    }

    fn mint_span_id(&mut self) -> u64 {
        loop {
            let id = splitmix_next(&mut self.trace_state);
            if id != 0 {
                return id;
            }
        }
    }

    /// Microseconds since the tracer epoch.
    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records one `client.attempt` span under the request root.
    fn record_attempt_span(
        &mut self,
        trace: TraceContext,
        attempt: u32,
        start_us: u64,
        outcome: &'static str,
    ) {
        if !trace.is_active() || !self.tracer.is_enabled() {
            return;
        }
        let span_id = self.mint_span_id();
        let dur_us = self.now_us().saturating_sub(start_us);
        self.tracer.record_span(SpanRecord {
            trace_id: trace.trace_id,
            span_id,
            parent_span_id: trace.span_id,
            name: "client.attempt".into(),
            start_us,
            dur_us,
            attrs: vec![
                ("attempt".into(), attempt.into()),
                ("outcome".into(), outcome.into()),
            ],
        });
    }

    /// Records the `client.request` root span and moves the finished trace
    /// into the ring.
    fn finish_request_span(
        &mut self,
        trace: TraceContext,
        start_us: u64,
        attempts: u32,
        outcome: &'static str,
    ) {
        if !trace.is_active() || !self.tracer.is_enabled() {
            return;
        }
        self.tracer.record_span(SpanRecord {
            trace_id: trace.trace_id,
            span_id: trace.span_id,
            parent_span_id: 0,
            name: "client.request".into(),
            start_us,
            dur_us: self.now_us().saturating_sub(start_us),
            attrs: vec![
                ("attempts".into(), attempts.into()),
                ("outcome".into(), outcome.into()),
            ],
        });
        self.tracer.finish(trace.trace_id);
    }
}

/// SplitMix64 step, same generator the chaos injector uses.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-client entropy for the idempotency-key stream: wall clock, process
/// id, a process-wide counter (clients created in the same nanosecond), and
/// an ASLR-perturbed stack address, whitened through SplitMix64. No
/// dependency on any configured seed — key uniqueness must hold even when
/// every client runs the same config.
pub(crate) fn entropy_seed() -> u64 {
    use std::sync::atomic::AtomicU64;
    static CLIENT_SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let seq = CLIENT_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let stack_probe = 0u8;
    let mut state = nanos
        ^ (u64::from(std::process::id()) << 32)
        ^ seq.rotate_left(17)
        ^ (std::ptr::addr_of!(stack_probe) as u64).rotate_left(47);
    splitmix_next(&mut state)
}

impl std::fmt::Debug for ResilientClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientClient")
            .field("addrs", &self.addrs)
            .field("breaker", &self.breaker.state)
            .field("stats", &self.stats)
            .finish()
    }
}

/// Outcome classification of one attempt.
enum Attempt {
    /// A valid success response for our request id.
    Ok {
        tier: ResponseTier,
        output: Grid<f32>,
    },
    /// A service answer retrying cannot change.
    Terminal {
        rejected: bool,
        code: ErrorCode,
        message: String,
    },
    /// The server is alive but shedding (queue full): retry, no breaker hit.
    Backpressure { message: String },
    /// The peer rejected the frame's protocol version: drop to v2 and retry
    /// immediately (no breaker hit, no backoff).
    Downgrade { message: String },
    /// The transport failed (reset, corruption, timeout, desync): retry and
    /// count against the breaker.
    Transport { message: String },
}

impl Attempt {
    /// Stable label for span attributes.
    fn label(&self) -> &'static str {
        match self {
            Attempt::Ok { .. } => "ok",
            Attempt::Terminal { .. } => "terminal",
            Attempt::Backpressure { .. } => "backpressure",
            Attempt::Downgrade { .. } => "downgrade",
            Attempt::Transport { .. } => "transport",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = ResilientConfig::default();
        assert!(config.retry.max_attempts >= 3);
        assert!(config.breaker.failure_threshold >= 1);
        assert!(config.connect_timeout > Duration::ZERO);
        assert!(config.io_timeout >= config.connect_timeout);
        assert!(config.retry.base_backoff <= config.retry.max_backoff);
    }

    #[test]
    fn breaker_opens_after_threshold_and_cools_down() {
        let policy = BreakerPolicy {
            failure_threshold: 2,
            cooldown: Duration::from_millis(50),
        };
        let mut b = Breaker::new(policy);
        assert_eq!(b.state, BreakerState::Closed);
        b.consecutive_failures = 1;
        assert!(b.consecutive_failures < policy.failure_threshold);
        b.state = BreakerState::Open;
        b.opened_at = Some(Instant::now());
        let remaining = b.cooldown_remaining(Instant::now());
        assert!(remaining <= Duration::from_millis(50));
        let later = Instant::now() + Duration::from_millis(60);
        assert_eq!(b.cooldown_remaining(later), Duration::ZERO);
    }

    #[test]
    fn breaker_gauge_values_are_ordered() {
        assert!(BreakerState::Closed.gauge() < BreakerState::HalfOpen.gauge());
        assert!(BreakerState::HalfOpen.gauge() < BreakerState::Open.gauge());
    }

    #[test]
    fn client_errors_format_usefully() {
        let t = ClientError::Terminal {
            rejected: true,
            code: ErrorCode::Invalid,
            message: "bad theta".into(),
        };
        assert!(t.to_string().contains("bad theta"));
        let e = ClientError::Exhausted {
            attempts: 5,
            last_error: "read: reset".into(),
        };
        assert!(e.to_string().contains("5 attempts"));
        assert!(e.to_string().contains("reset"));
    }

    #[test]
    fn entropy_seeds_differ_per_client() {
        // The process-wide sequence counter alone must separate clients
        // created in the same nanosecond of the same process.
        let seeds: Vec<u64> = (0..64).map(|_| entropy_seed()).collect();
        let distinct: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), seeds.len(), "entropy seeds collided");
    }

    #[test]
    fn minted_keys_are_nonzero_and_unique() {
        let mut state = 0u64; // worst-case start: zero state
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let key = loop {
                let k = splitmix_next(&mut state);
                if k != 0 {
                    break k;
                }
            };
            assert!(seen.insert(key), "duplicate idempotency key {key:#x}");
        }
    }

    #[test]
    fn keys_do_not_depend_on_the_jitter_seed() {
        // Two clients with identical configs (same jitter seed) must still
        // mint disjoint key streams — the regression this guards against
        // served one client the other's cached pixels.
        let mut a = entropy_seed();
        let mut b = entropy_seed();
        let stream_a: Vec<u64> = (0..32).map(|_| splitmix_next(&mut a)).collect();
        let stream_b: Vec<u64> = (0..32).map(|_| splitmix_next(&mut b)).collect();
        assert_ne!(stream_a, stream_b);
    }

    #[test]
    fn connecting_to_a_dead_port_fails_fast() {
        // Bind-then-drop guarantees a port with no listener.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let config = ResilientConfig {
            connect_timeout: Duration::from_millis(200),
            ..ResilientConfig::default()
        };
        let start = Instant::now();
        let result = ResilientClient::connect_with(dead, config);
        assert!(result.is_err());
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "connect must fail fast, took {:?}",
            start.elapsed()
        );
    }
}
