//! Framed localhost TCP front-end over `std::net`.
//!
//! [`TcpServer`] accepts connections on a listener thread and speaks the
//! [`wire`](crate::wire) protocol: each connection thread decodes request
//! frames, submits them through a shared [`ServiceHandle`], and writes one
//! response frame per request in request order. All threads poll a stop flag
//! (the listener via non-blocking accept, connections via read timeouts), so
//! [`TcpServer::shutdown`] converges without help from the peers.
//!
//! [`ServiceClient`] is the matching blocking client used by the examples,
//! the e2e tests, and external tooling.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use chambolle_core::ChambolleParams;
use chambolle_imaging::Grid;

use crate::request::Priority;
use crate::service::ServiceHandle;
use crate::wire::{
    decode_request, decode_response, encode_denoise_request, encode_err_response,
    encode_ok_response, read_frame, reject_code, service_error_code, write_frame, ErrorCode,
    WireResponse,
};

/// How often blocked I/O wakes up to poll the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The TCP front-end: a listener thread plus one thread per live connection.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving requests against `handle`.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn bind<A: ToSocketAddrs>(handle: ServiceHandle, addr: A) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("chambolle-service-accept".into())
            .spawn(move || accept_loop(&listener, &handle, &stop_accept))?;
        Ok(TcpServer {
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves the actual port of an ephemeral bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for in-flight connections to finish their
    /// current request/response exchanges, and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        if let Ok(connections) = acceptor.join() {
            for conn in connections {
                let _ = conn.join();
            }
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

fn accept_loop(
    listener: &TcpListener,
    handle: &ServiceHandle,
    stop: &Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    let mut connections = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let handle = handle.clone();
                let stop = Arc::clone(stop);
                if let Ok(join) = std::thread::Builder::new()
                    .name("chambolle-service-conn".into())
                    .spawn(move || serve_connection(stream, &handle, &stop))
                {
                    connections.push(join);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
    connections
}

fn serve_connection(mut stream: TcpStream, handle: &ServiceHandle, stop: &Arc<AtomicBool>) {
    // Read with a timeout so the thread notices the stop flag even while a
    // peer sits idle mid-connection.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_frame_interruptible(&mut stream, stop) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF or shutdown
            Err(_) => return,
        };
        let response = match decode_request(&payload) {
            Ok(wire_request) => {
                let client_id = wire_request.id;
                match handle.submit(wire_request.request) {
                    Ok(ticket) => match ticket.wait() {
                        Ok(completed) => match completed.output.as_denoised() {
                            Some(grid) => encode_ok_response(client_id, grid),
                            None => encode_err_response(
                                client_id,
                                false,
                                ErrorCode::Protocol,
                                "non-denoise output for a denoise request",
                            ),
                        },
                        Err(err) => encode_err_response(
                            client_id,
                            false,
                            service_error_code(&err),
                            &err.to_string(),
                        ),
                    },
                    Err(reason) => encode_err_response(
                        client_id,
                        true,
                        reject_code(&reason),
                        &reason.to_string(),
                    ),
                }
            }
            Err(protocol_err) => encode_err_response(0, true, ErrorCode::Protocol, &protocol_err),
        };
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Like [`read_frame`], but read timeouts loop back to a stop-flag check
/// instead of failing, so a blocked read converges during shutdown.
/// `Ok(None)` means clean EOF or shutdown-before-a-frame-started.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    stop: &Arc<AtomicBool>,
) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    if !read_exact_interruptible(stream, &mut prefix, stop, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > crate::wire::MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    // Once a frame has started, finish it even if shutdown begins: the
    // response for an accepted request must still go out.
    if !read_exact_interruptible(stream, &mut payload, stop, false)? {
        return Err(io::ErrorKind::UnexpectedEof.into());
    }
    Ok(Some(payload))
}

/// Fills `buf`, retrying across read timeouts. Returns `Ok(false)` on clean
/// EOF before any byte, or when `interruptible` and the stop flag rises
/// between bytes of nothing.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &Arc<AtomicBool>,
    interruptible: bool,
) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if interruptible && filled == 0 && stop.load(Ordering::Acquire) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Blocking client for the framed protocol.
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
    next_id: u64,
}

impl ServiceClient {
    /// Connects to a [`TcpServer`].
    ///
    /// # Errors
    ///
    /// Connection I/O errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServiceClient { stream, next_id: 1 })
    }

    /// One blocking denoise round-trip.
    ///
    /// # Errors
    ///
    /// Transport errors as `io::Error`; service-level rejections/failures
    /// come back as the `WireResponse::Err` variant.
    pub fn denoise(
        &mut self,
        input: &Grid<f32>,
        params: &ChambolleParams,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> io::Result<WireResponse> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = encode_denoise_request(id, priority, deadline, params, input);
        write_frame(&mut self.stream, &payload)?;
        let response = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
        decode_response(&response).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}
