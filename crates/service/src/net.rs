//! Framed localhost TCP front-end over `std::net`.
//!
//! [`TcpServer`] accepts connections on a listener thread and speaks the
//! [`wire`](crate::wire) protocol: each connection thread decodes request
//! frames, submits them through a shared [`ServiceHandle`], and writes one
//! response frame per request in request order. All threads poll a stop flag
//! (the listener via non-blocking accept, connections via read timeouts), so
//! [`TcpServer::shutdown`] converges without help from the peers.
//!
//! Two serving-side features make the front-end chaos-tolerant:
//!
//! - [`TcpServer::bind_with_chaos`] splices a deterministic
//!   [`ChaosInjector`](crate::chaos::ChaosInjector) into every accepted
//!   connection's byte stream, for fault-injection tests and soak runs;
//! - a bounded server-side **idempotency cache** keyed by the request's
//!   idempotency key: a retried solve that already committed returns the
//!   cached bit-identical result instead of recomputing, so a client whose
//!   response frame was lost (reset, partial write, scripted server panic)
//!   can safely retry.
//!
//! [`ServiceClient`] is the matching plain blocking client used by the
//! examples, the e2e tests, and external tooling;
//! [`ResilientClient`](crate::ResilientClient) layers retries, backoff, and
//! a circuit breaker on top of the same wire calls.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::catch_unwind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use chambolle_core::ChambolleParams;
use chambolle_imaging::Grid;
use chambolle_telemetry::names;
use chambolle_telemetry::trace::{SpanRecord, TraceContext};

use crate::chaos::{ChaosConfig, ChaosInjector, ChaosStream};
use crate::request::{Priority, ResponseTier};
use crate::resilient::entropy_seed;
use crate::service::{HealthSnapshot, ServiceHandle};
use crate::wire::{
    decode_request, decode_response, encode_denoise_request, encode_err_response,
    encode_health_request, encode_health_response, encode_metrics_request, encode_metrics_response,
    encode_ok_response, read_frame, reject_code, service_error_code, validate_frame_len,
    verify_frame_checksum, write_frame, ErrorCode, WireRequest, WireResponse, FRAME_HEADER,
    WIRE_VERSION, WIRE_VERSION_V2,
};

/// How often blocked I/O wakes up to poll the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Default [`ServiceClient::connect`] timeout.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Entries the per-server idempotency cache retains (FIFO eviction).
const IDEMPOTENCY_CAPACITY: usize = 256;

/// The byte stream a connection thread serves: a plain `TcpStream` or a
/// chaos-wrapped one. Only the socket knobs the serving loop needs.
trait Transport: Read + Write + Send {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
    fn set_nodelay(&self, on: bool) -> io::Result<()>;
    fn shutdown_both(&self);
}

impl Transport for TcpStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }

    fn set_nodelay(&self, on: bool) -> io::Result<()> {
        TcpStream::set_nodelay(self, on)
    }

    fn shutdown_both(&self) {
        let _ = TcpStream::shutdown(self, Shutdown::Both);
    }
}

impl Transport for ChaosStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner().set_read_timeout(dur)
    }

    fn set_nodelay(&self, on: bool) -> io::Result<()> {
        self.inner().set_nodelay(on)
    }

    fn shutdown_both(&self) {
        let _ = self.inner().shutdown(Shutdown::Both);
    }
}

/// Bounded FIFO cache of committed solve results, keyed by idempotency key.
///
/// Shared across every connection of one server, so a retry arriving on a
/// *new* connection (the old one was reset) still finds the committed
/// result.
struct IdempotencyCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

struct CacheInner {
    map: HashMap<u64, (ResponseTier, Grid<f32>)>,
    order: VecDeque<u64>,
}

impl IdempotencyCache {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(IdempotencyCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity,
        })
    }

    fn get(&self, key: u64) -> Option<(ResponseTier, Grid<f32>)> {
        self.inner
            .lock()
            .expect("idempotency cache poisoned")
            .map
            .get(&key)
            .cloned()
    }

    fn insert(&self, key: u64, tier: ResponseTier, grid: Grid<f32>) {
        let mut inner = self.inner.lock().expect("idempotency cache poisoned");
        if inner.map.insert(key, (tier, grid)).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > self.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.map.remove(&evicted);
                }
            }
        }
    }
}

/// The TCP front-end: a listener thread plus one thread per live connection.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    chaos: Option<Arc<ChaosInjector>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving requests against `handle`.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn bind<A: ToSocketAddrs>(handle: ServiceHandle, addr: A) -> io::Result<Self> {
        TcpServer::bind_inner(handle, addr, None)
    }

    /// Like [`TcpServer::bind`], but splices the deterministic fault
    /// schedule of `config` into every accepted connection. The injector is
    /// retrievable via [`TcpServer::chaos`] for event-log assertions.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn bind_with_chaos<A: ToSocketAddrs>(
        handle: ServiceHandle,
        addr: A,
        config: ChaosConfig,
    ) -> io::Result<Self> {
        let injector = ChaosInjector::new(config, handle.telemetry().clone());
        TcpServer::bind_inner(handle, addr, Some(injector))
    }

    fn bind_inner<A: ToSocketAddrs>(
        handle: ServiceHandle,
        addr: A,
        chaos: Option<Arc<ChaosInjector>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let chaos_accept = chaos.clone();
        let acceptor = std::thread::Builder::new()
            .name("chambolle-service-accept".into())
            .spawn(move || accept_loop(&listener, &handle, &stop_accept, chaos_accept))?;
        Ok(TcpServer {
            addr,
            stop,
            acceptor: Some(acceptor),
            chaos,
        })
    }

    /// The bound address (resolves the actual port of an ephemeral bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fault injector, when the server was started with
    /// [`TcpServer::bind_with_chaos`].
    pub fn chaos(&self) -> Option<&Arc<ChaosInjector>> {
        self.chaos.as_ref()
    }

    /// Stops accepting, waits for in-flight connections to finish their
    /// current request/response exchanges, and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        if let Ok(connections) = acceptor.join() {
            for conn in connections {
                let _ = conn.join();
            }
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("addr", &self.addr)
            .field("chaos", &self.chaos.is_some())
            .finish()
    }
}

fn accept_loop(
    listener: &TcpListener,
    handle: &ServiceHandle,
    stop: &Arc<AtomicBool>,
    chaos: Option<Arc<ChaosInjector>>,
) -> Vec<JoinHandle<()>> {
    let mut connections = Vec::new();
    let cache = IdempotencyCache::new(IDEMPOTENCY_CAPACITY);
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let handle = handle.clone();
                let stop = Arc::clone(stop);
                let cache = Arc::clone(&cache);
                let chaos = chaos.clone();
                if let Ok(join) = std::thread::Builder::new()
                    .name("chambolle-service-conn".into())
                    .spawn(move || match chaos {
                        Some(injector) => {
                            let wrapped = injector.wrap(stream);
                            serve_connection(wrapped, &handle, &stop, Some(&injector), &cache);
                        }
                        None => serve_connection(stream, &handle, &stop, None, &cache),
                    })
                {
                    connections.push(join);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Reap finished connection threads while idle so a
                // long-running server doesn't accumulate one JoinHandle per
                // connection ever accepted.
                reap_finished(&mut connections);
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
    connections
}

/// Joins (and drops) every connection handle whose thread has exited.
fn reap_finished(connections: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < connections.len() {
        if connections[i].is_finished() {
            let _ = connections.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn serve_connection<T: Transport>(
    mut stream: T,
    handle: &ServiceHandle,
    stop: &Arc<AtomicBool>,
    chaos: Option<&Arc<ChaosInjector>>,
    cache: &IdempotencyCache,
) {
    // Read with a timeout so the thread notices the stop flag even while a
    // peer sits idle mid-connection.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_frame_interruptible(&mut stream, stop) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF or shutdown
            Err(_) => return,
        };
        // Answer in the requester's protocol version: a v2 peer gets pure
        // v2 frames (no trace block, never a metrics status), so old
        // clients interoperate with tracing silently disabled.
        let peer_version = if payload.first() == Some(&WIRE_VERSION_V2) {
            WIRE_VERSION_V2
        } else {
            WIRE_VERSION
        };
        // Trace to finish (move into the ring) after the response write.
        let mut done_ctx = TraceContext::NONE;
        let response = match decode_request(&payload) {
            Ok(WireRequest::Health { id, trace }) => {
                encode_health_response(peer_version, id, trace, &handle.health())
            }
            Ok(WireRequest::Metrics { id, trace }) => {
                let snapshot = handle.metrics_snapshot().to_string();
                encode_metrics_response(id, trace, &snapshot)
            }
            Ok(WireRequest::Solve {
                id,
                idempotency,
                trace,
                request,
            }) => {
                let started_us = handle.now_us();
                // Server-side root context: a fresh span id under the
                // propagated trace id, so queue/batch/solve spans parent
                // under this request's "server.request" root. A retry of
                // the same logical request reuses the trace id, so its
                // spans accumulate into the same trace.
                let server_ctx = if trace.is_active() && handle.tracer().is_enabled() {
                    TraceContext {
                        trace_id: trace.trace_id,
                        span_id: handle.next_span_id(),
                        sampled: true,
                    }
                } else {
                    TraceContext::NONE
                };
                if idempotency != 0 {
                    if let Some((tier, cached)) = cache.get(idempotency) {
                        handle
                            .telemetry()
                            .counter_add(names::SERVICE_IDEMPOTENT_HITS, 1);
                        record_server_spans(handle, server_ctx, trace.span_id, started_us, true);
                        let frame = encode_ok_response(peer_version, id, trace, tier, &cached);
                        if write_frame(&mut stream, &frame).is_err() {
                            return;
                        }
                        finish_trace(handle, server_ctx);
                        continue;
                    }
                }
                // The scripted chaos panic is decided per *solve submission*
                // (cache hits above don't count), but fires only after the
                // solve commits — exactly the window idempotent retry exists
                // for.
                let crash_after_commit =
                    chaos.is_some_and(|injector| injector.solve_request_panics());
                let response = match handle.submit(request.with_trace(server_ctx)) {
                    Ok(ticket) => match ticket.wait() {
                        Ok(completed) => match completed.output.as_denoised() {
                            Some(grid) => {
                                if idempotency != 0 {
                                    cache.insert(idempotency, completed.tier, grid.clone());
                                }
                                encode_ok_response(peer_version, id, trace, completed.tier, grid)
                            }
                            None => encode_err_response(
                                peer_version,
                                id,
                                trace,
                                false,
                                ErrorCode::Protocol,
                                "non-denoise output for a denoise request",
                            ),
                        },
                        Err(err) => encode_err_response(
                            peer_version,
                            id,
                            trace,
                            false,
                            service_error_code(&err),
                            &err.to_string(),
                        ),
                    },
                    Err(reason) => encode_err_response(
                        peer_version,
                        id,
                        trace,
                        true,
                        reject_code(&reason),
                        &reason.to_string(),
                    ),
                };
                record_server_spans(handle, server_ctx, trace.span_id, started_us, false);
                if crash_after_commit {
                    // Simulate the serving thread dying between commit and
                    // response: the panic is contained, the connection is
                    // severed, and no response frame goes out. The client's
                    // retry hits the idempotency cache. The trace is left
                    // open on purpose — the retry finishes it, so one trace
                    // ends up covering both attempts.
                    let _ = catch_unwind(|| {
                        panic!("chaos: scripted server panic before response write")
                    });
                    stream.shutdown_both();
                    return;
                }
                done_ctx = server_ctx;
                response
            }
            Err(decode_err) => encode_err_response(
                peer_version,
                0,
                TraceContext::NONE,
                true,
                ErrorCode::Protocol,
                &decode_err.to_string(),
            ),
        };
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
        finish_trace(handle, done_ctx);
    }
}

/// Records the server-side root span of one wire request (plus, for an
/// idempotent cache hit, the nested `replay` span). The root parents at 0
/// so every server trace is a complete tree on its own; the client's wire
/// span id rides along as an attribute for cross-view joins.
fn record_server_spans(
    handle: &ServiceHandle,
    server_ctx: TraceContext,
    client_span_id: u64,
    started_us: u64,
    replay: bool,
) {
    if !server_ctx.is_active() {
        return;
    }
    let dur_us = handle.now_us().saturating_sub(started_us);
    if replay {
        handle.tracer().record_span(SpanRecord {
            trace_id: server_ctx.trace_id,
            span_id: handle.next_span_id(),
            parent_span_id: server_ctx.span_id,
            name: "replay".into(),
            start_us: started_us,
            dur_us,
            attrs: Vec::new(),
        });
    }
    handle.tracer().record_span(SpanRecord {
        trace_id: server_ctx.trace_id,
        span_id: server_ctx.span_id,
        parent_span_id: 0,
        name: "server.request".into(),
        start_us: started_us,
        dur_us,
        attrs: vec![
            (
                "client_span_id".into(),
                format!("{client_span_id:016x}").into(),
            ),
            ("replay".into(), replay.into()),
        ],
    });
    handle
        .telemetry()
        .counter_add(names::SERVICE_TRACE_SPANS, if replay { 2 } else { 1 });
}

/// Moves a finished request's spans into the tracer ring.
fn finish_trace(handle: &ServiceHandle, ctx: TraceContext) {
    if ctx.is_active() && handle.tracer().is_enabled() {
        handle.tracer().finish(ctx.trace_id);
        handle
            .telemetry()
            .counter_add(names::SERVICE_TRACE_FINISHED, 1);
    }
}

/// Like [`read_frame`], but read timeouts loop back to a stop-flag check
/// instead of failing, so a blocked read converges during shutdown — even a
/// read stalled *mid-frame* (a peer that sent a partial header or partial
/// payload then went silent must not pin the connection thread forever;
/// `TcpServer::shutdown` joins every one of them). Only requests that were
/// fully read — and therefore accepted — are protected through to their
/// response write; an unfinished frame is abandoned.
/// `Ok(None)` means clean EOF or shutdown-before-a-frame-started.
fn read_frame_interruptible<T: Transport>(
    stream: &mut T,
    stop: &Arc<AtomicBool>,
) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER];
    if !read_exact_interruptible(stream, &mut header, stop)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(header[4..].try_into().unwrap());
    validate_frame_len(len)?;
    let mut payload = vec![0u8; len];
    if !read_exact_interruptible(stream, &mut payload, stop)? {
        // EOF or shutdown mid-frame: nothing was accepted, drop the
        // connection.
        return Err(io::ErrorKind::UnexpectedEof.into());
    }
    verify_frame_checksum(&payload, checksum)?;
    Ok(Some(payload))
}

/// Fills `buf`, retrying across read timeouts. Returns `Ok(false)` on clean
/// EOF before any byte, or whenever the stop flag rises while the read is
/// stalled (including mid-buffer — shutdown must not wait on a silent peer).
fn read_exact_interruptible<T: Transport>(
    stream: &mut T,
    buf: &mut [u8],
    stop: &Arc<AtomicBool>,
) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Acquire) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Blocking client for the framed protocol.
///
/// One request in flight at a time, responses read in order. Connection
/// establishment is bounded by a connect timeout
/// ([`DEFAULT_CONNECT_TIMEOUT`] unless overridden) so a black-holed address
/// fails fast instead of hanging the caller.
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
    next_id: u64,
    version: u8,
    tracing: bool,
    trace_state: u64,
    last_trace: TraceContext,
}

impl ServiceClient {
    /// Connects to a [`TcpServer`] with the default connect timeout.
    ///
    /// # Errors
    ///
    /// Connection I/O errors, including `TimedOut` when no resolved address
    /// accepts within [`DEFAULT_CONNECT_TIMEOUT`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        ServiceClient::connect_with_timeout(addr, DEFAULT_CONNECT_TIMEOUT)
    }

    /// Connects with an explicit connect timeout, tried against each
    /// resolved address in turn.
    ///
    /// # Errors
    ///
    /// The last address's error when none accepts in time, or an
    /// `InvalidInput` error when `addr` resolves to nothing.
    pub fn connect_with_timeout<A: ToSocketAddrs>(addr: A, timeout: Duration) -> io::Result<Self> {
        let stream = connect_stream(addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(ServiceClient {
            stream,
            next_id: 1,
            version: WIRE_VERSION,
            tracing: true,
            trace_state: entropy_seed(),
            last_trace: TraceContext::NONE,
        })
    }

    /// Pins the wire protocol version used for every subsequent frame.
    ///
    /// Version 2 frames carry no trace block, so pinning v2 also disables
    /// trace minting — useful both for talking to old servers and for
    /// asserting the no-tracing bit-identity contract.
    ///
    /// # Panics
    ///
    /// Panics on a version this client cannot speak (only v2 and v3 exist).
    pub fn set_wire_version(&mut self, version: u8) {
        assert!(
            version == WIRE_VERSION || version == WIRE_VERSION_V2,
            "unsupported wire version {version}"
        );
        self.version = version;
    }

    /// Enables or disables per-request trace minting (on by default; only
    /// effective on v3 — v2 frames have nowhere to carry a trace).
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// The trace context minted for the most recent request
    /// ([`TraceContext::NONE`] when tracing was off for it).
    pub fn last_trace(&self) -> TraceContext {
        self.last_trace
    }

    /// Mints (or withholds) the trace context for the next request.
    fn mint_trace(&mut self) -> TraceContext {
        self.last_trace = if self.tracing && self.version >= WIRE_VERSION {
            TraceContext::mint(&mut self.trace_state)
        } else {
            TraceContext::NONE
        };
        self.last_trace
    }

    /// Sets a read/write timeout on the underlying stream (`None` blocks
    /// forever).
    ///
    /// # Errors
    ///
    /// Socket option errors.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// One blocking denoise round-trip (no idempotency key).
    ///
    /// # Errors
    ///
    /// Transport errors as `io::Error`; service-level rejections/failures
    /// come back as the `WireResponse::Err` variant.
    pub fn denoise(
        &mut self,
        input: &Grid<f32>,
        params: &ChambolleParams,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> io::Result<WireResponse> {
        self.denoise_idempotent(input, params, priority, deadline, 0)
    }

    /// One blocking denoise round-trip carrying an idempotency key
    /// (`0` = none). Retrying with the same nonzero key is safe: a solve
    /// that already committed server-side returns its cached bit-identical
    /// result.
    ///
    /// # Errors
    ///
    /// Transport errors as `io::Error`; service-level rejections/failures
    /// come back as the `WireResponse::Err` variant.
    pub fn denoise_idempotent(
        &mut self,
        input: &Grid<f32>,
        params: &ChambolleParams,
        priority: Priority,
        deadline: Option<Duration>,
        idempotency: u64,
    ) -> io::Result<WireResponse> {
        let id = self.next_id;
        self.next_id += 1;
        let trace = self.mint_trace();
        let payload = encode_denoise_request(
            self.version,
            id,
            idempotency,
            trace,
            priority,
            deadline,
            params,
            input,
        );
        self.round_trip(&payload)
    }

    /// One blocking health-probe round-trip.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` if the server answers with
    /// anything but a health report.
    pub fn health(&mut self) -> io::Result<HealthSnapshot> {
        let id = self.next_id;
        self.next_id += 1;
        let trace = self.mint_trace();
        match self.round_trip(&encode_health_request(self.version, id, trace))? {
            WireResponse::Health { health, .. } => Ok(health),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a health report, got {other:?}"),
            )),
        }
    }

    /// One blocking metrics-snapshot round-trip: the raw snapshot JSON
    /// document (schema [`crate::METRICS_SNAPSHOT_SCHEMA`]).
    ///
    /// Only v3 servers serve metrics; against a v2-pinned client this fails
    /// before touching the wire.
    ///
    /// # Errors
    ///
    /// Transport errors, `Unsupported` when pinned to v2, or `InvalidData`
    /// if the server answers with anything but a metrics snapshot.
    pub fn metrics(&mut self) -> io::Result<String> {
        if self.version < WIRE_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "metrics snapshots require wire v3",
            ));
        }
        let id = self.next_id;
        self.next_id += 1;
        let trace = self.mint_trace();
        match self.round_trip(&encode_metrics_request(id, trace))? {
            WireResponse::Metrics { snapshot, .. } => Ok(snapshot),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a metrics snapshot, got {other:?}"),
            )),
        }
    }

    fn round_trip(&mut self, payload: &[u8]) -> io::Result<WireResponse> {
        write_frame(&mut self.stream, payload)?;
        let response = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
        decode_response(&response).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Resolves `addr` and tries `TcpStream::connect_timeout` against each
/// candidate.
pub(crate) fn connect_stream<A: ToSocketAddrs>(
    addr: A,
    timeout: Duration,
) -> io::Result<TcpStream> {
    let mut last_err = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    }))
}
